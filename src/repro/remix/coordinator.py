"""The deterministic-execution coordinator (§3.5.3).

The coordinator takes a model-level trace, schedules the mapped code-level
actions one at a time (no other action runs concurrently -- exactly the
central-coordinator discipline of the paper's RMI-based implementation)
and compares the implementation state against the model state after every
step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.checker.trace import Trace
from repro.impl.ensemble import Ensemble
from repro.impl.exceptions import ImplError
from repro.remix.mapping import ActionMapping
from repro.tla.action import ActionLabel

#: Variables compared between model and implementation after each step.
COMPARED_VARIABLES = (
    "state",
    "zab_state",
    "accepted_epoch",
    "current_epoch",
    "history",
    "last_committed",
    "my_leader",
    "newleader_recv",
    "queued_requests",
    "committed_requests",
)


#: Synthetic label attached to configuration-level discrepancies (an
#: unknown compared variable is detected before any action runs).
CONFIG_LABEL = ActionLabel("<compare-config>")
_CONFIG_LABEL = CONFIG_LABEL  # backwards-compatible alias


def split_compared_variables(snapshot, compared_variables):
    """Partition a ``compared_variables`` tuple against an implementation
    snapshot: ``(known, missing)``.

    Shared between the top-down :class:`Coordinator` and the bottom-up
    :class:`~repro.remix.trace_validation.TraceValidator`: both must
    report a typo'd variable instead of silently never comparing it.
    """
    known = tuple(v for v in compared_variables if v in snapshot)
    missing = tuple(v for v in compared_variables if v not in snapshot)
    return known, missing


@dataclass
class Discrepancy:
    """One model/implementation divergence (§3.5.2's two conditions)."""

    # "state_mismatch" | "action_stuck" | "unmapped_action" | "unknown_variable"
    kind: str
    step: int
    label: ActionLabel
    variable: str = ""
    model_value: object = None
    impl_value: object = None

    def __str__(self) -> str:
        if self.kind == "state_mismatch":
            return (
                f"step {self.step} ({self.label}): {self.variable} differs -- "
                f"model {self.model_value!r} vs impl {self.impl_value!r}"
            )
        if self.kind == "unknown_variable":
            return (
                f"compared variable {self.variable!r} is absent from the "
                f"implementation snapshot -- its comparison never runs"
            )
        return f"step {self.step} ({self.label}): {self.kind}"


@dataclass
class ReplayResult:
    """Outcome of replaying one model trace at the code level."""

    steps_executed: int = 0
    discrepancies: List[Discrepancy] = field(default_factory=list)
    impl_error: Optional[ImplError] = None
    impl_error_step: Optional[int] = None

    @property
    def clean(self) -> bool:
        return not self.discrepancies and self.impl_error is None


class Coordinator:
    """Replays model traces deterministically on an ensemble."""

    def __init__(
        self,
        mapping: ActionMapping,
        ensemble_factory,
        compared_variables=COMPARED_VARIABLES,
    ):
        self.mapping = mapping
        self.ensemble_factory = ensemble_factory
        self.compared_variables = tuple(compared_variables)

    def replay(self, trace: Trace, stop_on_discrepancy: bool = True) -> ReplayResult:
        """Drive the implementation through the trace's actions.

        After each scheduled action, every compared variable is checked
        against the model's post-state; a mapped action that is not
        enabled at the code level is an "action never takes place"
        discrepancy.  Implementation exceptions (bug symptoms) abort the
        replay and are reported separately -- they are what confirms a
        model-level safety violation in the code (§3.5.2).
        """
        ensemble: Ensemble = self.ensemble_factory()
        result = ReplayResult()
        # Validate the comparison set against the snapshot up front: a
        # typo in compared_variables would otherwise silently disable
        # that comparison forever.
        known = self._validate_variables(ensemble, result)
        if result.discrepancies and stop_on_discrepancy:
            return result
        for step, (pre, label, post) in enumerate(trace.steps()):
            mapped = self.mapping.lookup(label)
            if mapped is None:
                result.discrepancies.append(
                    Discrepancy("unmapped_action", step, label)
                )
                if stop_on_discrepancy:
                    return result
                continue
            try:
                executed = mapped.step(ensemble, label)
            except ImplError as exc:
                result.impl_error = exc
                result.impl_error_step = step
                return result
            if not executed:
                result.discrepancies.append(
                    Discrepancy("action_stuck", step, label)
                )
                if stop_on_discrepancy:
                    return result
                continue
            result.steps_executed += 1
            mismatches = self._compare(post, ensemble, step, label, known)
            result.discrepancies.extend(mismatches)
            if mismatches and stop_on_discrepancy:
                return result
        return result

    def _validate_variables(self, ensemble: Ensemble, result: ReplayResult):
        """Report every compared variable absent from the snapshot as an
        ``unknown_variable`` discrepancy; return the resolvable ones."""
        known, missing = split_compared_variables(
            ensemble.snapshot(), self.compared_variables
        )
        for variable in missing:
            result.discrepancies.append(
                Discrepancy("unknown_variable", 0, CONFIG_LABEL, variable)
            )
        return known

    def _compare(self, model_state, ensemble: Ensemble, step, label, variables=None):
        impl = ensemble.snapshot()
        out: List[Discrepancy] = []
        if variables is None:
            variables = tuple(v for v in self.compared_variables if v in impl)
        for variable in variables:
            model_value = model_state[variable]
            impl_value = impl[variable]
            if model_value != impl_value:
                out.append(
                    Discrepancy(
                        "state_mismatch",
                        step,
                        label,
                        variable,
                        model_value,
                        impl_value,
                    )
                )
        return out
