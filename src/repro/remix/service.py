"""The campaign server: conformance checking as a long-lived service.

``python -m repro serve`` binds a TCP listener and turns each client
connection into one streamed campaign:

1. the client sends a single JSON line -- either a bare serialized
   :class:`~repro.remix.request.CampaignRequest` or an envelope
   ``{"request": {...}, "deadline": 30.0}`` (the deadline, in seconds,
   folds into the campaign's wall-clock budget);
2. the server streams back newline-delimited ``repro.campaign.event/1``
   JSON events while the campaign runs, and closes the connection after
   the terminal event.

The event stream (every event carries ``schema``, the per-connection
``id``, and ``elapsed`` seconds):

========== =============================================================
event      payload
========== =============================================================
accepted   ``request`` -- the normalized request about to run
cell_done  ``index``, ``cell_id``, ``cell`` (stats sans findings;
           ``replayed: true`` when served from a resume journal)
finding    ``finding`` -- first sighting of a fingerprint, full record
shrunk     ``fingerprint``, ``min_trace`` -- one finding minimized
retry      ``kind``, ``task`` -- a supervised transient failure
           (worker death, task timeout, scheduled retry)
degraded   ``task``, ``reason`` -- a poison task was quarantined
heartbeat  (liveness only; cadence is the server's ``heartbeat``)
report     ``report`` -- the full ``repro.campaign/4`` JSON;
           ``spec_cache`` -- this request's cache-stats delta
error      ``message`` -- the request failed (bad JSON, bad axis
           values, a stalled client that never sent its request line
           within ``request_timeout``, or a campaign crash); terminal
           like ``report``
========== =============================================================

What makes this a *service* rather than a loop around the CLI: the
process is resident, so the process-global spec cache -- compiled
specs, action mappings, scripted scenario/fault prefixes, plus the
on-disk layer -- stays warm across requests.  The second request for a
grain skips straight past composition (its ``spec_cache`` delta shows
hits, no misses), which is exactly the economics the ROADMAP's
checking-as-a-service north star needs.  Requests run concurrently
(one thread each; cells fan out through each campaign's own execution
backend), and a client that disconnects mid-stream just stops
receiving events -- the campaign finishes and the next request still
benefits from the caches it warmed.
"""

from __future__ import annotations

import json
import socket
import threading
import time
from typing import Any, Callable, Dict, Optional, Tuple

from repro.remix import spec_cache
from repro.remix.campaign import run_campaign
from repro.remix.request import CampaignRequest, RequestError

#: Version tag of the event stream; bump on breaking schema changes.
EVENT_SCHEMA = "repro.campaign.event/1"


def serve_request(
    request: CampaignRequest,
    emit: Callable[[Dict[str, Any]], None],
    *,
    request_id: int = 1,
    heartbeat: Optional[float] = None,
) -> Optional[Any]:
    """Run one campaign request, emitting the full event stream.

    The transport-free core of the server (also behind ``python -m
    repro serve --request FILE``): ``emit`` receives every
    ``repro.campaign.event/1`` dict in order -- ``accepted`` first,
    then streaming ``cell_done``/``finding``/``shrunk`` (and
    ``heartbeat`` from a timer thread when ``heartbeat`` is set),
    terminated by exactly one ``report`` or ``error``.  Returns the
    :class:`~repro.remix.campaign.CampaignReport`, or ``None`` when the
    request failed (the ``error`` event has the story).
    """
    started = time.monotonic()

    def event(payload: Dict[str, Any]) -> None:
        emit(
            {
                "schema": EVENT_SCHEMA,
                "id": request_id,
                "elapsed": round(time.monotonic() - started, 3),
                **payload,
            }
        )

    stats_before = dict(spec_cache.stats())
    event({"event": "accepted", "request": request.to_json()})
    done = threading.Event()
    beat_thread = None
    if heartbeat and heartbeat > 0:
        def beat() -> None:
            while not done.wait(heartbeat):
                event({"event": "heartbeat"})

        beat_thread = threading.Thread(target=beat, daemon=True)
        beat_thread.start()
    try:
        report = run_campaign(request, progress=event)
    except Exception as error:
        event({"event": "error", "message": str(error) or repr(error)})
        return None
    finally:
        done.set()
        if beat_thread is not None:
            beat_thread.join()
    stats_after = spec_cache.stats()
    delta = {
        key: stats_after[key] - stats_before.get(key, 0)
        for key in stats_after
    }
    event({"event": "report", "report": report.to_json(), "spec_cache": delta})
    return report


class CampaignServer:
    """Accept campaign requests over TCP, one streamed campaign per
    connection (see the module docstring for the wire protocol)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        heartbeat: float = 5.0,
        max_requests: Optional[int] = None,
        request_timeout: float = 30.0,
    ):
        self.heartbeat = heartbeat
        self.max_requests = max_requests
        #: Seconds a fresh connection gets to send its request line; a
        #: stalled client is answered with an ``error`` event and
        #: closed instead of pinning a handler thread forever.
        self.request_timeout = request_timeout
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(16)
        #: The bound ``(host, port)`` (resolves ephemeral port 0).
        self.address: Tuple[str, int] = self._listener.getsockname()[:2]
        self._stopping = threading.Event()
        self._accept_thread: Optional[threading.Thread] = None
        self._clients: list = []
        self._served = 0

    def start(self) -> Tuple[str, int]:
        """Start the accept loop in a daemon thread; returns the bound
        address."""
        self._accept_thread = threading.Thread(
            target=self._accept_loop, daemon=True
        )
        self._accept_thread.start()
        return self.address

    def serve_forever(self) -> None:
        """Block until the server stops (``max_requests`` served, or
        :meth:`stop` from another thread)."""
        if self._accept_thread is None:
            self.start()
        self._accept_thread.join()
        for thread in list(self._clients):
            thread.join()

    def stop(self) -> None:
        """Stop accepting; in-flight requests run to completion."""
        self._stopping.set()
        try:
            self._listener.close()
        except OSError:  # pragma: no cover
            pass

    # ----------------------------------------------------------- internals

    def _accept_loop(self) -> None:
        self._listener.settimeout(0.2)
        while not self._stopping.is_set():
            if (
                self.max_requests is not None
                and self._served >= self.max_requests
            ):
                break
            try:
                sock, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            self._served += 1
            thread = threading.Thread(
                target=self._handle_client,
                args=(sock, self._served),
                daemon=True,
            )
            self._clients.append(thread)
            thread.start()
        self.stop()
        # Reap finished handlers so serve_forever joins a stable list.
        self._clients = [t for t in self._clients if t.is_alive()]

    def _handle_client(self, sock: socket.socket, request_id: int) -> None:
        write_lock = threading.Lock()
        client_gone = threading.Event()

        def emit(event: Dict[str, Any]) -> None:
            if client_gone.is_set():
                return  # keep the campaign running; just drop events
            line = (json.dumps(event) + "\n").encode("utf-8")
            with write_lock:
                try:
                    sock.sendall(line)
                except OSError:
                    client_gone.set()

        try:
            sock.settimeout(self.request_timeout)
            reader = sock.makefile("r", encoding="utf-8")
            try:
                line = reader.readline()
                data = json.loads(line) if line.strip() else None
            except socket.timeout:
                emit(
                    {
                        "schema": EVENT_SCHEMA,
                        "id": request_id,
                        "elapsed": 0.0,
                        "event": "error",
                        "message": (
                            f"no request line within "
                            f"{self.request_timeout:g}s; closing stalled "
                            f"connection"
                        ),
                    }
                )
                return
            except (OSError, ValueError) as error:
                emit(
                    {
                        "schema": EVENT_SCHEMA,
                        "id": request_id,
                        "elapsed": 0.0,
                        "event": "error",
                        "message": f"bad request line: {error}",
                    }
                )
                return
            finally:
                reader.close()
            sock.settimeout(None)
            deadline = None
            if isinstance(data, dict) and "request" in data:
                deadline = data.get("deadline")
                data = data["request"]
            try:
                request = CampaignRequest.from_json(data)
                if deadline is not None:
                    budget = (
                        min(request.budget, float(deadline))
                        if request.budget is not None
                        else float(deadline)
                    )
                    request = request.with_options(budget=budget)
            except (RequestError, TypeError, ValueError) as error:
                message = error.args[0] if error.args else str(error)
                emit(
                    {
                        "schema": EVENT_SCHEMA,
                        "id": request_id,
                        "elapsed": 0.0,
                        "event": "error",
                        "message": message,
                    }
                )
                return
            serve_request(
                request,
                emit,
                request_id=request_id,
                heartbeat=self.heartbeat,
            )
        finally:
            try:
                sock.close()
            except OSError:  # pragma: no cover
                pass
