"""Remix: composition, deterministic replay and conformance checking."""

from repro.remix.campaign import (
    CampaignJob,
    CampaignReport,
    ConformanceCampaign,
    run_campaign,
    validation_findings,
)
from repro.remix.conformance import (
    ConformanceChecker,
    ConformanceReport,
    ImplBugReport,
)
from repro.remix.coordinator import (
    COMPARED_VARIABLES,
    Coordinator,
    Discrepancy,
    ReplayResult,
)
from repro.remix.mapping import ActionMapping, MappedAction, mapping_for
from repro.remix.minimize import (
    ConformanceOracle,
    ValidationOracle,
    rebuild_validation_witness,
    rebuild_witness,
    replay_min_trace,
    shrink_finding,
    unreplayable_min_traces,
)
from repro.remix.registry import (
    SpecRegistry,
    register_system,
    registered_systems,
    system_plugin,
)
from repro.remix.request import CampaignRequest, RequestError
from repro.remix.service import EVENT_SCHEMA, CampaignServer, serve_request
from repro.remix.spec_cache import cached_mapping, cached_prefix, cached_spec
from repro.remix.trace_validation import (
    ImplExplorer,
    TraceValidator,
    ValidationIssue,
    ValidationReport,
)

__all__ = [
    "ActionMapping",
    "COMPARED_VARIABLES",
    "CampaignJob",
    "CampaignReport",
    "CampaignRequest",
    "CampaignServer",
    "ConformanceCampaign",
    "ConformanceChecker",
    "EVENT_SCHEMA",
    "RequestError",
    "ConformanceOracle",
    "ConformanceReport",
    "Coordinator",
    "Discrepancy",
    "ImplBugReport",
    "MappedAction",
    "ReplayResult",
    "ImplExplorer",
    "SpecRegistry",
    "TraceValidator",
    "ValidationIssue",
    "ValidationOracle",
    "ValidationReport",
    "cached_mapping",
    "cached_prefix",
    "cached_spec",
    "mapping_for",
    "rebuild_validation_witness",
    "rebuild_witness",
    "register_system",
    "registered_systems",
    "replay_min_trace",
    "run_campaign",
    "serve_request",
    "shrink_finding",
    "system_plugin",
    "unreplayable_min_traces",
    "validation_findings",
]
