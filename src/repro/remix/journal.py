"""Crash-safe campaign journaling: checkpoint/resume for long campaigns.

A campaign is a deterministic merge over per-cell results, each of which
is a pure function of its task message.  That makes completed work
perfectly salvageable after a crash: if the result of a cell is on disk,
re-running the cell reproduces it bit for bit -- so we can simply *not*
re-run it.  :class:`CampaignJournal` is the on-disk record
(``journal.jsonl`` inside the ``--journal`` directory): one JSON line
per completed cell or shrink task, appended and fsynced the moment the
result streams out of the backend, before anything else sees it.  A
campaign killed mid-run (Ctrl-C, OOM, power loss) leaves at worst one
truncated trailing line, which :meth:`CampaignJournal.load` tolerates.

Resume correctness rests on two identities:

- **Cell identity.**  Every matrix cell has a unique, stable
  ``cell_id`` (direction/grain/scenario/fault/seed) and every shrink
  task a unique finding fingerprint; both are independent of worker
  count, backend, and scheduling, so a journal entry unambiguously
  names the work it retires.  Adaptive campaigns qualify too: each
  round's allocation is a deterministic function of prior results, and
  replayed results are the prior results.
- **Request identity.**  Entries are tagged with a digest of the
  *outcome-relevant* request fields (:func:`request_digest`); loading
  filters on it, so a journal directory reused with a different request
  replays nothing rather than something wrong.  Execution-only knobs
  (workers, backend, supervision, auth) are excluded from the digest
  because reports are invariant to them -- a campaign interrupted on the
  fork backend may finish over sockets.

:class:`JournaledBackend` is the integration point: it decorates any
:class:`~repro.checker.backends.base.ExecutionBackend`, replays
journaled results without dispatching them (firing ``on_result`` in
task order, exactly as an infinitely fast worker would), journals fresh
results as they complete, and passes everything else through.  Because
the campaign's merge orders by task index and dedups findings in
first-seen order, a resumed report is bitwise-identical to an
uninterrupted run.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.checker.backends.base import ExecutionBackend, ResultHook

#: Journal line format version.
JOURNAL_VERSION = 1

#: Request fields that do not influence the report and therefore do not
#: participate in the resume digest: how a campaign executes, not what
#: it computes.
EXECUTION_ONLY_FIELDS = (
    "workers",
    "backend",
    "task_timeout",
    "task_retries",
    "auth_token",
)


def request_digest(request: Any) -> str:
    """Digest of the outcome-relevant half of a campaign request."""
    payload = {
        key: value
        for key, value in request.to_json().items()
        if key not in EXECUTION_ONLY_FIELDS
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def task_key(task: Any) -> Optional[Tuple[str, str]]:
    """The stable journal key of a campaign task message, or ``None``
    for messages the journal does not understand (never journaled)."""
    if not isinstance(task, dict):
        return None
    kind = task.get("kind")
    if kind == "cell":
        from repro.remix.campaign import CampaignJob

        return ("cell", CampaignJob(**task["job"]).cell_id)
    if kind == "shrink":
        return ("shrink", task["finding"]["fingerprint"])
    return None


class CampaignJournal:
    """The append-only result log of one (possibly interrupted) campaign.

    ``resume=True`` loads existing entries for this request's digest
    (last write wins, truncated trailing line ignored) and appends;
    ``resume=False`` truncates -- a fresh run never replays stale state.
    """

    FILENAME = "journal.jsonl"

    def __init__(self, directory: str, request: Any, resume: bool = False):
        self.directory = directory
        self.digest = request_digest(request)
        self.path = os.path.join(directory, self.FILENAME)
        os.makedirs(directory, exist_ok=True)
        self._loaded: Dict[Tuple[str, str], Any] = {}
        if resume:
            self._loaded = self._load()
        self._fh = open(self.path, "a" if resume else "w")

    def _load(self) -> Dict[Tuple[str, str], Any]:
        entries: Dict[Tuple[str, str], Any] = {}
        try:
            fh = open(self.path)
        except OSError:
            return entries
        with fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except ValueError:
                    continue  # the torn write of the crash itself
                if (
                    not isinstance(entry, dict)
                    or entry.get("v") != JOURNAL_VERSION
                    or entry.get("digest") != self.digest
                    or entry.get("result") is None
                ):
                    continue
                entries[(entry["kind"], entry["key"])] = entry["result"]
        return entries

    # ------------------------------------------------------------ queries

    def replayable(self, key: Optional[Tuple[str, str]]) -> bool:
        """Was this task completed by the interrupted run we resumed?"""
        return key is not None and key in self._loaded

    def get(self, key: Tuple[str, str]) -> Any:
        return self._loaded[key]

    def __len__(self) -> int:
        return len(self._loaded)

    # ------------------------------------------------------------ writes

    def record(self, key: Tuple[str, str], result: Any) -> None:
        """Persist one completed result, durably, before returning."""
        entry = {
            "v": JOURNAL_VERSION,
            "digest": self.digest,
            "kind": key[0],
            "key": key[1],
            "result": result,
        }
        self._fh.write(json.dumps(entry, separators=(",", ":")) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        try:
            self._fh.close()
        except OSError:  # pragma: no cover
            pass


class JournaledBackend(ExecutionBackend):
    """Wrap a backend so completed tasks are journaled and journaled
    tasks are replayed instead of dispatched.

    Replays fire ``on_result`` first, in task order -- the order an
    uninterrupted run *could* have produced, and the only deterministic
    choice -- then the remaining tasks run through the wrapped backend
    with their original indices.  Results are JSON values throughout
    (the backend contract), so a journal round-trip is an identity and
    the merged report cannot tell a replayed cell from a fresh one.
    """

    def __init__(self, inner: ExecutionBackend, journal: CampaignJournal):
        self.inner = inner
        self.journal = journal
        self.name = inner.name

    def map(
        self,
        tasks: Sequence[Any],
        deadline: Optional[float] = None,
        on_result: Optional[ResultHook] = None,
    ) -> List[Optional[Any]]:
        journal = self.journal
        results: List[Optional[Any]] = [None] * len(tasks)
        pending: List[int] = []
        for index, task in enumerate(tasks):
            key = task_key(task)
            if journal.replayable(key):
                results[index] = journal.get(key)
            else:
                pending.append(index)
        if on_result is not None:
            for index, result in enumerate(results):
                if result is not None:
                    on_result(index, tasks[index], result)
        if not pending:
            return results

        def journal_and_forward(sub_index: int, task: Any, result: Any) -> None:
            key = task_key(task)
            if key is not None and result is not None:
                journal.record(key, result)
            if on_result is not None:
                on_result(pending[sub_index], task, result)

        fresh = self.inner.map(
            [tasks[index] for index in pending],
            deadline=deadline,
            on_result=journal_and_forward,
        )
        for sub_index, index in enumerate(pending):
            results[index] = fresh[sub_index]
        return results

    def close(self) -> None:
        self.inner.close()
        self.journal.close()
