"""Campaign repro minimization: from findings to minimal witnesses.

A campaign finding is only *actionable* once its witnessing trace is
minimal: the paper's workflow ends at a model-level trace a developer
can replay against the code (e.g. ZK-4394's NullPointerException), and
the raw campaign witness drags a scripted prefix plus a random suffix
along.  This module closes that gap:

- :func:`rebuild_witness` re-derives a finding's witnessing trace from
  the metadata stored in the finding (scenario prefix + fault schedule
  are scripted; the random suffix is fully determined by its stored seed
  and step budget) -- no trace bytes ever travel through the report;
- :class:`ConformanceOracle` is the replay oracle handed to the generic
  delta-debugging shrinker
  (:func:`repro.checker.shrink.shrink_trace_oracle`): it re-runs a
  candidate trace through the :class:`~repro.remix.coordinator.Coordinator`
  and accepts it iff the *same* finding fingerprint is reproduced (same
  discrepancy kind/variable/values or the same impl-exception class at
  the same label);
- bottom-up findings get the mirrored treatment:
  :func:`rebuild_validation_witness` re-runs the deterministic
  :class:`~repro.remix.trace_validation.ImplExplorer` under the stored
  explorer seed, and :class:`ValidationOracle` accepts a candidate
  *label sequence* iff lockstep validation reproduces the fingerprint
  (via :func:`repro.checker.shrink.shrink_labels_oracle`, since a
  bottom-up witness may be model-disabled by design);
- :func:`shrink_finding` packages both into the campaign's shrink-stage
  worker, emitting a JSON-able ``min_trace`` payload;
- :func:`replay_min_trace` / :func:`unreplayable_min_traces` verify a
  report's minimized traces end-to-end (the CI assertion that every
  finding carries a *replayable* ``min_trace``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.checker.random_walk import RandomWalker
from repro.checker.shrink import shrink_labels_oracle, shrink_trace_oracle
from repro.checker.trace import Trace
from repro.remix.campaign import (
    config_from_meta,
    trace_findings,
    validation_findings,
)
from repro.remix.coordinator import Coordinator
from repro.remix.registry import system_plugin
from repro.remix.spec_cache import cached_mapping, cached_prefix, cached_spec
from repro.remix.trace_validation import ImplExplorer, TraceValidator
from repro.system.plugin import ScenarioError
from repro.zookeeper.config import ZkConfig


def _args_to_json(value: Any) -> Any:
    """Label binding values (ints, tuples, frozensets) to JSON-able form.

    Frozensets are tagged (``{"frozenset": [...]}``) so the inverse can
    restore the exact binding value -- ``instance_named`` looks labels
    up by binding equality, so a tuple standing in for a frozenset would
    silently make the min_trace unreplayable.
    """
    if isinstance(value, (tuple, list)):
        return [_args_to_json(item) for item in value]
    if isinstance(value, frozenset):
        return {
            "frozenset": sorted(
                (_args_to_json(item) for item in value), key=repr
            )
        }
    return value


def _args_from_json(value: Any) -> Any:
    """Inverse of :func:`_args_to_json` (JSON lists were tuples)."""
    if isinstance(value, dict) and set(value) == {"frozenset"}:
        return frozenset(_args_from_json(item) for item in value["frozenset"])
    if isinstance(value, list):
        return tuple(_args_from_json(item) for item in value)
    return value


def label_to_json(label) -> Dict[str, Any]:
    """A replayable JSON form of an action label (name + args)."""
    return {
        "name": label.name,
        "args": {key: _args_to_json(val) for key, val in label.binding},
    }


def labels_from_json(spec, entries) -> Optional[List]:
    """Resolve JSON label entries back to the spec's action instances;
    None when any label does not exist at this grain."""
    instances = []
    for entry in entries:
        args = {
            key: _args_from_json(val) for key, val in entry["args"].items()
        }
        inst = spec.instance_named(entry["name"], args)
        if inst is None:
            return None
        instances.append(inst)
    return instances


def rebuild_witness(
    grain: str,
    witness: Dict[str, Any],
    config: ZkConfig,
    system: str = "zookeeper",
) -> Trace:
    """Reconstruct a top-down finding's witnessing trace from its stored
    metadata (deterministic: scripted prefix + fault + seeded random
    suffix)."""
    spec = cached_spec(grain, config, system=system)
    # Role ids are stored in the witness; the fallbacks mirror run_cell's
    # historical choice for /2-era findings that predate the keys.
    leader = witness.get("leader", config.n_servers - 1)
    follower = witness.get("follower", 0)
    prefix = cached_prefix(
        grain,
        config,
        witness["scenario"],
        witness["fault"],
        leader,
        follower,
        system=system,
    )
    walker = RandomWalker(spec, seed=witness["suffix_seed"])
    suffix = walker.walk(witness["suffix_steps"], start=prefix.state)
    return Trace(
        states=prefix.states + suffix.states[1:],
        labels=prefix.labels + suffix.labels,
    )


def rebuild_validation_witness(
    grain: str,
    witness: Dict[str, Any],
    config: ZkConfig,
    system: str = "zookeeper",
) -> List:
    """Reconstruct a bottom-up finding's witnessing *label sequence* by
    re-running the deterministic implementation explorer under the
    stored explorer seed (scripted prefix first, then the seeded random
    suffix -- exactly what the validation cell executed)."""
    plugin = system_plugin(system)
    spec = cached_spec(grain, config, system=system)
    mapping = cached_mapping(grain, system=system)
    leader = witness.get("leader", config.n_servers - 1)
    follower = witness.get("follower", 0)
    prefix = cached_prefix(
        grain,
        config,
        witness["scenario"],
        witness["fault"],
        leader,
        follower,
        system=system,
    )
    explorer = ImplExplorer(
        spec,
        mapping,
        plugin.ensemble_factory(config),
        seed=witness["explorer_seed"],
        budgets=plugin.budget_limits(config),
    )
    executed, _, _ = explorer.explore(
        witness["explorer_steps"], prefix=prefix.labels
    )
    return executed


class ConformanceOracle:
    """A replay oracle for the shrinker: accept a candidate model trace
    iff re-running it through the coordinator reproduces the target
    finding fingerprint."""

    def __init__(
        self,
        grain: str,
        fingerprint: str,
        config: ZkConfig,
        system: str = "zookeeper",
    ):
        plugin = system_plugin(system)
        self.grain = grain
        self.fingerprint = fingerprint
        self.coordinator = Coordinator(
            cached_mapping(grain, system=system),
            plugin.ensemble_factory(config),
            compared_variables=plugin.compared_variables,
        )
        self.replays = 0

    def __call__(self, trace: Trace) -> bool:
        self.replays += 1
        result = self.coordinator.replay(trace)
        return self.fingerprint in {
            finding["fingerprint"]
            for finding in trace_findings(result, trace, self.grain)
        }


class ValidationOracle:
    """The bottom-up shrink oracle: accept a candidate *label sequence*
    iff lockstep validation (fresh ensemble + fresh model run) reproduces
    the target finding fingerprint.

    Unlike :class:`ConformanceOracle` the candidate is never replayed
    through the model alone -- a bottom-up witness may be model-disabled
    on purpose (that can be the very finding under minimization), so the
    implementation drives and the model only judges."""

    def __init__(
        self,
        grain: str,
        fingerprint: str,
        config: ZkConfig,
        system: str = "zookeeper",
    ):
        plugin = system_plugin(system)
        self.grain = grain
        self.fingerprint = fingerprint
        self.validator = TraceValidator(
            cached_spec(grain, config, system=system),
            cached_mapping(grain, system=system),
            plugin.ensemble_factory(config),
            compared_variables=plugin.compared_variables,
            budgets=plugin.budget_limits(config),
        )
        self.replays = 0

    def __call__(self, labels) -> bool:
        self.replays += 1
        report = self.validator.validate_labels(labels)
        return self.fingerprint in {
            finding["fingerprint"]
            for finding in validation_findings(report, self.grain)
        }


def shrink_finding(
    finding: Dict[str, Any],
    config: Optional[ZkConfig] = None,
    max_rounds: int = 10,
    system: str = "zookeeper",
) -> Dict[str, Any]:
    """The campaign shrink-stage worker: rebuild one distinct finding's
    witness and delta-debug it under a :class:`ConformanceOracle`.

    Returns the ``min_trace`` payload.  ``status`` is ``"ok"`` with
    replayable ``labels`` on success; ``"no_witness"`` for findings from
    pre-/2 reports; ``"unreproducible"`` when the rebuilt witness does
    not reproduce the fingerprint (should not happen -- everything is
    deterministic -- but reported loudly rather than asserted).
    """
    config = config or system_plugin(system).campaign_config()
    witness = finding.get("witness")
    if not witness:
        return {"status": "no_witness"}
    grain = finding["grain"]
    if finding.get("direction") == "bottomup":
        try:
            labels = rebuild_validation_witness(grain, witness, config, system)
        except ScenarioError as error:  # pragma: no cover - defensive
            return {"status": "unreproducible", "reason": str(error)}
        oracle = ValidationOracle(grain, finding["fingerprint"], config, system)
        if not oracle(labels):
            return {"status": "unreproducible", "witness_steps": len(labels)}
        shrunk_labels = shrink_labels_oracle(
            labels, oracle, max_rounds=max_rounds
        )
        return {
            "status": "ok",
            "steps": len(shrunk_labels),
            "witness_steps": len(labels),
            "oracle_replays": oracle.replays,
            "labels": [label_to_json(label) for label in shrunk_labels],
        }
    spec = cached_spec(grain, config, system=system)
    try:
        trace = rebuild_witness(grain, witness, config, system)
    except ScenarioError as error:  # pragma: no cover - defensive
        return {"status": "unreproducible", "reason": str(error)}
    oracle = ConformanceOracle(grain, finding["fingerprint"], config, system)
    if not oracle(trace):
        return {"status": "unreproducible", "witness_steps": len(trace)}
    shrunk = shrink_trace_oracle(spec, trace, oracle, max_rounds=max_rounds)
    return {
        "status": "ok",
        "steps": len(shrunk),
        "witness_steps": len(trace),
        "oracle_replays": oracle.replays,
        "labels": [label_to_json(label) for label in shrunk.labels],
    }


def replay_min_trace(
    finding: Dict[str, Any],
    config: Optional[ZkConfig] = None,
    system: str = "zookeeper",
) -> bool:
    """True iff the finding's ``min_trace`` reproduces the finding
    fingerprint end-to-end -- the check CI runs on shrunk reports.

    Top-down findings must replay from the initial state at the model
    level AND reproduce the fingerprint at the code level; bottom-up
    findings re-drive the implementation and reproduce the fingerprint
    under lockstep validation."""
    config = config or system_plugin(system).campaign_config()
    min_trace = finding.get("min_trace") or {}
    if min_trace.get("status") != "ok":
        return False
    grain = finding["grain"]
    spec = cached_spec(grain, config, system=system)
    instances = labels_from_json(spec, min_trace["labels"])
    if instances is None:
        return False
    if finding.get("direction") == "bottomup":
        # Bottom-up min_traces need not (and often must not) replay at
        # the model level; the implementation drives, lockstep validation
        # judges the fingerprint.
        labels = [inst.label for inst in instances]
        return ValidationOracle(grain, finding["fingerprint"], config, system)(
            labels
        )
    state = spec.initial_states()[0]
    states = [state]
    labels = []
    for inst in instances:
        nxt = inst.apply(spec.config, state)
        if nxt is None:
            return False
        labels.append(inst.label)
        states.append(nxt)
        state = nxt
    trace = Trace(states=states, labels=labels)
    return ConformanceOracle(grain, finding["fingerprint"], config, system)(
        trace
    )


def unreplayable_min_traces(
    report_json: Dict[str, Any], config: Optional[ZkConfig] = None
) -> List[str]:
    """Fingerprints whose ``min_trace`` is missing or fails
    :func:`replay_min_trace`; empty means every finding carries a
    replayable minimal repro.  The config (and system) default to the
    ones recorded in the report's ``campaign`` block, so verification
    runs against the spec the campaign actually used."""
    meta = report_json.get("campaign", {})
    system = meta.get("system", "zookeeper")
    if config is None:
        config = config_from_meta(meta)
    return [
        finding["fingerprint"]
        for finding in report_json.get("findings", ())
        if not replay_min_trace(finding, config, system)
    ]
