"""Bottom-up trace validation (the alternative approach of §6).

Remix's conformance checker is *top-down*: model traces are replayed
against the code.  The paper discusses the complementary *bottom-up*
approach used by VYRD, CCF and etcd: generate implementation-level
executions and check that every step is allowed by the model.  This
module implements it over the simulator:

- an :class:`ImplExplorer` drives the ensemble with randomly chosen
  enabled operations (discovered by trying mapped actions on a copy);
- a :class:`TraceValidator` runs the model in lockstep, confirming each
  implementation step corresponds to an enabled model action whose
  post-state matches.

Together with the top-down checker this gives conformance evidence in
both directions.
"""

from __future__ import annotations

import copy
import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.impl.ensemble import Ensemble
from repro.impl.exceptions import ZkImplError
from repro.remix.coordinator import COMPARED_VARIABLES
from repro.remix.mapping import ActionMapping
from repro.tla.action import ActionLabel
from repro.tla.spec import Specification
from repro.tla.state import State


@dataclass
class ValidationIssue:
    """One implementation step the model does not allow."""

    kind: str  # "model_disabled" | "state_mismatch" | "impl_exception"
    step: int
    label: ActionLabel
    variable: str = ""
    model_value: object = None
    impl_value: object = None

    def __str__(self) -> str:
        if self.kind == "state_mismatch":
            return (
                f"step {self.step} ({self.label}): {self.variable} -- "
                f"model {self.model_value!r} vs impl {self.impl_value!r}"
            )
        return f"step {self.step} ({self.label}): {self.kind}"


@dataclass
class ValidationReport:
    runs: int = 0
    steps_validated: int = 0
    issues: List[ValidationIssue] = field(default_factory=list)
    impl_errors: List[Tuple[int, ZkImplError]] = field(default_factory=list)

    @property
    def valid(self) -> bool:
        return not self.issues

    def summary(self) -> str:
        return (
            f"trace validation: {self.runs} runs, "
            f"{self.steps_validated} impl steps validated, "
            f"{len(self.issues)} issues, "
            f"{len(self.impl_errors)} impl exceptions"
        )


def _label_matches_head(
    ensemble: Ensemble, label: ActionLabel, baseline_region: bool = False
) -> bool:
    """Label-faithful dispatch for the leader's generic processAck.

    The implementation's ``leader_process_ack`` handles NEWLEADER ACKs,
    UPTODATE ACKs and txn ACKs in one method; the model splits them into
    three actions.  Driving the implementation under a specific label
    must only count when the channel head actually is that kind of ACK,
    otherwise the lockstep model run desynchronizes.
    """
    name = label.name
    if name not in (
        "LeaderProcessACK",
        "LeaderProcessACKLD",
        "LeaderProcessACKUPTODATE",
    ):
        return True
    i, j = label.args["pair"]
    node = ensemble.nodes[i]
    msg = ensemble.network.peek(j, i)
    if msg is None:
        return False
    if name == "LeaderProcessACKUPTODATE":
        return msg.mtype == "ACK_UPTODATE"
    if msg.mtype == "ACK_UPTODATE":
        if not baseline_region:
            # fine granularity: LeaderProcessACKUPTODATE handles these
            return False
        # baseline granularity: the wrapper skips these silently, but
        # only when a real ACK follows; treat a lone UPTODATE-ACK head
        # as not matching the txn-ACK label.
        channel = ensemble.network.channels[(j, i)]
        following = next(
            (m for m in list(channel)[1:] if m.mtype != "ACK_UPTODATE"),
            None,
        )
        if following is None or following.mtype != "ACK":
            return False
        msg = following
    elif msg.mtype != "ACK":
        return False
    expected = node._newleader_zxid_for(j)
    is_newleader_ack = (
        expected is not None
        and msg.zxid == expected
        and j not in node.newleader_acks
    )
    if name == "LeaderProcessACKLD":
        return is_newleader_ack
    return not is_newleader_ack


class ImplExplorer:
    """Random exploration of the implementation's behaviours.

    Candidate operations come from the replay mapping's action table;
    an operation is *enabled* when executing it on a copy of the
    ensemble reports success.  One step commits one enabled operation.
    """

    def __init__(
        self,
        spec: Specification,
        mapping: ActionMapping,
        ensemble_factory: Callable[[], Ensemble],
        seed: int = 0,
    ):
        self.spec = spec
        self.mapping = mapping
        self.ensemble_factory = ensemble_factory
        self.rng = random.Random(seed)
        self._labels = [
            inst.label
            for inst in spec.action_instances()
            if mapping.lookup(inst.label) is not None
        ]

    def explore(
        self, max_steps: int = 20
    ) -> Tuple[List[ActionLabel], Ensemble, Optional[ZkImplError]]:
        """One random implementation run: the labels executed, the final
        ensemble, and the exception that ended the run (if any).

        Fault operations are bounded by the model configuration's crash
        and partition budgets: budgets are bounds of the verification
        *model*, so an implementation run must stay within them for the
        lockstep validation to be meaningful."""
        ensemble = self.ensemble_factory()
        executed: List[ActionLabel] = []
        crashes = partitions = txns = 0
        config = self.spec.config
        for _ in range(max_steps):
            candidates = list(self._labels)
            self.rng.shuffle(candidates)
            progressed = False
            for label in candidates:
                if label.name == "NodeCrash" and crashes >= config.max_crashes:
                    continue
                if (
                    label.name == "PartitionStart"
                    and partitions >= config.max_partitions
                ):
                    continue
                if (
                    label.name == "LeaderProcessRequest"
                    and txns >= config.max_txns
                ):
                    continue
                mapped = self.mapping.lookup(label)
                if not _label_matches_head(
                    ensemble, label, mapped.region == "baseline"
                ):
                    continue
                probe = copy.deepcopy(ensemble)
                try:
                    if mapped.step(probe, label):
                        ensemble = probe
                        executed.append(label)
                        if label.name == "NodeCrash":
                            crashes += 1
                        elif label.name == "PartitionStart":
                            partitions += 1
                        elif label.name == "LeaderProcessRequest":
                            txns += 1
                        progressed = True
                        break
                except ZkImplError as exc:
                    executed.append(label)
                    return executed, probe, exc
            if not progressed:
                break
        return executed, ensemble, None


class TraceValidator:
    """Validate implementation runs against the model, in lockstep."""

    def __init__(
        self,
        spec: Specification,
        mapping: ActionMapping,
        ensemble_factory: Callable[[], Ensemble],
        seed: int = 0,
        compared_variables=COMPARED_VARIABLES,
    ):
        self.spec = spec
        self.explorer = ImplExplorer(spec, mapping, ensemble_factory, seed)
        self.mapping = mapping
        self.ensemble_factory = ensemble_factory
        self.compared_variables = tuple(compared_variables)

    def validate_run(self, max_steps: int = 20) -> ValidationReport:
        report = ValidationReport(runs=1)
        executed, _, impl_error = self.explorer.explore(max_steps)
        # replay the labels against BOTH model and a fresh ensemble,
        # comparing after each step
        model_state: State = self.spec.initial_states()[0]
        ensemble = self.ensemble_factory()
        for step, label in enumerate(executed):
            mapped = self.mapping.lookup(label)
            try:
                ok = mapped.step(ensemble, label)
            except ZkImplError as exc:
                report.impl_errors.append((step, exc))
                # the model must agree that this path is an error path:
                # the corresponding model action must lead to an error
                # state (checked by the code-level invariants), or at
                # minimum be enabled.
                inst = self.spec.instance_for(label)
                if inst.apply(self.spec.config, model_state) is None:
                    report.issues.append(
                        ValidationIssue("model_disabled", step, label)
                    )
                return report
            if not ok:
                break
            inst = self.spec.instance_for(label)
            nxt = inst.apply(self.spec.config, model_state)
            if nxt is None:
                report.issues.append(
                    ValidationIssue("model_disabled", step, label)
                )
                return report
            model_state = nxt
            report.steps_validated += 1
            impl = ensemble.snapshot()
            for variable in self.compared_variables:
                if variable not in impl:
                    continue
                if model_state[variable] != impl[variable]:
                    report.issues.append(
                        ValidationIssue(
                            "state_mismatch",
                            step,
                            label,
                            variable,
                            model_state[variable],
                            impl[variable],
                        )
                    )
                    return report
        return report

    def validate(self, runs: int = 10, max_steps: int = 20) -> ValidationReport:
        total = ValidationReport()
        for _ in range(runs):
            run_report = self.validate_run(max_steps)
            total.runs += 1
            total.steps_validated += run_report.steps_validated
            total.issues.extend(run_report.issues)
            total.impl_errors.extend(run_report.impl_errors)
        return total
