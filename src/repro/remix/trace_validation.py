"""Bottom-up trace validation (the alternative approach of §6).

Remix's conformance checker is *top-down*: model traces are replayed
against the code.  The paper discusses the complementary *bottom-up*
approach used by VYRD, CCF and etcd: generate implementation-level
executions and check that every step is allowed by the model.  This
module implements it over the simulator:

- an :class:`ImplExplorer` drives the ensemble with randomly chosen
  enabled operations (discovered by trying mapped actions on a copy),
  optionally from a scripted prefix (a campaign scenario + fault
  schedule) whose fault/txn labels count against the model budgets;
- a :class:`TraceValidator` runs the model in lockstep, confirming each
  implementation step corresponds to an enabled model action whose
  post-state matches.

Together with the top-down checker this gives conformance evidence in
both directions; :mod:`repro.remix.campaign` schedules both directions
as cells of the same matrix.
"""

from __future__ import annotations

import copy
import random
from dataclasses import dataclass, field
from typing import Callable, List, Mapping, Optional, Sequence, Tuple

from repro.impl.ensemble import Ensemble
from repro.impl.exceptions import ImplError
from repro.remix.coordinator import (
    COMPARED_VARIABLES,
    CONFIG_LABEL,
    split_compared_variables,
)
from repro.remix.mapping import ActionMapping
from repro.tla.action import ActionLabel
from repro.tla.spec import Specification
from repro.tla.state import State

@dataclass
class ValidationIssue:
    """One implementation step the model does not allow.

    ``run`` is the index of the validation run that produced the issue:
    step indices restart at 0 every run, so without it a multi-run
    :class:`ValidationReport` could not tell which run to rebuild.
    """

    # "model_disabled" | "state_mismatch" | "impl_exception"
    # | "unknown_variable"
    kind: str
    step: int
    label: ActionLabel
    variable: str = ""
    model_value: object = None
    impl_value: object = None
    run: int = 0

    def __str__(self) -> str:
        if self.kind == "state_mismatch":
            return (
                f"run {self.run} step {self.step} ({self.label}): "
                f"{self.variable} -- "
                f"model {self.model_value!r} vs impl {self.impl_value!r}"
            )
        if self.kind == "unknown_variable":
            return (
                f"compared variable {self.variable!r} is absent from the "
                f"implementation snapshot -- its comparison never runs"
            )
        return f"run {self.run} step {self.step} ({self.label}): {self.kind}"


@dataclass
class ValidationReport:
    runs: int = 0
    steps_validated: int = 0
    issues: List[ValidationIssue] = field(default_factory=list)
    #: (run, step, label, error) -- the implementation exception that
    #: ended a run, attributed to the run that raised it.
    impl_errors: List[Tuple[int, int, ActionLabel, ImplError]] = field(
        default_factory=list
    )
    #: The implementation labels that executed, across all runs (what a
    #: campaign cell reports as action coverage).
    executed: List[ActionLabel] = field(default_factory=list)

    @property
    def valid(self) -> bool:
        return not self.issues

    def summary(self) -> str:
        return (
            f"trace validation: {self.runs} runs, "
            f"{self.steps_validated} impl steps validated, "
            f"{len(self.issues)} issues, "
            f"{len(self.impl_errors)} impl exceptions"
        )


def _label_matches_head(
    ensemble: Ensemble, label: ActionLabel, baseline_region: bool = False
) -> bool:
    """Label-faithful dispatch for the leader's generic processAck.

    The implementation's ``leader_process_ack`` handles NEWLEADER ACKs,
    UPTODATE ACKs and txn ACKs in one method; the model splits them into
    three actions.  Driving the implementation under a specific label
    must only count when the channel head actually is that kind of ACK,
    otherwise the lockstep model run desynchronizes.
    """
    name = label.name
    if name not in (
        "LeaderProcessACK",
        "LeaderProcessACKLD",
        "LeaderProcessACKUPTODATE",
    ):
        return True
    i, j = label.args["pair"]
    node = ensemble.nodes[i]
    msg = ensemble.network.peek(j, i)
    if msg is None:
        return False
    if name == "LeaderProcessACKUPTODATE":
        return msg.mtype == "ACK_UPTODATE"
    if msg.mtype == "ACK_UPTODATE":
        if not baseline_region:
            # fine granularity: LeaderProcessACKUPTODATE handles these
            return False
        # baseline granularity: the wrapper skips these silently, but
        # only when a real ACK follows; treat a lone UPTODATE-ACK head
        # as not matching the txn-ACK label.
        channel = ensemble.network.channels[(j, i)]
        following = next(
            (m for m in list(channel)[1:] if m.mtype != "ACK_UPTODATE"),
            None,
        )
        if following is None or following.mtype != "ACK":
            return False
        msg = following
    elif msg.mtype != "ACK":
        return False
    expected = node._newleader_zxid_for(j)
    is_newleader_ack = (
        expected is not None
        and msg.zxid == expected
        and j not in node.newleader_acks
    )
    if name == "LeaderProcessACKLD":
        return is_newleader_ack
    return not is_newleader_ack


class ImplExplorer:
    """Random exploration of the implementation's behaviours.

    Candidate operations come from the replay mapping's action table;
    an operation is *enabled* when executing it on a copy of the
    ensemble reports success.  One step commits one enabled operation.
    """

    def __init__(
        self,
        spec: Specification,
        mapping: ActionMapping,
        ensemble_factory: Callable[[], Ensemble],
        seed: int = 0,
        budgets: Optional[Mapping[str, int]] = None,
    ):
        """``budgets`` maps budgeted action names to their model bounds
        (a system plugin's ``budget_limits``); ``None`` derives the
        ZooKeeper defaults from the spec's configuration."""
        self.spec = spec
        self.mapping = mapping
        self.ensemble_factory = ensemble_factory
        self.rng = random.Random(seed)
        if budgets is None:
            config = spec.config
            budgets = {
                "NodeCrash": config.max_crashes,
                "PartitionStart": config.max_partitions,
                "LeaderProcessRequest": config.max_txns,
            }
        self.budgets = dict(budgets)
        self._labels = [
            inst.label
            for inst in spec.action_instances()
            if mapping.lookup(inst.label) is not None
        ]

    def _try_step(self, ensemble, label):
        """Attempt one mapped step on a copy; returns ``(committed,
        error)``.  ``committed`` is the post-step ensemble on success (or
        the erroring probe when the step raised -- its partial mutations
        are the crash state a caller wants to inspect) and None when the
        step is stuck; probing keeps stuck steps' partial mutations off
        the committed ensemble, so a validator can re-derive the exact
        same run from the labels alone."""
        mapped = self.mapping.lookup(label)
        if mapped is None or not _label_matches_head(
            ensemble, label, mapped.region == "baseline"
        ):
            return None, None
        probe = copy.deepcopy(ensemble)
        try:
            ok = mapped.step(probe, label)
        except ImplError as exc:
            return probe, exc
        return (probe if ok else None), None

    def explore(
        self, max_steps: int = 20, prefix: Sequence[ActionLabel] = ()
    ) -> Tuple[List[ActionLabel], Ensemble, Optional[ImplError]]:
        """One implementation run: the labels executed, the final
        ensemble, and the exception that ended the run (if any).

        ``prefix`` labels (a campaign scenario + fault schedule) execute
        first, in order; a prefix step that is stuck at the code level
        ends the scripted phase and random exploration continues from
        there.  ``max_steps`` bounds the random suffix only.

        Fault operations are bounded by the model configuration's crash
        and partition budgets: budgets are bounds of the verification
        *model*, so an implementation run must stay within them for the
        lockstep validation to be meaningful.  Prefix fault/txn labels
        count against the same budgets."""
        ensemble = self.ensemble_factory()
        executed: List[ActionLabel] = []
        budgets = self.budgets
        budget_used = {name: 0 for name in budgets}
        for label in prefix:
            committed, error = self._try_step(ensemble, label)
            if error is not None:
                executed.append(label)
                return executed, committed, error
            if committed is None:
                break
            ensemble = committed
            executed.append(label)
            if label.name in budget_used:
                budget_used[label.name] += 1
        for _ in range(max_steps):
            candidates = list(self._labels)
            self.rng.shuffle(candidates)
            progressed = False
            for label in candidates:
                if (
                    label.name in budgets
                    and budget_used[label.name] >= budgets[label.name]
                ):
                    continue
                committed, error = self._try_step(ensemble, label)
                if error is not None:
                    executed.append(label)
                    return executed, committed, error
                if committed is not None:
                    ensemble = committed
                    executed.append(label)
                    if label.name in budget_used:
                        budget_used[label.name] += 1
                    progressed = True
                    break
            if not progressed:
                break
        return executed, ensemble, None


class TraceValidator:
    """Validate implementation runs against the model, in lockstep."""

    def __init__(
        self,
        spec: Specification,
        mapping: ActionMapping,
        ensemble_factory: Callable[[], Ensemble],
        seed: int = 0,
        compared_variables=COMPARED_VARIABLES,
        budgets: Optional[Mapping[str, int]] = None,
    ):
        self.spec = spec
        self.explorer = ImplExplorer(
            spec, mapping, ensemble_factory, seed, budgets=budgets
        )
        self.mapping = mapping
        self.ensemble_factory = ensemble_factory
        self.compared_variables = tuple(compared_variables)

    def validate_labels(
        self, labels: Sequence[ActionLabel], run: int = 0
    ) -> ValidationReport:
        """Replay ``labels`` against BOTH the model and a fresh ensemble,
        comparing the compared variables after each step.

        This is the lockstep core shared by :meth:`validate_run` and the
        campaign's bottom-up shrink oracle (which feeds it candidate
        label subsequences)."""
        report = ValidationReport(runs=1)
        model_state: State = self.spec.initial_states()[0]
        ensemble = self.ensemble_factory()
        # Validate the comparison tuple against the snapshot up front: a
        # typo'd variable would otherwise silently never be compared
        # (the bug the Coordinator already fixed; shared helper).
        known, missing = split_compared_variables(
            ensemble.snapshot(), self.compared_variables
        )
        for variable in missing:
            report.issues.append(
                ValidationIssue(
                    "unknown_variable", 0, CONFIG_LABEL, variable, run=run
                )
            )
        for step, label in enumerate(labels):
            mapped = self.mapping.lookup(label)
            try:
                ok = mapped.step(ensemble, label)
            except ImplError as exc:
                report.impl_errors.append((run, step, label, exc))
                # the model must agree that this path is an error path:
                # the corresponding model action must lead to an error
                # state (checked by the code-level invariants), or at
                # minimum be enabled.
                inst = self.spec.instance_for(label)
                if inst.apply(self.spec.config, model_state) is None:
                    report.issues.append(
                        ValidationIssue(
                            "model_disabled", step, label, run=run
                        )
                    )
                return report
            if not ok:
                break
            report.executed.append(label)
            inst = self.spec.instance_for(label)
            nxt = inst.apply(self.spec.config, model_state)
            if nxt is None:
                report.issues.append(
                    ValidationIssue("model_disabled", step, label, run=run)
                )
                return report
            model_state = nxt
            report.steps_validated += 1
            impl = ensemble.snapshot()
            for variable in known:
                if model_state[variable] != impl[variable]:
                    report.issues.append(
                        ValidationIssue(
                            "state_mismatch",
                            step,
                            label,
                            variable,
                            model_state[variable],
                            impl[variable],
                            run=run,
                        )
                    )
                    return report
        return report

    def validate_run(
        self,
        max_steps: int = 20,
        prefix: Sequence[ActionLabel] = (),
        run: int = 0,
    ) -> ValidationReport:
        executed, _, _ = self.explorer.explore(max_steps, prefix=prefix)
        return self.validate_labels(executed, run=run)

    def validate(self, runs: int = 10, max_steps: int = 20) -> ValidationReport:
        total = ValidationReport()
        for run in range(runs):
            run_report = self.validate_run(max_steps, run=run)
            total.runs += 1
            total.steps_validated += run_report.steps_validated
            total.issues.extend(run_report.issues)
            total.impl_errors.extend(run_report.impl_errors)
            total.executed.extend(run_report.executed)
        return total
