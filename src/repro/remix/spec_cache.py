"""A process-level cache of composed specifications and action mappings.

Composing a mixed-grained :class:`~repro.tla.spec.Specification` rebuilds
every module, enumerates all action instances and wires invariants --
which dominates the startup of small conformance jobs.  A campaign runs
O(grains x scenarios x faults x seeds) jobs over only O(grains) distinct
specifications, so the cache keys composed specs on ``(name, config)``
(both hashable: :class:`~repro.zookeeper.config.ZkConfig` is a frozen
dataclass that embeds the :class:`SpecVariant`).

Forked campaign workers inherit the parent's populated cache by memory
image, so pre-warming once in the parent makes campaign startup
O(grains), not O(jobs).

Cached specifications are shared: callers must not mutate them (no
``spec.invariants`` surgery -- build a private spec for that).
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Tuple

from repro.tla.spec import Specification
from repro.zookeeper.config import SpecVariant, ZkConfig

_LOCK = threading.Lock()
_SPECS: Dict[Tuple, Specification] = {}
_MAPPINGS: Dict[str, object] = {}
_STATS = {"hits": 0, "misses": 0}


def cached_spec(
    name: str,
    config: Optional[ZkConfig] = None,
    variant: Optional[SpecVariant] = None,
) -> Specification:
    """A shared, composed Table 1 specification for ``(name, config)``.

    The first call per key composes via
    :func:`repro.zookeeper.specs.make_spec` and primes the instance
    index; later calls (and forked children) reuse the same object.
    """
    from repro.zookeeper.specs import make_spec

    config = config or ZkConfig()
    if variant is not None:
        config = config.with_variant(variant)
    key = (name, config)
    with _LOCK:
        spec = _SPECS.get(key)
        if spec is not None:
            _STATS["hits"] += 1
            return spec
        _STATS["misses"] += 1
    spec = make_spec(name, config)
    spec.action_instances()  # pre-enumerate so workers inherit the index
    with _LOCK:
        return _SPECS.setdefault(key, spec)


def cached_mapping(name: str):
    """The shared :class:`~repro.remix.mapping.ActionMapping` for a Table
    1 grain (mappings depend only on the granularity selection)."""
    from repro.remix.mapping import mapping_for
    from repro.zookeeper.specs import SELECTIONS

    with _LOCK:
        mapping = _MAPPINGS.get(name)
        if mapping is not None:
            return mapping
    mapping = mapping_for(SELECTIONS[name])
    with _LOCK:
        return _MAPPINGS.setdefault(name, mapping)


def stats() -> Dict[str, int]:
    """Cache hit/miss counters (for tests and campaign reports)."""
    with _LOCK:
        return dict(_STATS, size=len(_SPECS))


def clear() -> None:
    """Drop every cached spec/mapping and reset the counters."""
    with _LOCK:
        _SPECS.clear()
        _MAPPINGS.clear()
        _STATS["hits"] = 0
        _STATS["misses"] = 0
