"""A process-level cache of composed specifications and action mappings.

Composing a mixed-grained :class:`~repro.tla.spec.Specification` rebuilds
every module, enumerates all action instances and wires invariants --
which dominates the startup of small conformance jobs.  A campaign runs
O(grains x scenarios x faults x seeds) jobs over only O(grains) distinct
specifications, so the cache keys composed specs on ``(name, config)``
(both hashable: :class:`~repro.zookeeper.config.ZkConfig` is a frozen
dataclass that embeds the :class:`SpecVariant`).

Concurrent first calls for the same key are *single-flighted*: one
caller composes while the others wait on a per-key gate and then reuse
the finished object, so exactly one composition (and one ``misses``
increment) happens per key -- previously both paid the full composition
and one object was discarded.

Forked campaign workers inherit the parent's populated cache by memory
image, so pre-warming once in the parent makes campaign startup
O(grains), not O(jobs).

Cached specifications are shared: callers must not mutate them (no
``spec.invariants`` surgery -- build a private spec for that).
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, Optional, Tuple

from repro.tla.spec import Specification
from repro.zookeeper.config import SpecVariant, ZkConfig

_LOCK = threading.Lock()
_SPECS: Dict[Tuple, Specification] = {}
_MAPPINGS: Dict[str, object] = {}
_STATS = {"hits": 0, "misses": 0}
#: Per-key gates for in-flight compositions.  The composing thread holds
#: the gate; waiters block on it, then re-check the cache.
_INFLIGHT: Dict[Any, threading.Lock] = {}


def _single_flight(
    cache: Dict, key: Any, build: Callable[[], Any], count: bool
) -> Any:
    """Return ``cache[key]``, composing via ``build`` at most once per key
    across concurrent callers.  ``count`` updates the hit/miss stats
    (specs are counted, mappings are not)."""
    while True:
        with _LOCK:
            value = cache.get(key)
            if value is not None:
                if count:
                    _STATS["hits"] += 1
                return value
            gate = _INFLIGHT.get(key)
            if gate is None:
                gate = threading.Lock()
                gate.acquire()
                _INFLIGHT[key] = gate
                leader = True
            else:
                leader = False
        if not leader:
            # Wait for the composing thread, then re-check the cache (a
            # failed leader leaves the key absent and we retry as leader).
            gate.acquire()
            gate.release()
            continue
        try:
            value = build()
        except BaseException:
            with _LOCK:
                _INFLIGHT.pop(key, None)
            gate.release()
            raise
        with _LOCK:
            cache[key] = value
            if count:
                _STATS["misses"] += 1
            _INFLIGHT.pop(key, None)
        gate.release()
        return value


def cached_spec(
    name: str,
    config: Optional[ZkConfig] = None,
    variant: Optional[SpecVariant] = None,
) -> Specification:
    """A shared, composed Table 1 specification for ``(name, config)``.

    The first call per key composes via
    :func:`repro.zookeeper.specs.make_spec` and primes the instance
    index; later calls (and forked children) reuse the same object.
    Concurrent first calls compose exactly once (single-flight).
    """
    from repro.zookeeper.specs import make_spec

    config = config or ZkConfig()
    if variant is not None:
        config = config.with_variant(variant)
    key = (name, config)

    def build() -> Specification:
        spec = make_spec(name, config)
        spec.action_instances()  # pre-enumerate so workers inherit the index
        return spec

    return _single_flight(_SPECS, key, build, count=True)


def cached_mapping(name: str):
    """The shared :class:`~repro.remix.mapping.ActionMapping` for a Table
    1 grain (mappings depend only on the granularity selection)."""
    from repro.remix.mapping import mapping_for
    from repro.zookeeper.specs import SELECTIONS

    return _single_flight(
        _MAPPINGS,
        ("mapping", name),
        lambda: mapping_for(SELECTIONS[name]),
        count=False,
    )


def stats() -> Dict[str, int]:
    """Cache hit/miss counters (for tests and campaign reports)."""
    with _LOCK:
        return dict(_STATS, size=len(_SPECS))


def clear() -> None:
    """Drop every cached spec/mapping and reset the counters (in-flight
    compositions, if any, finish into the fresh cache)."""
    with _LOCK:
        _SPECS.clear()
        _MAPPINGS.clear()
        _STATS["hits"] = 0
        _STATS["misses"] = 0
