"""A process-level cache of composed specifications and action mappings,
with an on-disk persistence layer for derived spec products.

Composing a mixed-grained :class:`~repro.tla.spec.Specification` rebuilds
every module, enumerates all action instances and wires invariants --
which dominates the startup of small conformance jobs.  A campaign runs
O(grains x scenarios x faults x seeds) jobs over only O(grains) distinct
specifications, so the cache keys composed specs on ``(name, config)``
(both hashable: :class:`~repro.zookeeper.config.ZkConfig` is a frozen
dataclass that embeds the :class:`SpecVariant`).

Concurrent first calls for the same key are *single-flighted*: one
caller composes while the others wait on a per-key gate and then reuse
the finished object, so exactly one composition (and one ``misses``
increment) happens per key -- previously both paid the full composition
and one object was discarded.

Forked campaign workers inherit the parent's populated cache by memory
image, so pre-warming once in the parent makes campaign startup
O(grains), not O(jobs).

On-disk persistence
-------------------

Specifications themselves hold closures and cannot be pickled, so what
persists across CLI invocations is their derived, picklable products:
scripted **scenario-prefix traces** (scenario + injected fault schedule,
:func:`cached_prefix`), which every campaign cell -- top-down replay,
bottom-up validation and the shrink stage's witness rebuilds -- starts
from.  Entries live under one directory per *system and spec-source
digest* (a SHA-1 over the plugin's declared source packages plus a
format version), so editing any spec source invalidates that system's
whole cache -- and nobody else's -- rather than ever serving stale
traces.  The location is
``~/.cache/repro-spec-cache`` unless ``REPRO_SPEC_CACHE_DIR`` overrides
it (set it to ``off`` -- or pass ``--spec-cache off`` on the CLI -- to
disable persistence).  Writes are atomic (temp file + rename), so
concurrent CLI invocations never observe torn entries.

Cached specifications are shared: callers must not mutate them (no
``spec.invariants`` surgery -- build a private spec for that).
Scenarios returned by :func:`cached_prefix` are fresh per call and safe
to extend.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import threading
from dataclasses import asdict
from typing import Any, Callable, Dict, Optional, Tuple

from repro.tla.spec import Specification
from repro.zookeeper.config import SpecVariant, ZkConfig

#: Bump when the on-disk payload format changes.
_DISK_FORMAT = 1

_LOCK = threading.Lock()
_SPECS: Dict[Tuple, Specification] = {}
_MAPPINGS: Dict[str, object] = {}
_PREFIXES: Dict[Tuple, Tuple[tuple, tuple]] = {}
_STATS = {
    "hits": 0,
    "misses": 0,
    "prefix_hits": 0,
    "prefix_misses": 0,
    "disk_hits": 0,
    "disk_misses": 0,
}
#: Per-key gates for in-flight compositions.  The composing thread holds
#: the gate; waiters block on it, then re-check the cache.
_INFLIGHT: Dict[Any, threading.Lock] = {}

#: Explicit disk-cache override (CLI ``--spec-cache``): None = resolve
#: from the environment, "" = disabled, otherwise a directory path.
_DISK_OVERRIDE: Optional[str] = None

#: Memoized source digest of the default (zookeeper) system.  Kept as
#: its own module attribute -- rather than an entry of
#: ``_SOURCE_DIGESTS`` -- so tests can monkeypatch it to simulate a
#: spec-source edit.
_SOURCE_DIGEST: Optional[str] = None

#: Memoized source digests of non-default systems, keyed by plugin name.
_SOURCE_DIGESTS: Dict[str, str] = {}


def _single_flight(
    cache: Dict, key: Any, build: Callable[[], Any], count: bool
) -> Any:
    """Return ``cache[key]``, composing via ``build`` at most once per key
    across concurrent callers.  ``count`` updates the hit/miss stats
    (specs are counted, mappings are not)."""
    while True:
        with _LOCK:
            value = cache.get(key)
            if value is not None:
                if count:
                    _STATS["hits"] += 1
                return value
            gate = _INFLIGHT.get(key)
            if gate is None:
                gate = threading.Lock()
                gate.acquire()
                _INFLIGHT[key] = gate
                leader = True
            else:
                leader = False
        if not leader:
            # Wait for the composing thread, then re-check the cache (a
            # failed leader leaves the key absent and we retry as leader).
            gate.acquire()
            gate.release()
            continue
        try:
            value = build()
        except BaseException:
            with _LOCK:
                _INFLIGHT.pop(key, None)
            gate.release()
            raise
        with _LOCK:
            cache[key] = value
            if count:
                _STATS["misses"] += 1
            _INFLIGHT.pop(key, None)
        gate.release()
        return value


def _plugin(system: str):
    """Resolve a system plugin by name (lazy import avoids a cycle with
    the package ``__init__``'s eager campaign import)."""
    from repro.remix.registry import system_plugin

    return system_plugin(system)


def cached_spec(
    name: str,
    config: Optional[ZkConfig] = None,
    variant: Optional[SpecVariant] = None,
    *,
    system: str = "zookeeper",
) -> Specification:
    """A shared, composed specification for ``(system, name, config)``.

    The first call per key composes via the system plugin's
    ``make_spec`` and primes the instance index; later calls (and forked
    children) reuse the same object.  Concurrent first calls compose
    exactly once (single-flight).  ``variant`` is a ZooKeeper-only
    convenience that folds into the config before keying.
    """
    plugin = _plugin(system)
    config = config or plugin.default_config()
    if variant is not None:
        config = config.with_variant(variant)
    key = (system, name, config)

    def build() -> Specification:
        spec = plugin.make_spec(name, config)
        spec.action_instances()  # pre-enumerate so workers inherit the index
        # Pre-compile the incremental engine core (interference matrix,
        # guard/outcome memo groups) in the parent: the campaign's
        # forked workers and every suffix RandomWalker then share it by
        # memory image instead of recompiling per cell.
        from repro.checker.engine import compiled_for

        compiled_for(spec)
        return spec

    return _single_flight(_SPECS, key, build, count=True)


def cached_mapping(name: str, *, system: str = "zookeeper"):
    """The shared :class:`~repro.remix.mapping.ActionMapping` for one
    grain of one system (mappings depend only on the grain)."""
    return _single_flight(
        _MAPPINGS,
        ("mapping", system, name),
        lambda: _plugin(system).make_mapping(name),
        count=False,
    )


# -------------------------------------------------------- on-disk layer


def set_disk_cache_dir(path: Optional[str]) -> None:
    """Override the on-disk cache location for this process.

    ``None`` restores environment-based resolution; ``""`` (or ``"off"``
    / ``"0"``) disables persistence entirely (the CLI's
    ``--spec-cache off``)."""
    global _DISK_OVERRIDE
    if path is not None and path.strip().lower() in ("", "off", "0", "none"):
        path = ""
    _DISK_OVERRIDE = path


def _disk_dir() -> Optional[str]:
    """The active on-disk cache directory, or None when disabled."""
    if _DISK_OVERRIDE is not None:
        return _DISK_OVERRIDE or None
    env = os.environ.get("REPRO_SPEC_CACHE_DIR")
    if env is not None:
        if env.strip().lower() in ("", "off", "0", "none"):
            return None
        return env
    return os.path.join(
        os.path.expanduser("~"), ".cache", "repro-spec-cache"
    )


def _compute_digest(system: str) -> str:
    import importlib

    from repro.tla.codegen import CODEGEN_VERSION

    # The kernel emitter's version participates in the invalidation rule:
    # cached artifacts derived under one emitter (memo layouts, traces
    # reproduced through compiled runs) are orphaned when the emitted
    # code's shape or semantics change.
    digest = hashlib.sha1(
        f"format/{_DISK_FORMAT}/codegen/{CODEGEN_VERSION}".encode()
    )
    for package in _plugin(system).spec_source_packages:
        pkg = importlib.import_module(package)
        root = os.path.dirname(pkg.__file__)
        for entry in sorted(os.listdir(root)):
            if not entry.endswith(".py"):
                continue
            digest.update(entry.encode())
            with open(os.path.join(root, entry), "rb") as fh:
                digest.update(fh.read())
    return digest.hexdigest()[:20]


def source_digest(system: str = "zookeeper") -> str:
    """A SHA-1 over one system's spec-defining sources (the packages its
    plugin declares in ``spec_source_packages``) plus the payload format
    version.

    This is the cache's *invalidation rule*: entries live under one
    directory per (system, digest), so any edit to any spec source
    orphans every previous entry of that system -- and only that system
    -- instead of ever serving a stale trace."""
    global _SOURCE_DIGEST
    if system == "zookeeper":
        if _SOURCE_DIGEST is None:
            _SOURCE_DIGEST = _compute_digest(system)
        return _SOURCE_DIGEST
    digest = _SOURCE_DIGESTS.get(system)
    if digest is None:
        digest = _SOURCE_DIGESTS[system] = _compute_digest(system)
    return digest


def _entry_path(directory: str, key_json: str, system: str) -> str:
    entry = hashlib.sha1(key_json.encode("utf-8")).hexdigest()[:24]
    return os.path.join(
        directory, f"{system}-{source_digest(system)}", f"{entry}.pkl"
    )


def _disk_load(key_json: str, system: str) -> Optional[Any]:
    directory = _disk_dir()
    if directory is None:
        return None
    try:
        with open(_entry_path(directory, key_json, system), "rb") as fh:
            payload = pickle.load(fh)
    except (OSError, pickle.PickleError, EOFError, AttributeError):
        with _LOCK:
            _STATS["disk_misses"] += 1
        return None
    with _LOCK:
        _STATS["disk_hits"] += 1
    return payload


def _disk_store(key_json: str, payload: Any, system: str) -> None:
    directory = _disk_dir()
    if directory is None:
        return
    path = _entry_path(directory, key_json, system)
    try:
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)  # atomic: readers never see torn entries
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
    except OSError:
        pass  # a read-only or full cache dir degrades to compute-only


def _prefix_key_json(
    grain: str,
    config: ZkConfig,
    scenario: str,
    fault: str,
    leader: int,
    follower: int,
    quorum: Tuple[int, ...],
    system: str,
) -> str:
    return json.dumps(
        {
            "kind": "prefix",
            "system": system,
            "grain": grain,
            "config": asdict(config),
            "scenario": scenario,
            "fault": fault,
            "leader": leader,
            "follower": follower,
            "quorum": list(quorum),
        },
        sort_keys=True,
        separators=(",", ":"),
    )


def cached_prefix(
    grain: str,
    config: ZkConfig,
    scenario: str,
    fault: str,
    leader: int,
    follower: int,
    quorum: Optional[Tuple[int, ...]] = None,
    *,
    system: str = "zookeeper",
):
    """The scripted campaign prefix for one cell coordinate: scenario
    prefix plus injected fault schedule, as a fresh
    :class:`~repro.system.plugin.Scenario`.

    Resolution order: per-process memory (forked workers inherit it),
    then the on-disk layer (repeated CLI invocations start warm), then
    scripting it from scratch (and persisting the labels + state values,
    which unlike specifications are plain picklable data).
    :class:`~repro.system.plugin.ScenarioError` (an inapplicable
    scenario or fault for this grain/config) propagates uncached.
    """
    from repro.system.plugin import Scenario
    from repro.tla.state import State

    plugin = _plugin(system)
    quorum = tuple(quorum) if quorum is not None else config.servers
    spec = cached_spec(grain, config, system=system)
    key = (system, grain, config, scenario, fault, leader, follower, quorum)
    with _LOCK:
        entry = _PREFIXES.get(key)
        if entry is not None:
            _STATS["prefix_hits"] += 1
    if entry is None:
        key_json = _prefix_key_json(
            grain, config, scenario, fault, leader, follower, quorum, system
        )
        payload = _disk_load(key_json, system)
        if (
            isinstance(payload, tuple)
            and len(payload) == 2
            and len(payload[0]) == len(payload[1]) - 1
        ):
            entry = (tuple(payload[0]), tuple(payload[1]))
        else:
            built = plugin.scenario_prefix(scenario, spec, leader, quorum)
            plugin.fault_schedule(fault).inject(built, leader, follower)
            entry = (
                tuple(built.labels),
                tuple(state.values for state in built.states),
            )
            _disk_store(key_json, entry, system)
        with _LOCK:
            _PREFIXES.setdefault(key, entry)
            _STATS["prefix_misses"] += 1
    labels, values = entry
    states = [State(spec.schema, v) for v in values]
    scenario_obj = Scenario(spec, state=states[-1])
    scenario_obj.labels = list(labels)
    scenario_obj.states = states
    return scenario_obj


def stats() -> Dict[str, int]:
    """Cache hit/miss counters (for tests and campaign reports)."""
    with _LOCK:
        return dict(_STATS, size=len(_SPECS))


def clear() -> None:
    """Drop every in-memory cached spec/mapping/prefix and reset the
    counters (in-flight compositions, if any, finish into the fresh
    cache).  On-disk entries are untouched -- they are invalidated by
    the source digest, not by process lifecycle."""
    with _LOCK:
        _SPECS.clear()
        _MAPPINGS.clear()
        _PREFIXES.clear()
        for counter in _STATS:
            _STATS[counter] = 0
