"""Parallel conformance campaigns: a fault-scenario matrix over replay.

The paper's conformance checker (§3.4-§3.5) replays random model traces
at the code level one at a time.  A *campaign* turns that demo loop into
a throughput-oriented engine: it enumerates a matrix of

    (direction) x (spec grain) x (scenario prefix) x (fault schedule) x (seed)

cells, fans them across the fork-based :class:`TaskPool`, and merges the
per-cell findings into one deduplicated, fingerprint-keyed report.

The *direction* axis covers the paper's two conformance methodologies:

- ``topdown`` (the default): model-driven replay.  A random model trace
  is replayed at the code level through the
  :class:`~repro.remix.coordinator.Coordinator` (§3.5).
- ``bottomup``: implementation-driven validation (§6's alternative
  approach).  A fresh :class:`~repro.impl.ensemble.Ensemble` is driven
  through the scripted scenario + fault prefix and a seeded random
  suffix by the :class:`~repro.remix.trace_validation.ImplExplorer`,
  and every executed label is checked in lockstep against the composed
  model by :class:`~repro.remix.trace_validation.TraceValidator`.
  Bottom-up cells catch the divergences top-down replay structurally
  cannot: implementation steps the model *forbids* (a replayed model
  trace only ever contains model-enabled actions).

Each top-down cell:

1. fetches the grain's composed specification from the spec cache
   (:mod:`repro.remix.spec_cache` -- campaign startup is O(grains), not
   O(jobs), because forked workers inherit the warmed cache),
2. drives it through a canned scenario prefix (election / sync /
   broadcast / commit, :data:`repro.zookeeper.scenarios.SCENARIO_PREFIXES`)
   and a scripted fault schedule (crash / partition / shutdown,
   :data:`repro.zookeeper.faults.FAULT_SCHEDULES`),
3. random-walks a suffix from the resulting state under a seed derived
   from the cell coordinates,
4. replays the full trace at the code level through the
   :class:`~repro.remix.coordinator.Coordinator`, and
5. reduces discrepancies and implementation-bug reports to *stable*
   fingerprints (SHA-1 over a canonical JSON form -- reproducible across
   processes and across runs, which is what lets a nightly CI job fail
   on fingerprints it has never seen before).

Bottom-up cells (:func:`run_validation_cell`) share steps 1-2 via the
same cached prefixes, then explore the *implementation* under the cell
seed and reduce :class:`~repro.remix.trace_validation.ValidationIssue`
and :class:`~repro.impl.exceptions.ZkImplError` outcomes to the same
fingerprint scheme, with ``direction: "bottomup"`` inside the identity
so the two directions never collide.

Determinism: cells carry their own seeds, the pool slots results by cell
index, and findings dedup in first-seen cell order -- so ``workers=2``
produces a report identical in findings to ``workers=1``, validation
cells included.

Two optional stages turn the detector into a budget-aware repro factory:

- ``shrink=True`` adds a post-merge minimization stage: each distinct
  finding's first witnessing trace is rebuilt from the metadata stored
  in the finding (scenario prefix + fault schedule + suffix seed/steps),
  then delta-debugged across the same :class:`TaskPool` under a
  :class:`~repro.remix.minimize.ConformanceOracle` that accepts a
  candidate iff it reproduces the *same* fingerprint.  The result is a
  ``min_trace`` (replayable labels + length) attached to the finding.
- ``adaptive=True`` replaces the uniform matrix with a round-based
  scheduler: every round re-allocates a third of its cells toward the
  (grain, scenario, fault) coordinates with the highest
  novel-fingerprint yield so far (largest-remainder on yields) and
  spends the rest on the least-sampled cells, under the same total job
  budget.  Rounds are barriers, so worker count still never changes the
  report.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import time
import warnings
import zlib
from collections.abc import Mapping as ABCMapping
from dataclasses import asdict, dataclass
from dataclasses import field as dataclass_field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.checker.backends import ExecutionBackend, create_backend
from repro.checker.backends.supervision import SupervisionPolicy, TaskSupervisor
from repro.remix.journal import CampaignJournal, JournaledBackend
from repro.checker.random_walk import RandomWalker
from repro.checker.trace import Trace
from repro.remix.coordinator import Coordinator
from repro.remix.registry import system_plugin
from repro.remix.request import (  # redundant aliases: re-exports (the historical home)
    DEFAULT_DIRECTIONS as DEFAULT_DIRECTIONS,
    DIRECTIONS as DIRECTIONS,
    CampaignRequest as CampaignRequest,
    RequestError as RequestError,
    parse_budget as parse_budget,
)
from repro.remix.spec_cache import cached_mapping, cached_prefix, cached_spec
from repro.remix.trace_validation import TraceValidator, ValidationReport
from repro.system.plugin import ScenarioError
from repro.zookeeper.config import ZkConfig
from repro.zookeeper.faults import FAULT_SCHEDULES
from repro.zookeeper.scenarios import SCENARIO_PREFIXES

#: Version tag of the JSON report; bump on breaking schema changes.
#: /2 adds per-finding ``witness`` metadata (suffix seed/steps, enough to
#: re-derive the witnessing trace) and the optional ``min_trace`` payload.
#: /3 adds the ``direction`` axis (bottom-up validation cells), the
#: per-finding ``direction`` field and min_trace ``aliases`` groups.
#: /4 adds the ``degraded`` section (supervision counters, quarantined
#: and skipped cells) and the ``degraded`` cell status.
SCHEMA = "repro.campaign/4"

#: Report versions :meth:`CampaignReport.from_json` (and ``--baseline``)
#: accept: /1 reports lack witness/min_trace, /2 reports lack direction,
#: /3 reports lack the degraded section, but all carry the same
#: fingerprint-keyed findings, so they remain valid baselines.
COMPAT_SCHEMAS = (
    "repro.campaign/1",
    "repro.campaign/2",
    "repro.campaign/3",
    SCHEMA,
)

#: Grains with a code-level action mapping (SysSpec/mSpec-4 replay the
#: fine-grained FLE, which the coordinator cannot drive; see mapping_for).
DEFAULT_GRAINS: Tuple[str, ...] = ("mSpec-1", "mSpec-2", "mSpec-3")

DEFAULT_SCENARIOS: Tuple[str, ...] = tuple(SCENARIO_PREFIXES)
DEFAULT_FAULTS: Tuple[str, ...] = tuple(s.name for s in FAULT_SCHEDULES)

#: Handler spec every execution backend resolves for campaign tasks;
#: the socket backend ships it inside each task frame.
TASK_HANDLER = "repro.remix.campaign:execute_campaign_task"


def campaign_config() -> ZkConfig:
    """The standard campaign configuration: crash budget for the crash
    schedules plus one partition so the partition schedules are enabled,
    and one message fault for the delay/duplication schedules."""
    return ZkConfig(
        n_servers=3, max_txns=1, max_crashes=2, max_partitions=1,
        max_epoch=3, max_msg_faults=1,
    )


def config_from_meta(meta: Dict[str, Any]) -> Any:
    """Reconstruct the campaign configuration from a report's meta
    block, so min_traces verify against the spec they were produced with.

    Dispatches on the block's ``system`` entry (absent in pre-plugin
    reports, which are always ZooKeeper); the plugin handles its own
    legacy quirks (e.g. pre-variant /1-era ZooKeeper blocks fall back to
    the default variant)."""
    system = meta.get("system", "zookeeper")
    return system_plugin(system).config_from_meta(meta)


# ------------------------------------------------------------ fingerprints


def canonical_value(value: Any) -> Any:
    """Reduce a model/impl value to a JSON-stable canonical form.

    Sets are sorted by their canonical JSON rendering (``repr`` of a
    frozenset depends on hash order, which varies across processes);
    records and dicts sort by key; everything non-primitive falls back
    to ``repr``.
    """
    if isinstance(value, ABCMapping):
        return {
            str(key): canonical_value(val)
            for key, val in sorted(value.items(), key=lambda kv: str(kv[0]))
        }
    if isinstance(value, (set, frozenset)):
        items = [canonical_value(item) for item in value]
        return sorted(items, key=lambda item: json.dumps(item, sort_keys=True))
    if isinstance(value, (tuple, list)):
        return [canonical_value(item) for item in value]
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, (int, float, str)):
        return value
    return repr(value)


def finding_fingerprint(payload: Dict[str, Any]) -> str:
    """A short, stable fingerprint of a finding's identity fields."""
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha1(blob.encode("utf-8")).hexdigest()[:16]


def _cell_seed(job: "CampaignJob", trace_index: int) -> int:
    """A per-trace seed derived from stable cell coordinates (no Python
    ``hash``: that is randomized per process for strings).

    Top-down coordinates keep their historical (direction-free) form so
    /2-era witnesses rebuild unchanged; bottom-up cells of the same
    coordinates prepend the direction and therefore explore differently.
    Non-default systems likewise prepend their name, which keeps every
    ZooKeeper seed stream bit-identical to pre-plugin campaigns.
    """
    coordinates = f"{job.grain}/{job.scenario}/{job.fault}/{job.seed}"
    if job.direction != "topdown":
        coordinates = f"{job.direction}/{coordinates}"
    if job.system != "zookeeper":
        coordinates = f"{job.system}/{coordinates}"
    return (zlib.crc32(coordinates.encode("utf-8")) << 16) ^ (
        job.seed * 1_000_003 + trace_index
    )


def trace_findings(result, trace, grain: str) -> List[Dict[str, Any]]:
    """Reduce one replay result to identity-fingerprinted finding dicts.

    Shared between :func:`run_cell` and the shrink stage's
    :class:`~repro.remix.minimize.ConformanceOracle`, which accepts a
    candidate trace iff the target fingerprint is reproduced by exactly
    this reduction.
    """
    findings: List[Dict[str, Any]] = []
    for discrepancy in result.discrepancies:
        identity = {
            "kind": discrepancy.kind,
            "grain": grain,
            "label": str(discrepancy.label),
            "variable": discrepancy.variable,
            "model": canonical_value(discrepancy.model_value),
            "impl": canonical_value(discrepancy.impl_value),
        }
        findings.append(
            {
                "fingerprint": finding_fingerprint(identity),
                "detail": str(discrepancy),
                "direction": "topdown",
                **identity,
            }
        )
    if result.impl_error is not None:
        step = result.impl_error_step or 0
        identity = {
            "kind": "impl_bug",
            "grain": grain,
            "bug_id": result.impl_error.bug_id,
            "error": type(result.impl_error).__name__,
            "label": str(trace.labels[step]) if trace.labels else "",
        }
        findings.append(
            {
                "fingerprint": finding_fingerprint(identity),
                "detail": (
                    f"{identity['error']}"
                    f"{' [' + identity['bug_id'] + ']' if identity['bug_id'] else ''}"
                    f" at {identity['label']}"
                ),
                "direction": "topdown",
                **identity,
            }
        )
    return findings


def validation_findings(
    report: ValidationReport, grain: str
) -> List[Dict[str, Any]]:
    """Reduce one bottom-up validation report to fingerprinted findings.

    The identity payload embeds ``direction: "bottomup"``: a bug
    reachable through implementation exploration is a distinct piece of
    conformance evidence from the same bug reached by model replay, and
    keeping the directions' fingerprint spaces disjoint means existing
    top-down baselines are never silently "satisfied" by bottom-up hits.
    Step/run indices stay out of the identity so re-encounters dedup.
    """
    findings: List[Dict[str, Any]] = []
    for issue in report.issues:
        identity = {
            "kind": issue.kind,
            "direction": "bottomup",
            "grain": grain,
            "label": str(issue.label),
            "variable": issue.variable,
            "model": canonical_value(issue.model_value),
            "impl": canonical_value(issue.impl_value),
        }
        findings.append(
            {
                "fingerprint": finding_fingerprint(identity),
                "detail": str(issue),
                "run": issue.run,
                **identity,
            }
        )
    for run, step, label, error in report.impl_errors:
        identity = {
            "kind": "impl_bug",
            "direction": "bottomup",
            "grain": grain,
            "bug_id": error.bug_id,
            "error": type(error).__name__,
            "label": str(label),
        }
        findings.append(
            {
                "fingerprint": finding_fingerprint(identity),
                "detail": (
                    f"{identity['error']}"
                    f"{' [' + identity['bug_id'] + ']' if identity['bug_id'] else ''}"
                    f" at {identity['label']} (run {run} step {step})"
                ),
                "run": run,
                **identity,
            }
        )
    return findings


# ------------------------------------------------------------ jobs & cells


@dataclass(frozen=True)
class CampaignJob:
    """One cell of the campaign matrix (self-contained and picklable)."""

    index: int
    grain: str
    scenario: str
    fault: str
    seed: int
    traces: int
    max_steps: int
    direction: str = "topdown"
    system: str = "zookeeper"

    @property
    def cell_id(self) -> str:
        base = f"{self.grain}/{self.scenario}/{self.fault}/s{self.seed}"
        if self.direction == "topdown":
            return base  # historical form; /2-era reports stay comparable
        return f"{self.direction}:{base}"


def _skipped_cell(job: CampaignJob) -> Dict[str, Any]:
    return {
        "direction": job.direction,
        "grain": job.grain,
        "scenario": job.scenario,
        "fault": job.fault,
        "seed": job.seed,
        "status": "skipped",
        "traces": 0,
        "steps_replayed": 0,
        "actions_covered": 0,
        "discrepancies": 0,
        "impl_bugs": 0,
        "findings": [],
    }


def run_cell(job: CampaignJob, config: ZkConfig) -> Dict[str, Any]:
    """Execute one matrix cell; returns a plain-JSON-able cell record.

    This is the campaign's worker function: it runs identically inline
    and inside a forked :class:`TaskPool` worker.
    """
    plugin = system_plugin(job.system)
    spec = cached_spec(job.grain, config, system=job.system)
    mapping = cached_mapping(job.grain, system=job.system)
    leader = config.n_servers - 1
    follower = 0
    cell = _skipped_cell(job)
    try:
        prefix = cached_prefix(
            job.grain,
            config,
            job.scenario,
            job.fault,
            leader,
            follower,
            system=job.system,
        )
    except ScenarioError as error:
        cell["status"] = "inapplicable"
        cell["reason"] = str(error)
        return cell

    coordinator = Coordinator(
        mapping,
        plugin.ensemble_factory(config),
        compared_variables=plugin.compared_variables,
    )
    cell["status"] = "ok"
    covered = set()
    findings: List[Dict[str, Any]] = []
    for trace_index in range(job.traces):
        walker = RandomWalker(spec, seed=_cell_seed(job, trace_index))
        suffix = walker.walk(job.max_steps, start=prefix.state)
        trace = Trace(
            states=prefix.states + suffix.states[1:],
            labels=prefix.labels + suffix.labels,
        )
        result = coordinator.replay(trace)
        cell["traces"] += 1
        cell["steps_replayed"] += result.steps_executed
        covered.update(
            label.name for label in trace.labels[: result.steps_executed]
        )
        for finding in trace_findings(result, trace, job.grain):
            # Enough metadata to re-derive the witnessing trace without
            # the trace itself: the scenario prefix and fault schedule
            # are scripted, the random suffix is fully determined by its
            # seed and step budget (what the shrink stage rebuilds).
            finding["witness"] = {
                "direction": "topdown",
                "scenario": job.scenario,
                "fault": job.fault,
                "seed": job.seed,
                "leader": leader,
                "follower": follower,
                "suffix_seed": _cell_seed(job, trace_index),
                "suffix_steps": job.max_steps,
                "steps": len(trace.labels),
            }
            findings.append(finding)
            if finding["kind"] == "impl_bug":
                cell["impl_bugs"] += 1
            else:
                cell["discrepancies"] += 1
    cell["actions_covered"] = len(covered)
    cell["findings"] = findings
    return cell


def run_validation_cell(job: CampaignJob, config: ZkConfig) -> Dict[str, Any]:
    """Execute one bottom-up matrix cell: drive fresh ensembles through
    the cell's scripted prefix + seeded random exploration, validate the
    executed labels in lockstep against the cached composed spec, and
    reduce the outcomes to the same fingerprinted finding schema.

    Like :func:`run_cell` it runs identically inline and inside a forked
    :class:`TaskPool` worker; the explorer seed is derived from the cell
    coordinates, so the cell is a pure function of ``(job, config)`` and
    worker count never changes the merged report.
    """
    plugin = system_plugin(job.system)
    spec = cached_spec(job.grain, config, system=job.system)
    mapping = cached_mapping(job.grain, system=job.system)
    leader = config.n_servers - 1
    follower = 0
    cell = _skipped_cell(job)
    try:
        prefix = cached_prefix(
            job.grain,
            config,
            job.scenario,
            job.fault,
            leader,
            follower,
            system=job.system,
        )
    except ScenarioError as error:
        cell["status"] = "inapplicable"
        cell["reason"] = str(error)
        return cell

    cell["status"] = "ok"
    covered = set()
    findings: List[Dict[str, Any]] = []
    for trace_index in range(job.traces):
        explorer_seed = _cell_seed(job, trace_index)
        validator = TraceValidator(
            spec,
            mapping,
            plugin.ensemble_factory(config),
            seed=explorer_seed,
            compared_variables=plugin.compared_variables,
            budgets=plugin.budget_limits(config),
        )
        executed, _, _ = validator.explorer.explore(
            job.max_steps, prefix=prefix.labels
        )
        report = validator.validate_labels(executed, run=trace_index)
        cell["traces"] += 1
        cell["steps_replayed"] += report.steps_validated
        covered.update(label.name for label in executed)
        for finding in validation_findings(report, job.grain):
            # The witnessing run is re-derivable without trace bytes:
            # prefix from (scenario, fault), the explored suffix from
            # the explorer seed + step budget.
            finding["witness"] = {
                "direction": "bottomup",
                "scenario": job.scenario,
                "fault": job.fault,
                "seed": job.seed,
                "leader": leader,
                "follower": follower,
                "explorer_seed": explorer_seed,
                "explorer_steps": job.max_steps,
                "steps": len(executed),
            }
            findings.append(finding)
            if finding["kind"] == "impl_bug":
                cell["impl_bugs"] += 1
            else:
                cell["discrepancies"] += 1
    cell["actions_covered"] = len(covered)
    cell["findings"] = findings
    return cell


def execute_campaign_task(message: Dict[str, Any]) -> Any:
    """Execute one self-describing campaign task message.

    This is the single worker entry point behind *every* execution
    backend (inline, fork, socket) -- one code path per cell is what
    makes the merged report bitwise-identical across backends.  The
    message is plain JSON: it names the system, carries the serialized
    config, and describes either a matrix cell or a shrink job::

        {"kind": "cell", "system": "zookeeper", "config": {...},
         "job": {"index": 0, "grain": "mSpec-1", "scenario": "election",
                 "fault": "none", "seed": 7, "traces": 2,
                 "max_steps": 12, "direction": "topdown",
                 "system": "zookeeper"}}
        {"kind": "shrink", "system": ..., "config": {...},
         "finding": {...}, "shrink_rounds": 10}

    Results are plain JSON too, so the message can travel over any
    transport (a fork pipe, a TCP frame) without pickling.
    """
    system = message.get("system", "zookeeper")
    config = system_plugin(system).config_from_meta(
        {"system": system, "config": message.get("config", {})}
    )
    kind = message.get("kind")
    if kind == "cell":
        job = CampaignJob(**message["job"])
        if job.direction == "bottomup":
            return run_validation_cell(job, config)
        return run_cell(job, config)
    if kind == "shrink":
        from repro.remix.minimize import shrink_finding

        return shrink_finding(
            message["finding"],
            config,
            message.get("shrink_rounds", 10),
            system=system,
        )
    raise ValueError(f"unknown campaign task kind {kind!r}")


# ------------------------------------------------------------ the report


def clean_degraded() -> Dict[str, Any]:
    """The ``degraded`` section of a run nothing went wrong in.

    Deterministically identical across backends and worker counts, so
    the report-identity guarantees survive the schema addition.  Shape
    matches :meth:`TaskSupervisor.snapshot` plus the cell-level lists."""
    return {
        "supervision": {
            "retries": 0,
            "timeouts": 0,
            "worker_deaths": 0,
            "respawns": 0,
            "quarantined": [],
        },
        "quarantined_cells": [],
        "skipped_cells": [],
    }


@dataclass
class CampaignReport:
    """Merged outcome of a campaign: per-cell stats plus deduplicated,
    fingerprint-keyed findings in first-seen order.

    ``degraded`` is the truth-telling section: everything that kept the
    campaign from being a perfectly clean run of the full matrix --
    supervision counters (retries, timeouts, worker deaths, respawns),
    quarantined poison cells, and budget-skipped cells.  A clean run's
    section is :func:`clean_degraded`, bit for bit."""

    meta: Dict[str, Any]
    cells: List[Dict[str, Any]]
    findings: List[Dict[str, Any]]
    degraded: Dict[str, Any] = dataclass_field(default_factory=clean_degraded)

    @property
    def totals(self) -> Dict[str, int]:
        by_status: Dict[str, int] = {}
        for cell in self.cells:
            by_status[cell["status"]] = by_status.get(cell["status"], 0) + 1
        return {
            "cells": len(self.cells),
            "ok": by_status.get("ok", 0),
            "inapplicable": by_status.get("inapplicable", 0),
            "skipped": by_status.get("skipped", 0),
            "degraded": by_status.get("degraded", 0),
            "traces": sum(cell["traces"] for cell in self.cells),
            "steps_replayed": sum(
                cell["steps_replayed"] for cell in self.cells
            ),
            "discrepancies": sum(
                cell["discrepancies"] for cell in self.cells
            ),
            "impl_bugs": sum(cell["impl_bugs"] for cell in self.cells),
            "distinct_findings": len(self.findings),
            "bottomup_findings": sum(
                1
                for finding in self.findings
                if finding.get("direction") == "bottomup"
            ),
            "min_traces": sum(
                1
                for finding in self.findings
                if finding.get("min_trace", {}).get("status") == "ok"
            ),
            "aliased_findings": sum(
                len(finding.get("aliases", ()))
                for finding in self.findings
            ),
        }

    def fingerprints(self, kind: Optional[str] = None) -> List[str]:
        """Finding fingerprints, optionally restricted to one kind
        (``"impl_bug"`` for the nightly regression gate).

        Fingerprints folded into a group representative's ``aliases`` by
        the min-trace dedup still count: an alias is the same underlying
        behaviour, and the baseline gate must keep recognizing it."""
        out: List[str] = []
        for finding in self.findings:
            if kind is None or finding["kind"] == kind:
                out.append(finding["fingerprint"])
            for alias in finding.get("aliases", ()):
                if kind is None or alias.get("kind") == kind:
                    out.append(alias["fingerprint"])
        return out

    def summary(self) -> str:
        totals = self.totals
        degraded = (
            f", {totals['degraded']} degraded" if totals["degraded"] else ""
        )
        return (
            f"campaign: {totals['cells']} cells "
            f"({totals['ok']} ok, {totals['inapplicable']} inapplicable, "
            f"{totals['skipped']} skipped{degraded}), "
            f"{totals['traces']} traces, "
            f"{totals['steps_replayed']} steps replayed, "
            f"{totals['discrepancies']} discrepancies and "
            f"{totals['impl_bugs']} impl-bug reports "
            f"({totals['distinct_findings']} distinct findings, "
            f"{totals['bottomup_findings']} bottom-up, "
            f"{totals['min_traces']} minimized, "
            f"{totals['aliased_findings']} aliased)"
        )

    def to_json(self) -> Dict[str, Any]:
        return {
            "schema": SCHEMA,
            "campaign": self.meta,
            "totals": self.totals,
            "cells": self.cells,
            "findings": self.findings,
            "degraded": self.degraded,
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "CampaignReport":
        if data.get("schema") not in COMPAT_SCHEMAS:
            raise ValueError(
                f"unsupported campaign schema {data.get('schema')!r} "
                f"(expected one of {list(COMPAT_SCHEMAS)})"
            )
        return cls(
            meta=dict(data["campaign"]),
            cells=list(data["cells"]),
            findings=list(data["findings"]),
            # Pre-/4 reports had no way to degrade (or to say so).
            degraded=dict(data.get("degraded") or clean_degraded()),
        )


def merge_cells(
    meta: Dict[str, Any],
    jobs: Sequence[CampaignJob],
    results: Sequence[Optional[Dict[str, Any]]],
) -> CampaignReport:
    """Deterministic merge: cells in matrix order, findings deduplicated
    by fingerprint in first-seen order (counts aggregated)."""
    cells: List[Dict[str, Any]] = []
    merged: Dict[str, Dict[str, Any]] = {}
    for job, result in zip(jobs, results):
        result = result if result is not None else _skipped_cell(job)
        cell = {key: val for key, val in result.items() if key != "findings"}
        cells.append(cell)
        for finding in result.get("findings", ()):
            entry = merged.get(finding["fingerprint"])
            if entry is None:
                entry = dict(finding, count=0, cells=[])
                merged[finding["fingerprint"]] = entry
            entry["count"] += 1
            if job.cell_id not in entry["cells"]:
                entry["cells"].append(job.cell_id)
    return CampaignReport(
        meta=meta, cells=cells, findings=list(merged.values())
    )


def dedup_min_traces(
    findings: List[Dict[str, Any]],
) -> List[Dict[str, Any]]:
    """Group findings whose ``min_trace``s shrank to the *same* label
    sequence (per direction and grain) into one finding each.

    Distinct fingerprints frequently minimize to one underlying repro --
    e.g. the same forbidden implementation step reached from different
    cells -- and reporting them separately double-counts the behaviour in
    nightly trend lines.  The first-seen finding becomes the group
    representative; the rest fold into its ``aliases`` list (fingerprint,
    kind, detail, count, cells), which
    :meth:`CampaignReport.fingerprints` still surfaces so baseline gates
    keep recognizing aliased fingerprints.  Deterministic: groups form in
    finding order, so worker count never changes the result.
    """
    groups: Dict[Tuple, Dict[str, Any]] = {}
    out: List[Dict[str, Any]] = []
    for finding in findings:
        min_trace = finding.get("min_trace") or {}
        if min_trace.get("status") != "ok":
            out.append(finding)
            continue
        key = (
            finding.get("direction", "topdown"),
            finding.get("grain", ""),
            json.dumps(min_trace["labels"], sort_keys=True),
        )
        head = groups.get(key)
        if head is None:
            groups[key] = finding
            out.append(finding)
        else:
            head.setdefault("aliases", []).append(
                {
                    "fingerprint": finding["fingerprint"],
                    "kind": finding["kind"],
                    "detail": finding.get("detail", ""),
                    "count": finding.get("count", 1),
                    "cells": finding.get("cells", []),
                }
            )
    return out


# ------------------------------------------------------------ the runner


def allocate_round(
    round_size: int, novel: Sequence[int], sampled: Sequence[int]
) -> List[int]:
    """Deterministic adaptive allocation of one round's jobs to base
    (grain, scenario, fault) cells.

    A third of the slots *exploit*: they go to cells proportionally to
    their novel-fingerprint yield so far (largest-remainder rounding,
    ties broken by matrix index).  The rest *explore*: least-sampled
    cells first, ties again by index.  Before any yield exists the whole
    round explores, which reproduces the uniform enumeration order.
    (A half/half split measurably loses fingerprints that uniform seeds
    of cold cells would have found; one third keeps coverage while still
    concentrating seeds where discrepancy density is highest.)
    """
    n = len(novel)
    counts = [0] * n
    total = sum(novel)
    exploit = round_size // 3 if total else 0
    if exploit:
        quotas = [exploit * weight / total for weight in novel]
        counts = [int(quota) for quota in quotas]
        leftover = exploit - sum(counts)
        order = sorted(range(n), key=lambda i: (counts[i] - quotas[i], i))
        for i in order[:leftover]:
            counts[i] += 1
    for _ in range(round_size - sum(counts)):
        i = min(range(n), key=lambda j: (sampled[j] + counts[j], j))
        counts[i] += 1
    return [i for i in range(n) for _ in range(counts[i])]


class ConformanceCampaign:
    """Enumerate the matrix, fan it across an execution backend, merge
    the report.

    Takes one :class:`~repro.remix.request.CampaignRequest` -- already
    normalized and validated -- as its single argument; the legacy
    keyword form survives as the :meth:`from_kwargs` deprecation shim.
    ``adaptive=True`` on the request schedules the same total job
    budget in rounds that chase novel-fingerprint yield instead of
    enumerating uniformly; ``shrink=True`` appends the post-merge
    minimization stage (see the module docstring).
    """

    def __init__(self, request: CampaignRequest):
        if not isinstance(request, CampaignRequest):
            raise TypeError(
                "ConformanceCampaign takes a CampaignRequest; the old "
                "keyword form lives on as "
                "ConformanceCampaign.from_kwargs(...)"
            )
        self.request = request
        self.system = request.system
        self.plugin = system_plugin(request.system)
        self.grains = tuple(request.grains)
        self.scenarios = tuple(request.scenarios)
        self.faults = tuple(request.faults)
        self.directions = tuple(request.directions)
        self.seeds = request.seeds
        self.traces = request.traces
        self.max_steps = request.max_steps
        self.seed = request.seed
        self.workers = request.workers
        self.backend = request.backend
        self.budget = request.budget
        self.config = request.config_object()
        self.adaptive = request.adaptive
        self.shrink = request.shrink
        self.shrink_rounds = request.shrink_rounds

    @classmethod
    def from_kwargs(
        cls,
        grains: Optional[Sequence[str]] = None,
        scenarios: Optional[Sequence[str]] = None,
        faults: Optional[Sequence[str]] = None,
        seeds: int = 1,
        traces: int = 2,
        max_steps: int = 12,
        seed: int = 0,
        workers: int = 1,
        budget: Optional[float] = None,
        config: Optional[ZkConfig] = None,
        adaptive: bool = False,
        shrink: bool = False,
        shrink_rounds: int = 10,
        directions: Sequence[str] = DEFAULT_DIRECTIONS,
        system: str = "zookeeper",
        backend: str = "fork",
    ) -> "ConformanceCampaign":
        """Deprecation shim for the historical 17-kwarg constructor.

        Builds the equivalent :class:`CampaignRequest` (identical
        normalization, validation, and report), so callers migrate by
        constructing the request themselves."""
        warnings.warn(
            "ConformanceCampaign.from_kwargs() is deprecated; build a "
            "CampaignRequest and call ConformanceCampaign(request) or "
            "run_campaign(request)",
            DeprecationWarning,
            stacklevel=2,
        )
        return cls(
            CampaignRequest(
                system=system,
                directions=directions,
                grains=grains,
                scenarios=scenarios,
                faults=faults,
                seeds=seeds,
                traces=traces,
                max_steps=max_steps,
                seed=seed,
                workers=workers,
                backend=backend,
                budget=budget,
                adaptive=adaptive,
                shrink=shrink,
                shrink_rounds=shrink_rounds,
                config=config,
            )
        )

    def jobs(self) -> List[CampaignJob]:
        """The full matrix, in deterministic enumeration order (the
        direction axis is outermost: all top-down cells, then all
        bottom-up cells)."""
        out: List[CampaignJob] = []
        for direction, grain, scenario, fault, offset in itertools.product(
            self.directions,
            self.grains,
            self.scenarios,
            self.faults,
            range(self.seeds),
        ):
            out.append(
                CampaignJob(
                    index=len(out),
                    grain=grain,
                    scenario=scenario,
                    fault=fault,
                    seed=self.seed + offset,
                    traces=self.traces,
                    max_steps=self.max_steps,
                    direction=direction,
                    system=self.system,
                )
            )
        return out

    def _cell_task(self, job: CampaignJob) -> Dict[str, Any]:
        """The self-describing task message for one matrix cell (what
        :func:`execute_campaign_task` decodes on the other side of any
        backend's transport)."""
        return {
            "kind": "cell",
            "system": self.system,
            "config": dict(self.request.config),
            "job": asdict(job),
        }

    def _shrink_task(self, finding: Dict[str, Any]) -> Dict[str, Any]:
        """The self-describing task message for one shrink job."""
        return {
            "kind": "shrink",
            "system": self.system,
            "config": dict(self.request.config),
            "finding": dict(finding),
            "shrink_rounds": self.shrink_rounds,
        }

    def _run_adaptive(
        self,
        backend: ExecutionBackend,
        deadline: Optional[float],
        on_cell: Optional[Callable[[int, Any, Any], None]],
    ) -> Tuple[List[CampaignJob], List[Optional[Dict[str, Any]]]]:
        """Round-based scheduling under the uniform matrix's job budget.

        Each round is a barrier: its results feed the per-cell novelty
        scores that :func:`allocate_round` uses for the next round, so
        the schedule depends only on (deterministic) prior results and
        worker count never changes the report.

        With both directions scheduled, novelty accounting *pools* the
        seen-fingerprint set across directions (the directions' identity
        spaces are disjoint, so pooling never masks a cell's yield) while
        each (direction, grain, scenario, fault) coordinate earns its own
        exploit share -- a direction that keeps producing novel evidence
        attracts seeds without starving the other.
        """
        base = [
            (direction, grain, scenario, fault)
            for direction in self.directions
            for grain in self.grains
            for scenario in self.scenarios
            for fault in self.faults
        ]
        cell_index = {cell: i for i, cell in enumerate(base)}
        remaining = len(base) * self.seeds
        sampled = [0] * len(base)
        novel = [0] * len(base)
        seen: set = set()
        jobs: List[CampaignJob] = []
        results: List[Optional[Dict[str, Any]]] = []
        while remaining > 0:
            if deadline is not None and time.monotonic() >= deadline:
                break  # unspent budget: adaptive cells are never named
            round_jobs: List[CampaignJob] = []
            for index in allocate_round(
                min(len(base), remaining), novel, sampled
            ):
                direction, grain, scenario, fault = base[index]
                round_jobs.append(
                    CampaignJob(
                        index=len(jobs) + len(round_jobs),
                        grain=grain,
                        scenario=scenario,
                        fault=fault,
                        seed=self.seed + sampled[index],
                        traces=self.traces,
                        max_steps=self.max_steps,
                        direction=direction,
                        system=self.system,
                    )
                )
                sampled[index] += 1
            round_results = backend.map(
                [self._cell_task(job) for job in round_jobs],
                deadline=deadline,
                on_result=on_cell,
            )
            for job, result in zip(round_jobs, round_results):
                index = cell_index[
                    (job.direction, job.grain, job.scenario, job.fault)
                ]
                for finding in (result or {}).get("findings", ()):
                    if finding["fingerprint"] not in seen:
                        seen.add(finding["fingerprint"])
                        novel[index] += 1
            jobs.extend(round_jobs)
            results.extend(round_results)
            remaining -= len(round_jobs)
        return jobs, results

    def _attach_min_traces(
        self,
        report: CampaignReport,
        backend: ExecutionBackend,
        progress: Optional[Callable[[Dict[str, Any]], None]],
    ) -> None:
        """The post-merge shrink stage: minimize each distinct finding's
        rebuilt witness across the backend and attach the ``min_trace``.

        Runs outside the wall-clock budget window: the budget governs
        exploration; minimization cost is proportional to the (small)
        number of distinct findings.
        """
        if not report.findings:
            return
        tasks = [self._shrink_task(finding) for finding in report.findings]

        def on_shrunk(index: int, task: Any, payload: Any) -> None:
            if progress is None or payload is None:
                return
            progress(
                {
                    "event": "shrunk",
                    "fingerprint": report.findings[index]["fingerprint"],
                    "min_trace": payload,
                }
            )

        results = backend.map(tasks, deadline=None, on_result=on_shrunk)
        for finding, payload in zip(report.findings, results):
            finding["min_trace"] = (
                payload if payload is not None else {"status": "skipped"}
            )
        # Distinct fingerprints that shrank to the same label sequence
        # are one behaviour: fold them into alias groups.
        report.findings[:] = dedup_min_traces(report.findings)

    def _supervisor(
        self, progress: Optional[Callable[[Dict[str, Any]], None]]
    ) -> TaskSupervisor:
        """The campaign's task supervisor: policy from the request,
        labels from cell identity, degradations streamed as events."""

        def label(task: Any) -> str:
            if isinstance(task, dict):
                if task.get("kind") == "cell":
                    return CampaignJob(**task["job"]).cell_id
                if task.get("kind") == "shrink":
                    return "shrink:" + task["finding"]["fingerprint"]
            return "task"

        def on_event(event: Dict[str, Any]) -> None:
            if progress is None:
                return
            name = "degraded" if event.get("kind") == "quarantine" else "retry"
            progress({"event": name, **event})

        return TaskSupervisor(
            SupervisionPolicy(
                task_timeout=self.request.task_timeout,
                max_retries=self.request.task_retries,
            ),
            on_event=on_event,
            describe=label,
        )

    def run(
        self,
        progress: Optional[Callable[[Dict[str, Any]], None]] = None,
        journal: Optional[CampaignJournal] = None,
    ) -> CampaignReport:
        """Run the campaign and return the merged report.

        ``progress`` is the streaming hook: it receives plain-dict
        events in completion order -- ``cell_done`` per finished cell,
        ``finding`` on each first-seen fingerprint, ``shrunk`` per
        minimized finding, ``retry``/``degraded`` per supervised
        failure -- while the returned report stays exactly as
        deterministic as before (events never influence the merge).
        The campaign service wraps these into the
        ``repro.campaign.event/1`` wire schema.

        ``journal`` makes the run crash-safe: completed cell and shrink
        results append to it durably as they stream out of the backend,
        and results it already holds (a resumed run) are replayed
        instead of re-executed -- same index-ordered merge, so the
        resumed report is bitwise-identical to an uninterrupted one.
        Replayed cells emit ``cell_done`` with ``"replayed": true``."""
        started = time.monotonic()
        deadline = None if self.budget is None else started + self.budget
        # Pre-warm the spec cache in the parent: O(grains) compositions,
        # inherited by every forked worker.  Scripted prefixes pre-warm
        # too (O(grains x scenarios x faults), served from the on-disk
        # layer when a previous invocation scripted them), so workers
        # fork with every shared artifact already in memory.
        leader = self.config.n_servers - 1
        for grain in self.grains:
            cached_spec(grain, self.config, system=self.system)
            cached_mapping(grain, system=self.system)
            for scenario in self.scenarios:
                for fault in self.faults:
                    try:
                        cached_prefix(
                            grain,
                            self.config,
                            scenario,
                            fault,
                            leader,
                            0,
                            system=self.system,
                        )
                    except ScenarioError:
                        pass  # the cell will report itself inapplicable

        supervisor = self._supervisor(progress)
        backend = create_backend(
            self.backend,
            TASK_HANDLER,
            self.workers,
            supervisor=supervisor,
            auth_token=self.request.auth_token,
        )
        if journal is not None:
            backend = JournaledBackend(backend, journal)
        emitted: set = set()

        def on_cell(index: int, task: Dict[str, Any], result: Any) -> None:
            if progress is None:
                return
            job_info = task["job"]
            cell_id = CampaignJob(**job_info).cell_id
            cell = (
                {k: v for k, v in result.items() if k != "findings"}
                if result is not None
                else None
            )
            event = {
                "event": "cell_done",
                "index": job_info["index"],
                "cell_id": cell_id,
                "cell": cell,
            }
            if journal is not None and journal.replayable(("cell", cell_id)):
                event["replayed"] = True
            progress(event)
            for finding in (result or {}).get("findings", ()):
                if finding["fingerprint"] not in emitted:
                    emitted.add(finding["fingerprint"])
                    progress({"event": "finding", "finding": finding})

        try:
            if self.adaptive:
                jobs, results = self._run_adaptive(backend, deadline, on_cell)
            else:
                jobs = self.jobs()
                results = backend.map(
                    [self._cell_task(job) for job in jobs],
                    deadline=deadline,
                    on_result=on_cell,
                )
            meta = {
                "system": self.system,
                "directions": list(self.directions),
                "grains": list(self.grains),
                "scenarios": list(self.scenarios),
                "faults": list(self.faults),
                "seeds": self.seeds,
                "traces_per_cell": self.traces,
                "max_steps": self.max_steps,
                "seed": self.seed,
                "workers": self.workers,
                "budget_seconds": self.budget,
                "adaptive": self.adaptive,
                "shrink": self.shrink,
                "config": self.plugin.config_meta(self.config),
            }
            report = merge_cells(meta, jobs, results)
            if self.shrink:
                self._attach_min_traces(report, backend, progress)
            # The truth-telling section: quarantined cells flip from
            # "skipped" (the merge's reading of a None result) to
            # "degraded", and every degradation the supervisor saw is
            # reported.  Clean runs produce clean_degraded() exactly,
            # preserving cross-backend report identity.
            quarantined_cells: List[str] = []
            for job, cell in zip(jobs, report.cells):
                if job.cell_id in supervisor.quarantined:
                    cell["status"] = "degraded"
                    quarantined_cells.append(job.cell_id)
            report.degraded = {
                "supervision": supervisor.snapshot(),
                "quarantined_cells": quarantined_cells,
                "skipped_cells": [
                    job.cell_id
                    for job, cell in zip(jobs, report.cells)
                    if cell["status"] == "skipped"
                ],
            }
            meta["elapsed_seconds"] = round(time.monotonic() - started, 3)
            return report
        finally:
            backend.close()


def run_campaign(
    request: CampaignRequest,
    *,
    progress: Optional[Callable[[Dict[str, Any]], None]] = None,
    journal_dir: Optional[str] = None,
    resume: bool = False,
) -> CampaignReport:
    """Run one campaign request end to end: the single programmatic
    entry point behind the CLI, the campaign server, benchmarks, and
    tests.

    ``progress`` streams :meth:`ConformanceCampaign.run` events; the
    returned report depends only on the request.

    ``journal_dir`` arms crash-safety: completed results append durably
    to ``journal_dir/journal.jsonl`` as they arrive.  ``resume=True``
    replays results already journaled there for this request (matched
    by :func:`~repro.remix.journal.request_digest`, which ignores
    execution-only fields like workers and backend) instead of
    re-running them; the resumed report is bitwise-identical to an
    uninterrupted run.  Without ``resume`` the journal is truncated
    first, so a fresh run never replays stale state."""
    if resume and journal_dir is None:
        raise ValueError("resume=True requires a journal directory")
    journal = (
        CampaignJournal(journal_dir, request, resume=resume)
        if journal_dir is not None
        else None
    )
    return ConformanceCampaign(request).run(progress=progress, journal=journal)


def new_fingerprints(
    report: CampaignReport, baseline: Dict[str, Any], kind: str = "impl_bug"
) -> List[str]:
    """Fingerprints of ``kind`` present in the report but absent from a
    baseline report JSON (the nightly CI regression gate).

    Fingerprints the baseline stores inside a group representative's
    ``aliases`` count as known: alias grouping depends on which finding
    is seen first, so a later run may promote an aliased fingerprint to
    its own representative -- that is not a new behaviour.
    """
    known = set()
    for finding in baseline.get("findings", ()):
        if kind is None or finding.get("kind") == kind:
            known.add(finding["fingerprint"])
        for alias in finding.get("aliases", ()):
            if kind is None or alias.get("kind") == kind:
                known.add(alias["fingerprint"])
    return [fp for fp in report.fingerprints(kind) if fp not in known]
