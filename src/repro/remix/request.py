"""The serializable campaign request: every axis, budget, and option of
a conformance campaign in one frozen, JSON-round-trippable value.

:class:`CampaignRequest` is the single way work enters the campaign
stack -- the CLI parses flags into one, the campaign server reads one
per connection as a JSON line, benchmarks and tests construct them
directly -- and it is where *all* axis validation happens, in one place
with one error format (:class:`RequestError`).  By the time a request
exists, it is normalized (defaults resolved against the system plugin,
sequences frozen to tuples, the config expanded to its serialized
form), so ``request -> to_json() -> from_json() -> request`` is an
identity and two equal requests produce bitwise-identical reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

from repro.checker.backends import BACKENDS
from repro.remix.registry import system_plugin

#: Version tag of the request JSON; bump on breaking schema changes.
REQUEST_SCHEMA = "repro.campaign.request/1"

#: The two conformance directions a campaign can schedule.
DIRECTIONS: Tuple[str, ...] = ("topdown", "bottomup")

#: Default direction axis: top-down only, matching pre-/3 campaigns.
DEFAULT_DIRECTIONS: Tuple[str, ...] = ("topdown",)


class RequestError(ValueError):
    """A campaign request field failed validation (unknown axis value,
    bad budget, unknown system/backend)."""


def _fail(field_name: str, message: str) -> None:
    raise RequestError(f"invalid campaign request: {field_name}: {message}")


def _unknown(field_name: str, value: Any, options: Sequence[str]) -> None:
    _fail(field_name, f"unknown value {value!r}; options: {list(options)}")


def parse_budget(text: str) -> float:
    """Parse a wall-clock budget like ``"5s"``, ``"2m"`` or ``"90"``."""
    text = text.strip().lower()
    scale = 1.0
    if text.endswith("ms"):
        scale, text = 0.001, text[:-2]
    elif text.endswith("s"):
        scale, text = 1.0, text[:-1]
    elif text.endswith("m"):
        scale, text = 60.0, text[:-1]
    elif text.endswith("h"):
        scale, text = 3600.0, text[:-1]
    try:
        value = float(text) * scale
    except ValueError:
        raise ValueError(f"unparseable budget {text!r}") from None
    if value <= 0:
        raise ValueError(f"budget must be positive, got {value}")
    return value


@dataclass(frozen=True, eq=True)
class CampaignRequest:
    """One campaign, fully specified and wire-ready.

    Construction *normalizes and validates*: ``None`` axes resolve to
    the system plugin's defaults, sequences freeze to tuples, a budget
    string like ``"5s"`` parses to seconds, a config object serializes
    to its plugin ``config_meta`` dict -- and every axis value is
    checked against the plugin in one place, raising
    :class:`RequestError` with a single error format instead of the
    scattered ``KeyError`` styles the old 17-kwarg constructor grew.
    """

    system: str = "zookeeper"
    directions: Sequence[str] = DEFAULT_DIRECTIONS
    grains: Optional[Sequence[str]] = None
    scenarios: Optional[Sequence[str]] = None
    faults: Optional[Sequence[str]] = None
    seeds: int = 1
    traces: int = 2
    max_steps: int = 12
    seed: int = 0
    workers: int = 1
    backend: str = "fork"
    budget: Optional[float] = None
    adaptive: bool = False
    shrink: bool = False
    shrink_rounds: int = 10
    #: Hard per-task wall clock in seconds (``None`` = no watchdog): a
    #: cell that runs longer has its worker killed and is retried.
    task_timeout: Optional[float] = None
    #: Transient failures (worker death, timeout) one task may survive
    #: before it is quarantined as poison.
    task_retries: int = 2
    #: Shared secret for the socket backend's worker handshake.
    auth_token: Optional[str] = None
    #: Serialized configuration (the plugin's ``config_meta`` dict).
    #: Accepts a config *object* at construction; ``None`` resolves to
    #: the plugin's campaign default.
    config: Optional[Mapping[str, Any]] = field(default=None)

    def __post_init__(self):
        set_field = object.__setattr__  # frozen dataclass
        try:
            plugin = system_plugin(self.system)
        except KeyError as error:
            _fail("system", error.args[0] if error.args else str(error))

        directions = tuple(self.directions)
        for name in directions:
            if name not in DIRECTIONS:
                _unknown("directions", name, DIRECTIONS)
        set_field(self, "directions", directions)

        grains = (
            tuple(self.grains) if self.grains is not None else tuple(plugin.grains)
        )
        note = (
            " (SysSpec/mSpec-4 have no code-level action mapping)"
            if self.system == "zookeeper"
            else ""
        )
        for name in grains:
            if name not in plugin.grains:
                _fail(
                    "grains",
                    f"unknown value {name!r}; options: "
                    f"{list(plugin.grains)}{note}",
                )
        set_field(self, "grains", grains)

        scenarios = (
            tuple(self.scenarios)
            if self.scenarios is not None
            else plugin.scenario_names()
        )
        for name in scenarios:
            if name not in plugin.scenario_prefixes:
                _unknown("scenarios", name, plugin.scenario_names())
        set_field(self, "scenarios", scenarios)

        faults = (
            tuple(self.faults) if self.faults is not None else plugin.fault_names()
        )
        for name in faults:
            try:
                plugin.fault_schedule(name)
            except KeyError:
                _unknown("faults", name, plugin.fault_names())
        set_field(self, "faults", faults)

        if self.backend not in BACKENDS:
            _unknown("backend", self.backend, BACKENDS)

        budget = self.budget
        if isinstance(budget, str):
            try:
                budget = parse_budget(budget)
            except ValueError as error:
                _fail("budget", str(error))
        elif budget is not None:
            budget = float(budget)
            if budget <= 0:
                _fail("budget", f"budget must be positive, got {budget}")
        set_field(self, "budget", budget)

        task_timeout = self.task_timeout
        if task_timeout is not None:
            task_timeout = float(task_timeout)
            if task_timeout <= 0:
                _fail(
                    "task_timeout",
                    f"task_timeout must be positive, got {task_timeout}",
                )
        set_field(self, "task_timeout", task_timeout)
        set_field(self, "task_retries", max(0, int(self.task_retries)))
        if self.auth_token is not None:
            set_field(self, "auth_token", str(self.auth_token))

        set_field(self, "seeds", max(1, int(self.seeds)))
        set_field(self, "workers", max(1, int(self.workers)))
        for name in ("traces", "max_steps", "seed", "shrink_rounds"):
            set_field(self, name, int(getattr(self, name)))
        for name in ("adaptive", "shrink"):
            set_field(self, name, bool(getattr(self, name)))

        config = self.config
        if config is None:
            config = plugin.config_meta(plugin.campaign_config())
        elif not isinstance(config, Mapping):
            try:
                config = plugin.config_meta(config)
            except TypeError:
                _fail(
                    "config",
                    f"expected a {self.system} config object or its "
                    f"serialized dict, got {type(config).__name__}",
                )
        else:
            config = dict(config)
        set_field(self, "config", config)

    # -------------------------------------------------------- accessors

    def config_object(self) -> Any:
        """Rebuild the plugin's config object from the serialized form."""
        return system_plugin(self.system).config_from_meta(
            {"system": self.system, "config": self.config}
        )

    def with_options(self, **changes: Any) -> "CampaignRequest":
        """A copy with fields replaced (re-normalized and re-validated)."""
        return replace(self, **changes)

    # ----------------------------------------------------------- wire

    def to_json(self) -> Dict[str, Any]:
        """The fully-normalized wire form (every field explicit)."""
        return {
            "schema": REQUEST_SCHEMA,
            "system": self.system,
            "directions": list(self.directions),
            "grains": list(self.grains),
            "scenarios": list(self.scenarios),
            "faults": list(self.faults),
            "seeds": self.seeds,
            "traces": self.traces,
            "max_steps": self.max_steps,
            "seed": self.seed,
            "workers": self.workers,
            "backend": self.backend,
            "budget": self.budget,
            "adaptive": self.adaptive,
            "shrink": self.shrink,
            "shrink_rounds": self.shrink_rounds,
            "task_timeout": self.task_timeout,
            "task_retries": self.task_retries,
            "auth_token": self.auth_token,
            "config": dict(self.config),
        }

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "CampaignRequest":
        """Rebuild a request from :meth:`to_json` output.

        Tolerates a missing ``schema`` tag and ignores unknown keys, so
        hand-written request files only need the fields they care
        about."""
        if not isinstance(data, Mapping):
            raise RequestError(
                f"invalid campaign request: expected a JSON object, "
                f"got {type(data).__name__}"
            )
        schema = data.get("schema")
        if schema is not None and schema != REQUEST_SCHEMA:
            raise RequestError(
                f"invalid campaign request: schema: unsupported "
                f"{schema!r} (expected {REQUEST_SCHEMA!r})"
            )
        known = {f.name for f in fields(cls)}
        kwargs = {key: value for key, value in data.items() if key in known}
        return cls(**kwargs)
