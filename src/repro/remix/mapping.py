"""The model-action -> code-action mapping (§3.5.3).

Remix "requires developers to provide a mapping from each model-level
action to the events that represent the beginning and the end of the
corresponding code-level action", and instruments those points.  Here an
:class:`ActionMapping` binds each model action name to a callable on the
:class:`~repro.impl.ensemble.Ensemble` plus the number of instrumentation
pointcuts the binding needs (the "Instr." column of Table 3).

Mappings are granularity-aware: the baseline mapping drives composite
regions (e.g. the whole atomic NEWLEADER handling), the fine-grained
mapping drives individual thread steps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.impl.ensemble import Ensemble
from repro.tla.action import ActionLabel

StepFn = Callable[[Ensemble, ActionLabel], bool]


@dataclass(frozen=True)
class MappedAction:
    """One mapping entry: how to drive the implementation for a model
    action, and how many instrumentation pointcuts it needs.

    ``region`` distinguishes baseline composite regions (which may
    silently consume messages the baseline spec does not model, like the
    ACK of UPTODATE) from fine-grained single steps."""

    name: str
    step: StepFn
    pointcuts: int = 1
    region: str = "fine"


def _pair(label: ActionLabel):
    return label.args["pair"]


def _coarse_election(ens: Ensemble, label: ActionLabel) -> bool:
    return ens.run_election(label.args["i"], label.args["Q"])


def _drop_stale(ens: Ensemble, label: ActionLabel) -> bool:
    i, j = _pair(label)
    return ens.discard_stale(i, j)


def _fault(method: str):
    def step(ens: Ensemble, label: ActionLabel) -> bool:
        args = label.args
        if "pair" in args:
            i, j = args["pair"]
            result = getattr(ens, method)(i, j)
        else:
            result = getattr(ens, method)(args["i"])
        return result is not False

    return step


def _node(method: str, with_peer: bool = True):
    def step(ens: Ensemble, label: ActionLabel) -> bool:
        args = label.args
        if "pair" in args:
            i, j = args["pair"]
            return getattr(ens.nodes[i], method)(j) if with_peer else getattr(
                ens.nodes[i], method
            )()
        i = args["i"]
        return getattr(ens.nodes[i], method)()

    return step


def _leader_side(method: str):
    """Leader actions are labeled (leader, follower) pairs."""

    def step(ens: Ensemble, label: ActionLabel) -> bool:
        i, j = _pair(label)
        return getattr(ens.nodes[i], method)(j)

    return step


def _client_request(ens: Ensemble, label: ActionLabel) -> bool:
    return ens.client_request(label.args["i"])


_SHARED: Dict[str, MappedAction] = {
    "ElectionAndDiscovery": MappedAction(
        "ElectionAndDiscovery", _coarse_election, pointcuts=3
    ),
    "LeaderSyncFollower": MappedAction(
        "LeaderSyncFollower", _leader_side("leader_sync_follower"), pointcuts=2
    ),
    "LeaderProcessACKLD": MappedAction(
        "LeaderProcessACKLD", _leader_side("leader_process_ack"), pointcuts=2
    ),
    "LeaderProcessACK": MappedAction(
        "LeaderProcessACK", _leader_side("leader_process_ack"), pointcuts=1
    ),
    "LeaderProcessRequest": MappedAction(
        "LeaderProcessRequest", _client_request, pointcuts=1
    ),
    "FollowerProcessSyncMessage": MappedAction(
        "FollowerProcessSyncMessage",
        _node("follower_process_sync_message"),
        pointcuts=3,
    ),
    "FollowerProcessPROPOSALInSync": MappedAction(
        "FollowerProcessPROPOSALInSync",
        _node("follower_process_proposal_in_sync"),
        pointcuts=1,
    ),
    "FollowerProcessCOMMITInSync": MappedAction(
        "FollowerProcessCOMMITInSync",
        _node("follower_process_commit_in_sync"),
        pointcuts=2,
    ),
    "NodeCrash": MappedAction("NodeCrash", _fault("crash"), pointcuts=1),
    "NodeRestart": MappedAction("NodeRestart", _fault("restart"), pointcuts=1),
    "PartitionStart": MappedAction(
        "PartitionStart", _fault("partition"), pointcuts=1
    ),
    "PartitionHeal": MappedAction("PartitionHeal", _fault("heal"), pointcuts=1),
    "FollowerShutdown": MappedAction(
        "FollowerShutdown", _fault("follower_shutdown"), pointcuts=2
    ),
    "LeaderShutdown": MappedAction(
        "LeaderShutdown", _fault("leader_shutdown"), pointcuts=2
    ),
    "DiscardStaleMessage": MappedAction(
        "DiscardStaleMessage", _drop_stale, pointcuts=1
    ),
    "MessageDelay": MappedAction(
        "MessageDelay", _fault("delay_message"), pointcuts=1
    ),
    "MessageDuplicate": MappedAction(
        "MessageDuplicate", _fault("duplicate_message"), pointcuts=1
    ),
}

_BASELINE_BROADCAST: Dict[str, MappedAction] = {
    "FollowerProcessPROPOSAL": MappedAction(
        "FollowerProcessPROPOSAL",
        _node("follower_process_proposal_atomic"),
        pointcuts=2,
    ),
    "FollowerProcessCOMMIT": MappedAction(
        "FollowerProcessCOMMIT",
        _node("follower_process_commit_atomic"),
        pointcuts=2,
    ),
}

_FINE_BROADCAST: Dict[str, MappedAction] = {
    "FollowerProcessPROPOSAL": MappedAction(
        "FollowerProcessPROPOSAL", _node("follower_process_proposal"), pointcuts=1
    ),
    "FollowerProcessCOMMIT": MappedAction(
        "FollowerProcessCOMMIT", _node("follower_process_commit"), pointcuts=1
    ),
}

_BASELINE_SYNC: Dict[str, MappedAction] = {
    "FollowerProcessNEWLEADER": MappedAction(
        "FollowerProcessNEWLEADER",
        _node("follower_process_newleader_atomic"),
        pointcuts=2,
    ),
    "FollowerProcessUPTODATE": MappedAction(
        "FollowerProcessUPTODATE",
        _node("follower_process_uptodate_baseline"),
        pointcuts=2,
    ),
    "FollowerProcessCOMMITInSync": MappedAction(
        "FollowerProcessCOMMITInSync",
        _node("follower_process_commit_in_sync_atomic"),
        pointcuts=2,
    ),
    # The baseline spec does not model the follower's ACK of UPTODATE;
    # the mapped region consumes it silently (§2.2.3).
    "LeaderProcessACKLD": MappedAction(
        "LeaderProcessACKLD",
        _leader_side("leader_process_ack_baseline"),
        pointcuts=2,
        region="baseline",
    ),
    "LeaderProcessACK": MappedAction(
        "LeaderProcessACK",
        _leader_side("leader_process_ack_baseline"),
        pointcuts=1,
        region="baseline",
    ),
}

_FINE_SPLIT: Dict[str, MappedAction] = {
    "FollowerProcessNEWLEADER_UpdateEpoch": MappedAction(
        "FollowerProcessNEWLEADER_UpdateEpoch",
        _node("step_update_epoch"),
        pointcuts=1,
    ),
    "FollowerProcessNEWLEADER_Log": MappedAction(
        "FollowerProcessNEWLEADER_Log", _node("step_log"), pointcuts=1
    ),
    "FollowerProcessNEWLEADER_LogAsync": MappedAction(
        "FollowerProcessNEWLEADER_LogAsync", _node("step_log"), pointcuts=1
    ),
    "FollowerProcessNEWLEADER_ReplyAck": MappedAction(
        "FollowerProcessNEWLEADER_ReplyAck", _node("step_reply_ack"), pointcuts=1
    ),
}

_FINE_CONCURRENT: Dict[str, MappedAction] = {
    "FollowerSyncProcessorLogRequest": MappedAction(
        "FollowerSyncProcessorLogRequest",
        _node("sync_processor_step", with_peer=False),
        pointcuts=2,
    ),
    "FollowerCommitProcessorCommit": MappedAction(
        "FollowerCommitProcessorCommit",
        _node("commit_processor_step", with_peer=False),
        pointcuts=2,
    ),
    "FollowerProcessUPTODATE": MappedAction(
        "FollowerProcessUPTODATE",
        _node("follower_process_uptodate"),
        pointcuts=2,
    ),
    "LeaderProcessACKUPTODATE": MappedAction(
        "LeaderProcessACKUPTODATE",
        _leader_side("leader_process_ack"),
        pointcuts=1,
    ),
}


class ActionMapping:
    """The mapping table for one specification granularity selection."""

    def __init__(self, entries: Dict[str, MappedAction]):
        self.entries = dict(entries)

    def lookup(self, label: ActionLabel) -> Optional[MappedAction]:
        return self.entries.get(label.name)

    def total_pointcuts(self) -> int:
        return sum(entry.pointcuts for entry in self.entries.values())

    def __len__(self) -> int:
        return len(self.entries)


def mapping_for(selection: Dict[str, str]) -> ActionMapping:
    """Build the mapping for a Table 1 granularity selection.

    SysSpec/mSpec-4 (baseline Election) are not mappable: the paper's
    deterministic replay of fine-grained FLE requires vote-priority
    control we only provide through the composite election operation.
    """
    if selection.get("Election") != "coarsened":
        raise ValueError(
            "deterministic replay requires the coarsened "
            "ElectionAndDiscovery action (provide vote priorities for "
            "fine-grained FLE to extend this, per §3.5.3)"
        )
    entries = dict(_SHARED)
    sync = selection.get("Synchronization", "baseline")
    if sync == "baseline":
        entries.update(_BASELINE_SYNC)
    elif sync == "fine_atomic":
        entries.update(_FINE_SPLIT)
        # UPTODATE and the leader's ACK handling stay at the baseline
        # granularity in mSpec-2 (no UPTODATE-ACK modeled).
        entries["FollowerProcessUPTODATE"] = _BASELINE_SYNC[
            "FollowerProcessUPTODATE"
        ]
        entries["LeaderProcessACKLD"] = _BASELINE_SYNC["LeaderProcessACKLD"]
        entries["LeaderProcessACK"] = _BASELINE_SYNC["LeaderProcessACK"]
        entries["FollowerProcessCOMMITInSync"] = _BASELINE_SYNC[
            "FollowerProcessCOMMITInSync"
        ]
    else:
        entries.update(_FINE_SPLIT)
        entries.update(_FINE_CONCURRENT)
    if selection.get("Broadcast", "baseline") == "baseline":
        entries.update(_BASELINE_BROADCAST)
    else:
        entries.update(_FINE_BROADCAST)
    return ActionMapping(entries)
