"""The Remix registries: system plugins and multi-grained specifications.

Two registries live here:

- The **system-plugin registry** (:func:`register_system`,
  :func:`system_plugin`, :func:`registered_systems`) maps a system name
  (``--system`` on the CLI) to its
  :class:`~repro.system.plugin.SystemPlugin`.  Built-in plugins --
  ZooKeeper (the paper's subject) and Raft -- are imported lazily on
  first lookup; third-party plugins register themselves by calling
  :func:`register_system` at import time.
- The **specification registry** (:class:`SpecRegistry`, §3.5.1) wraps
  :mod:`repro.zookeeper.specs`: Remix keeps multi-grained
  specifications of each module and composes the selected granularities
  into a mixed-grained specification, automatically selecting the
  invariants applicable to the composition.
"""

from __future__ import annotations

import importlib
import threading
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.system.plugin import SystemPlugin
from repro.tla.spec import Specification
from repro.zookeeper.config import SpecVariant, ZkConfig
from repro.zookeeper.specs import MODULE_FACTORIES, SELECTIONS, build_spec

# ------------------------------------------------------ system plugins

#: Registered plugins by name.  Mutated only under ``_SYSTEMS_LOCK``.
_SYSTEM_PLUGINS: Dict[str, SystemPlugin] = {}

#: Built-in plugins, imported on demand: importing the module registers
#: the plugin (each calls :func:`register_system` at import time).
_BUILTIN_SYSTEMS: Dict[str, str] = {
    "zookeeper": "repro.zookeeper.plugin",
    "raft": "repro.raft.plugin",
}

_SYSTEMS_LOCK = threading.Lock()


def register_system(plugin: SystemPlugin) -> SystemPlugin:
    """Register a system plugin under ``plugin.name``.

    Registering the same name again replaces the previous plugin (so a
    test can substitute a doctored plugin).  Returns the plugin for use
    as a decorator-style one-liner."""
    if not plugin.name:
        raise ValueError("system plugin must set a non-empty name")
    with _SYSTEMS_LOCK:
        _SYSTEM_PLUGINS[plugin.name] = plugin
    return plugin


def _load_builtin(name: str) -> None:
    module = _BUILTIN_SYSTEMS.get(name)
    if module is not None and name not in _SYSTEM_PLUGINS:
        importlib.import_module(module)  # import self-registers


def system_plugin(name: str) -> SystemPlugin:
    """Resolve a system plugin by name.

    Raises ``KeyError`` listing the registered plugin names when the
    system is unknown (what the CLI surfaces for ``--system typo``)."""
    _load_builtin(name)
    try:
        return _SYSTEM_PLUGINS[name]
    except KeyError:
        raise KeyError(
            f"unknown system {name!r}; registered plugins: "
            f"{registered_systems()}"
        ) from None


def registered_systems() -> List[str]:
    """Names of every registered plugin (built-ins included), sorted."""
    for name in _BUILTIN_SYSTEMS:
        _load_builtin(name)
    return sorted(_SYSTEM_PLUGINS)


# ------------------------------------------------- spec registry (§3.5.1)


@dataclass
class RegisteredSpec:
    """One (module, granularity) entry of the registry."""

    module: str
    granularity: str
    factory: Callable


class SpecRegistry:
    """Multi-grained specification registry.

    New granularities can be registered at runtime (the paper: "if there
    is no specification at the desired granularity, one can write a new
    specification.  The new specification will then be added into
    Remix").
    """

    def __init__(self):
        """Seed the registry with the shipped per-module factories."""
        self._entries: Dict[str, Dict[str, Callable]] = {
            module: dict(granularities)
            for module, granularities in MODULE_FACTORIES.items()
        }
        # The coarse Election+Discovery is a single merged module.
        self._entries.setdefault("Election", {})["coarsened"] = None
        self._entries.setdefault("Discovery", {})["coarsened"] = None

    def modules(self) -> List[str]:
        """The registered module names."""
        return list(self._entries)

    def granularities(self, module: str) -> List[str]:
        """The granularities registered for one module."""
        return list(self._entries[module])

    def register(self, module: str, granularity: str, factory: Callable):
        """Add a new per-module specification."""
        self._entries.setdefault(module, {})[granularity] = factory

    def has(self, module: str, granularity: str) -> bool:
        """True when a spec exists for ``(module, granularity)``."""
        return granularity in self._entries.get(module, {})

    def compose(
        self,
        name: str,
        selection: Dict[str, str],
        config: Optional[ZkConfig] = None,
        variant: Optional[SpecVariant] = None,
    ) -> Specification:
        """Compose a mixed-grained specification from a selection like
        ``{"Election": "coarsened", ..., "Synchronization":
        "fine_atomic", "Broadcast": "baseline"}``."""
        for module, granularity in selection.items():
            if not self.has(module, granularity):
                raise KeyError(
                    f"no {granularity!r} specification registered for "
                    f"module {module!r}"
                )
        config = config or ZkConfig()
        if variant is not None:
            config = config.with_variant(variant)
        return build_spec(name, selection, config)

    def compose_named(
        self,
        name: str,
        config: Optional[ZkConfig] = None,
        variant: Optional[SpecVariant] = None,
    ) -> Specification:
        """Compose one of the predefined Table 1 rows."""
        return self.compose(name, SELECTIONS[name], config, variant)
