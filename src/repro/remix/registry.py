"""The Remix specification registry and composer front-end (§3.5.1).

Remix keeps multi-grained specifications of each module and composes the
selected granularities into a mixed-grained specification, automatically
selecting the invariants applicable to the composition.  This module is
the user-facing entry point wrapping :mod:`repro.zookeeper.specs`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.tla.spec import Specification
from repro.zookeeper.config import SpecVariant, ZkConfig
from repro.zookeeper.specs import MODULE_FACTORIES, SELECTIONS, build_spec


@dataclass
class RegisteredSpec:
    """One (module, granularity) entry of the registry."""

    module: str
    granularity: str
    factory: Callable


class SpecRegistry:
    """Multi-grained specification registry.

    New granularities can be registered at runtime (the paper: "if there
    is no specification at the desired granularity, one can write a new
    specification.  The new specification will then be added into
    Remix").
    """

    def __init__(self):
        self._entries: Dict[str, Dict[str, Callable]] = {
            module: dict(granularities)
            for module, granularities in MODULE_FACTORIES.items()
        }
        # The coarse Election+Discovery is a single merged module.
        self._entries.setdefault("Election", {})["coarsened"] = None
        self._entries.setdefault("Discovery", {})["coarsened"] = None

    def modules(self) -> List[str]:
        return list(self._entries)

    def granularities(self, module: str) -> List[str]:
        return list(self._entries[module])

    def register(self, module: str, granularity: str, factory: Callable):
        """Add a new per-module specification."""
        self._entries.setdefault(module, {})[granularity] = factory

    def has(self, module: str, granularity: str) -> bool:
        return granularity in self._entries.get(module, {})

    def compose(
        self,
        name: str,
        selection: Dict[str, str],
        config: Optional[ZkConfig] = None,
        variant: Optional[SpecVariant] = None,
    ) -> Specification:
        """Compose a mixed-grained specification from a selection like
        ``{"Election": "coarsened", ..., "Synchronization":
        "fine_atomic", "Broadcast": "baseline"}``."""
        for module, granularity in selection.items():
            if not self.has(module, granularity):
                raise KeyError(
                    f"no {granularity!r} specification registered for "
                    f"module {module!r}"
                )
        config = config or ZkConfig()
        if variant is not None:
            config = config.with_variant(variant)
        return build_spec(name, selection, config)

    def compose_named(
        self,
        name: str,
        config: Optional[ZkConfig] = None,
        variant: Optional[SpecVariant] = None,
    ) -> Specification:
        """Compose one of the predefined Table 1 rows."""
        return self.compose(name, SELECTIONS[name], config, variant)
