"""The conformance checker (§3.4, §3.5.2).

Random model-level exploration within a time budget, deterministic replay
of each trace at the code level through the coordinator, and per-step
state comparison.  Two kinds of findings:

- *discrepancies*: the specification does not match the implementation
  (different variable values, or a model action whose code counterpart
  never takes place) -- these mean the specification must be revised;
- *implementation bugs*: the replay hits an exception or assertion in the
  implementation (e.g. ZK-4394's NullPointerException), which Remix
  reports with the trace that reproduces it.

``confirm_violation`` is the §3.5.2 bug-confirmation path: a model-level
trace that violates a safety property is replayed deterministically to
check that the violation also happens in the implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.checker.random_walk import RandomWalker
from repro.checker.trace import Trace
from repro.impl.exceptions import ImplError
from repro.remix.coordinator import COMPARED_VARIABLES, Coordinator, Discrepancy
from repro.remix.mapping import ActionMapping, mapping_for
from repro.tla.spec import Specification


@dataclass
class ImplBugReport:
    """An implementation bug surfaced during replay (with its trace)."""

    error: ImplError
    step: int
    trace: Trace

    @property
    def bug_id(self) -> str:
        return self.error.bug_id

    def __str__(self) -> str:
        tag = f" [{self.bug_id}]" if self.bug_id else ""
        return (
            f"implementation bug{tag} at step {self.step}: "
            f"{type(self.error).__name__}: {self.error}"
        )


@dataclass
class ConformanceReport:
    """The outcome of one conformance-checking run."""

    traces_explored: int = 0
    steps_replayed: int = 0
    discrepancies: List[Discrepancy] = field(default_factory=list)
    impl_bugs: List[ImplBugReport] = field(default_factory=list)

    @property
    def conforms(self) -> bool:
        """No spec/impl discrepancy was detected.  (Implementation bugs
        are not discrepancies: model and code agree on the error path.)"""
        return not self.discrepancies

    def summary(self) -> str:
        return (
            f"conformance: {self.traces_explored} traces, "
            f"{self.steps_replayed} steps replayed, "
            f"{len(self.discrepancies)} discrepancies, "
            f"{len(self.impl_bugs)} implementation bug reports"
        )


class ConformanceChecker:
    """Random model exploration + deterministic code-level replay."""

    def __init__(
        self,
        spec: Specification,
        selection,
        ensemble_factory: Callable,
        seed: int = 0,
        mapping: Optional[ActionMapping] = None,
        compared_variables=None,
    ):
        """``selection`` is a ZooKeeper grain selection for
        :func:`mapping_for`; pass ``selection=None`` with an explicit
        ``mapping`` (and a plugin's ``compared_variables``) to check any
        other system."""
        self.spec = spec
        self.mapping = mapping or mapping_for(selection)
        if compared_variables is None:
            compared_variables = COMPARED_VARIABLES
        self.coordinator = Coordinator(
            self.mapping, ensemble_factory, compared_variables
        )
        self.walker = RandomWalker(spec, seed=seed)

    def run(
        self,
        traces: int = 20,
        max_steps: int = 25,
        time_budget: Optional[float] = None,
        stop_when=None,
    ) -> ConformanceReport:
        report = ConformanceReport()
        for trace in self.walker.traces(
            count=traces,
            max_steps=max_steps,
            time_budget=time_budget,
            stop_when=stop_when,
        ):
            report.traces_explored += 1
            result = self.coordinator.replay(trace)
            report.steps_replayed += result.steps_executed
            report.discrepancies.extend(result.discrepancies)
            if result.impl_error is not None:
                report.impl_bugs.append(
                    ImplBugReport(
                        result.impl_error, result.impl_error_step or 0, trace
                    )
                )
        return report

    def confirm_violation(self, trace: Trace) -> Optional[ImplBugReport]:
        """Replay a safety-violating model trace at the code level and
        report the implementation symptom, if any (§3.5.2)."""
        result = self.coordinator.replay(trace, stop_on_discrepancy=False)
        if result.impl_error is not None:
            return ImplBugReport(
                result.impl_error, result.impl_error_step or 0, trace
            )
        return None
