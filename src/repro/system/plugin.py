"""The system-plugin surface: everything a protocol must provide to run
through the conformance campaign.

The ``tla``, ``checker`` and ``remix`` layers are system-agnostic; a
*system plugin* supplies the protocol-specific pieces -- spec grains,
scenario prefixes, fault schedules, an implementation adapter and a
configuration type -- behind one object.  The remix layer resolves
plugins by name through :func:`repro.remix.registry.system_plugin`;
``zookeeper`` is simply the default registered plugin.

This module deliberately imports only :mod:`repro.tla` and the standard
library so that system packages can depend on it without creating an
import cycle with :mod:`repro.remix` (whose ``__init__`` eagerly imports
the campaign machinery).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Tuple,
)

from repro.tla.action import ActionLabel
from repro.tla.spec import Specification
from repro.tla.state import State


class ScenarioError(RuntimeError):
    """A scripted action was not enabled."""


class Scenario:
    """A fluent builder driving a specification through named actions.

    This is the system-agnostic core: :meth:`apply` / :meth:`can` /
    :meth:`trace`.  System packages subclass it to add protocol
    composites (e.g. ZooKeeper's ``elect`` or ``sync_follower``).
    """

    def __init__(self, spec: Specification, state: Optional[State] = None):
        """Start from ``state`` (default: the specification's sole
        initial state) with empty label and state histories."""
        self.spec = spec
        self.state = state or spec.initial_states()[0]
        self.labels: List[ActionLabel] = []
        self.states: List[State] = [self.state]

    def _instance(self, name: str, args: dict):
        inst = self.spec.instance_named(name, args)
        if inst is None:
            raise ScenarioError(f"no action instance {name}{args}")
        return inst

    def apply(self, name: str, **args) -> "Scenario":
        """Apply one action; raises ScenarioError when disabled."""
        inst = self._instance(name, args)
        nxt = inst.apply(self.spec.config, self.state)
        if nxt is None:
            raise ScenarioError(f"{name}{args} is not enabled")
        self.state = nxt
        self.labels.append(inst.label)
        self.states.append(nxt)
        return self

    def can(self, name: str, **args) -> bool:
        """True when the named action instance is enabled in the current
        state."""
        inst = self._instance(name, args)
        return inst.apply(self.spec.config, self.state) is not None

    def trace(self):
        """The scripted history as a :class:`repro.checker.trace.Trace`."""
        from repro.checker.trace import Trace

        return Trace(states=list(self.states), labels=list(self.labels))


#: Role placeholders resolved against the campaign's (leader, follower)
#: choice when a fault schedule is injected.
ROLE_LEADER = "leader"
ROLE_FOLLOWER = "follower"
ROLE_PAIR = "leader-follower-pair"
#: The *directed* leader -> follower channel, resolved as the
#: ``(receiver, sender)`` pair message actions take (the convention of
#: DiscardStaleMessage-style params: first the server whose inbound
#: channel is touched, then the peer it receives from).  Unlike
#: :data:`ROLE_PAIR`, order matters: message faults target one
#: direction of a link.
ROLE_LINK = "leader-to-follower-link"
#: The ``(leader, follower)`` pair in that order, for leader-actor
#: actions (LeaderSyncFollower-style params: the acting leader first,
#: the follower it acts on second).  :data:`ROLE_PAIR` cannot express
#: this -- it sorts, and the campaign's leader is the highest sid.
ROLE_ORDERED_PAIR = "leader-follower-ordered"


@dataclass(frozen=True)
class FaultSchedule:
    """A scripted fault injection appended to a scenario prefix.

    ``steps`` is a sequence of ``(action_name, ((param, role), ...))``
    entries whose role placeholders (:data:`ROLE_LEADER`,
    :data:`ROLE_FOLLOWER`, :data:`ROLE_PAIR`) are resolved against the
    campaign's leader/follower choice at injection time.  Injection
    raises :class:`ScenarioError` when a step is not enabled, which the
    campaign records as an inapplicable cell rather than a finding.
    """

    name: str
    steps: Tuple[Tuple[str, Tuple[Tuple[str, str], ...]], ...] = ()

    def resolve(self, leader: int, follower: int):
        """Resolve the role placeholders against a concrete leader and
        follower: ``[(action_name, args_dict), ...]`` in schedule order.

        Used by :meth:`inject` (model-level scenarios) and by the
        campaign's bottom-up direction, which drives the same resolved
        fault steps through the implementation explorer."""
        resolved = []
        for action, params in self.steps:
            args: Dict[str, Any] = {}
            for key, role in params:
                if role == ROLE_LEADER:
                    args[key] = leader
                elif role == ROLE_FOLLOWER:
                    args[key] = follower
                elif role == ROLE_PAIR:
                    args[key] = tuple(sorted((leader, follower)))
                elif role == ROLE_LINK:
                    # (receiver, sender): the follower's inbound channel
                    # from the leader -- where sync/broadcast traffic
                    # (NEWLEADER, PROPOSAL, COMMIT) is in flight.
                    args[key] = (follower, leader)
                elif role == ROLE_ORDERED_PAIR:
                    args[key] = (leader, follower)
                else:  # pragma: no cover - schedule construction error
                    raise ValueError(f"unknown role {role!r}")
            resolved.append((action, args))
        return resolved

    def inject(self, scenario: Scenario, leader: int, follower: int):
        """Apply the scripted faults to a scenario, in order."""
        for action, args in self.resolve(leader, follower):
            scenario.apply(action, **args)
        return scenario


#: Type of a scenario-prefix builder: drives a freshly composed
#: specification to an interesting state before faults and random
#: suffixes are layered on top.
PrefixBuilder = Callable[[Specification, int, tuple], Scenario]


class SystemPlugin:
    """Base class for system plugins.

    Subclasses set the class attributes below and implement the four
    required hooks (:meth:`default_config`, :meth:`make_spec`,
    :meth:`make_mapping`, :meth:`ensemble_factory`).  Everything else has
    a sensible default.

    Class attributes
    ----------------
    ``name``
        Registry key; also the value of ``--system`` on the CLI.
    ``title``
        One-line human description shown by ``python -m repro systems``.
    ``grains``
        Spec grain names, coarsest first; the campaign's default grain
        axis.  Each must be accepted by :meth:`make_spec` and
        :meth:`make_mapping`.
    ``scenario_prefixes``
        Mapping of prefix name to builder ``(spec, leader, quorum) ->
        Scenario``; the campaign's default scenario axis.  Builders
        raise :class:`ScenarioError` when a prefix cannot be scripted
        for a grain (the campaign records the cell as inapplicable).
    ``fault_schedules``
        Tuple of :class:`FaultSchedule`, in matrix order; the campaign's
        default fault axis.  Must include a no-op ``"none"`` schedule.
    ``compared_variables``
        Spec variables compared against the implementation snapshot
        after every mapped step.  Each must appear in the dict returned
        by the ensemble's ``snapshot()``.
    ``spec_source_packages``
        Python packages whose source files feed the on-disk cache's
        source digest; editing any file under them invalidates this
        system's cached prefixes (and nobody else's).
    """

    name: str = ""
    title: str = ""
    grains: Tuple[str, ...] = ()
    scenario_prefixes: Mapping[str, PrefixBuilder] = {}
    fault_schedules: Tuple[FaultSchedule, ...] = ()
    compared_variables: Tuple[str, ...] = ()
    spec_source_packages: Tuple[str, ...] = ()

    # --- required hooks ------------------------------------------------------

    def default_config(self):
        """A fresh default configuration object (a frozen dataclass with
        ``n_servers`` and ``quorum_size`` attributes)."""
        raise NotImplementedError

    def make_spec(self, grain: str, config=None) -> Specification:
        """Compose the specification for one grain.

        Raises ``KeyError`` containing ``"unknown or unmappable grain"``
        for grains outside :attr:`grains`."""
        raise NotImplementedError

    def make_mapping(self, grain: str):
        """The action mapping (spec action name -> implementation step)
        used to replay traces of ``grain`` against the implementation."""
        raise NotImplementedError

    def ensemble_factory(self, config) -> Callable[[], Any]:
        """A zero-argument factory building a fresh implementation
        ensemble for ``config``.  The ensemble must be deep-copyable and
        expose ``snapshot()`` covering :attr:`compared_variables`."""
        raise NotImplementedError

    # --- optional hooks ------------------------------------------------------

    def campaign_config(self):
        """The configuration a campaign uses when none is given.

        Defaults to :meth:`default_config`; override to shrink budgets
        for tractable campaign cells."""
        return self.default_config()

    def budget_limits(self, config) -> Dict[str, int]:
        """Per-action step budgets for the bottom-up implementation
        explorer, e.g. ``{"NodeCrash": config.max_crashes}``.  Actions
        not listed are unbudgeted."""
        return {}

    def config_meta(self, config) -> Dict[str, Any]:
        """Serialize a configuration into the campaign report's ``meta``
        block (must round-trip through :meth:`config_from_meta`)."""
        return dataclasses.asdict(config)

    def config_from_meta(self, meta: Mapping[str, Any]):
        """Rebuild a configuration from a report's ``meta`` block."""
        raise NotImplementedError

    # --- derived helpers -----------------------------------------------------

    def scenario_names(self) -> Tuple[str, ...]:
        """Scenario prefix names, in declaration order."""
        return tuple(self.scenario_prefixes)

    def fault_names(self) -> Tuple[str, ...]:
        """Fault schedule names, in matrix order."""
        return tuple(s.name for s in self.fault_schedules)

    def fault_schedule(self, name: str) -> FaultSchedule:
        """Look up a fault schedule by name; raises ``KeyError`` listing
        the available options."""
        for schedule in self.fault_schedules:
            if schedule.name == name:
                return schedule
        raise KeyError(
            f"unknown fault schedule {name!r}; options: "
            f"{[s.name for s in self.fault_schedules]}"
        )

    def scenario_prefix(
        self, name: str, spec: Specification, leader: int, quorum: Iterable[int]
    ) -> Scenario:
        """Build one of the named campaign prefixes; raises
        :class:`ScenarioError` when the prefix cannot be scripted for
        this specification (e.g. an action the grain does not expose)."""
        try:
            builder = self.scenario_prefixes[name]
        except KeyError:
            raise ScenarioError(
                f"unknown scenario prefix {name!r}; options: "
                f"{list(self.scenario_prefixes)}"
            ) from None
        return builder(spec, leader, tuple(sorted(quorum)))
