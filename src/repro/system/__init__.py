"""The protocol-agnostic system-plugin surface.

A system plugin packages everything the conformance campaign needs to
check one protocol: spec grains, scenario prefixes, fault schedules, an
implementation adapter and a configuration type.  See
``docs/plugin-authoring.md`` for the full authoring walkthrough.
"""

from repro.system.plugin import (
    FaultSchedule,
    ROLE_FOLLOWER,
    ROLE_LEADER,
    ROLE_PAIR,
    Scenario,
    ScenarioError,
    SystemPlugin,
)

__all__ = [
    "FaultSchedule",
    "ROLE_FOLLOWER",
    "ROLE_LEADER",
    "ROLE_PAIR",
    "Scenario",
    "ScenarioError",
    "SystemPlugin",
]
