"""A ZooKeeper server process, imperatively implemented.

This mirrors the structure of the Java implementation the paper verifies:
a QuorumPeer that follows the Zab phases, a Learner performing
DIFF/TRUNC/SNAP synchronization, a leader with per-learner handlers, and
the SyncRequestProcessor / CommitProcessor worker threads with their
queues.  The six paper bugs are present exactly when the corresponding
:class:`repro.zookeeper.config.SpecVariant` knob is off.

Each public ``step_*``/``handle_*`` method corresponds to one model-level
action of the fine-grained specification; the Remix coordinator maps
action labels onto these methods for deterministic replay (§3.5.3).
Methods return True when the step executed and False when it is not
enabled -- the coordinator uses that to detect "an action whose code-level
counterpart never takes place" (§3.5.2).
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.impl.exceptions import (
    CommitOrderError,
    NullPointerException,
    SyncAssertionError,
    UnrecognizedAckError,
)
from repro.impl.network import Network
from repro.tla.values import Rec, Txn, Zxid, ZXID_ZERO
from repro.zookeeper import constants as C
from repro.zookeeper.config import SpecVariant


class QueueEntry:
    """queuedRequests entry: request plus the connection session that
    enqueued it (the ACK path dies with the session)."""

    __slots__ = ("txn", "epoch")

    def __init__(self, txn: Txn, epoch: int):
        self.txn = txn
        self.epoch = epoch


class ZkNode:
    """One server of the ensemble."""

    def __init__(
        self,
        sid: int,
        n_servers: int,
        network: Network,
        variant: SpecVariant,
        divergence: str = "",
    ):
        self.sid = sid
        self.n = n_servers
        self.network = network
        self.variant = variant
        # ``divergence`` injects a deliberate model-code discrepancy used
        # to exercise the conformance checker (see tests): one of
        # "", "skip_epoch_update", "eager_broadcast", "wrong_ack_zxid".
        self.divergence = divergence

        # durable state (survives crash)
        self.history: List[Txn] = []
        self.accepted_epoch = 0
        self.current_epoch = 0
        self.last_committed = 0

        # volatile state
        self.state = C.LOOKING
        self.zab_state = C.ELECTION
        self.my_leader = -1
        self.packets_not_committed: List[Txn] = []
        self.packets_committed: List[Zxid] = []
        self.sync_mode = ""
        self.newleader_recv = False
        self.queued_requests: List[QueueEntry] = []
        self.committed_requests: List[Zxid] = []
        # leader-side
        self.ackepoch_recv: Set[Tuple[int, int, Zxid]] = set()
        self.synced_sent: Set[Tuple[int, Zxid]] = set()
        self.newleader_acks: Set[int] = set()
        self.uptodate_sent: Set[int] = set()
        self.proposal_acks: List[Tuple[Zxid, Set[int]]] = []
        self.established_initial_len: Optional[int] = None

    # --- helpers -------------------------------------------------------------

    def last_zxid(self) -> Zxid:
        return self.history[-1].zxid if self.history else ZXID_ZERO

    def is_quorum(self, members) -> bool:
        return len(set(members)) >= self.n // 2 + 1

    def _reset_volatile(self, keep_queue: bool):
        self.my_leader = -1
        self.packets_not_committed = []
        self.packets_committed = []
        self.sync_mode = ""
        self.newleader_recv = False
        self.committed_requests = []
        self.ackepoch_recv = set()
        self.synced_sent = set()
        self.newleader_acks = set()
        self.uptodate_sent = set()
        self.proposal_acks = []
        self.established_initial_len = None
        if not keep_queue:
            self.queued_requests = []

    # --- lifecycle -------------------------------------------------------------

    def crash(self):
        self._reset_volatile(keep_queue=False)
        self.state = C.DOWN
        self.zab_state = C.ELECTION

    def restart(self) -> bool:
        if self.state != C.DOWN:
            return False
        self.state = C.LOOKING
        self.zab_state = C.ELECTION
        return True

    def shutdown_to_election(self):
        """Follower/leader shutdown back to LOOKING.  Without the ZK-4712
        fix the SyncRequestProcessor queue survives."""
        keep_queue = not self.variant.fix_follower_shutdown
        self._reset_volatile(keep_queue=keep_queue)
        self.state = C.LOOKING
        self.zab_state = C.ELECTION

    # --- coarse election + discovery (mapped from ElectionAndDiscovery) -------

    def become_leader(self, quorum, new_epoch: int):
        self.state = C.LEADING
        self.zab_state = C.SYNCHRONIZATION
        self.my_leader = self.sid
        self.accepted_epoch = new_epoch
        self.current_epoch = new_epoch
        self.synced_sent = set()
        self.newleader_acks = set()
        self.uptodate_sent = set()
        self.proposal_acks = []
        self.established_initial_len = None

    def become_follower(self, leader: int, new_epoch: int):
        self.state = C.FOLLOWING
        self.zab_state = C.SYNCHRONIZATION
        self.my_leader = leader
        self.accepted_epoch = new_epoch
        self.packets_not_committed = []
        self.packets_committed = []
        self.sync_mode = ""
        self.newleader_recv = False

    # --- leader: synchronization ------------------------------------------------

    def leader_sync_follower(self, j: int) -> bool:
        if self.state != C.LEADING:
            return False
        entry = next((e for e in self.ackepoch_recv if e[0] == j), None)
        if entry is None or any(f == j for f, _ in self.synced_sent):
            return False
        if not self.network.connected(self.sid, j):
            return False  # the learner's connection is gone
        zx = entry[2]
        history = tuple(self.history)
        zxids = tuple(t.zxid for t in history)
        if zx == self.last_zxid():
            mode, payload = C.DIFF, ()
        elif zx in zxids:
            mode, payload = C.DIFF, history[zxids.index(zx) + 1 :]
        elif zx == ZXID_ZERO:
            mode, payload = (C.SNAP, history) if history else (C.DIFF, ())
        elif zx > self.last_zxid():
            mode, payload = C.TRUNC, ()
        else:
            mode, payload = C.SNAP, history
        if mode == C.SNAP:
            committed = zxids[: self.last_committed]
        elif mode == C.DIFF and payload:
            start = len(history) - len(payload)
            committed = zxids[start : self.last_committed]
        else:
            committed = ()
        nl_zxid = self.last_zxid()
        self.network.send(
            self.sid,
            j,
            Rec(mtype=mode, txns=payload, trunc_to=nl_zxid, committed=tuple(committed)),
            Rec(mtype=C.NEWLEADER, epoch=self.accepted_epoch, zxid=nl_zxid),
        )
        self.synced_sent.add((j, nl_zxid))
        return True

    def _newleader_zxid_for(self, j: int) -> Optional[Zxid]:
        for follower, zxid in self.synced_sent:
            if follower == j:
                return zxid
        return None

    def leader_process_ack(self, j: int) -> bool:
        """Leader.processAck: dispatches NEWLEADER ACKs, UPTODATE ACKs and
        txn ACKs; raises the ZK-4685 / ZK-3023 symptoms."""
        msg = self.network.peek(j, self.sid)
        if msg is None or self.state != C.LEADING:
            return False
        if not any(e[0] == j for e in self.ackepoch_recv):
            return False
        if msg.mtype == C.ACK_UPTODATE:
            self.network.recv(j, self.sid)
            initial_len = self.established_initial_len or 0
            follower_committed = msg.zxid  # commit count echoed back
            if follower_committed < initial_len:
                raise SyncAssertionError(
                    f"follower {j} acked UPTODATE with commit count "
                    f"{follower_committed} < initial history {initial_len}"
                )
            return True
        if msg.mtype != C.ACK:
            return False
        expected_nl = self._newleader_zxid_for(j)
        if expected_nl is not None and msg.zxid == expected_nl and (
            j not in self.newleader_acks
        ):
            return self._process_ackld(j, msg)
        self.network.recv(j, self.sid)
        if j not in self.newleader_acks:
            raise UnrecognizedAckError(
                f"leader {self.sid} got ACK {msg.zxid} from {j} while "
                f"waiting for its NEWLEADER ACK"
            )
        return self._process_txn_ack(j, msg)

    def _process_ackld(self, j: int, msg: Rec) -> bool:
        self.network.recv(j, self.sid)
        self.newleader_acks.add(j)
        if self.zab_state == C.SYNCHRONIZATION:
            if self.is_quorum(self.newleader_acks | {self.sid}):
                self._establish()
        else:
            self.network.send(
                self.sid,
                j,
                Rec(mtype=C.UPTODATE, commit_count=self.last_committed),
            )
            self.uptodate_sent.add(j)
        return True

    def _establish(self):
        self.zab_state = C.BROADCAST
        newly = self.history[self.last_committed :]
        self.last_committed = len(self.history)
        self.established_initial_len = len(self.history)
        commits = [Rec(mtype=C.COMMIT, zxid=t.zxid) for t in newly]
        for follower, _ in self.synced_sent:
            if commits:
                self.network.send(self.sid, follower, *commits)
        uptodate = Rec(mtype=C.UPTODATE, commit_count=len(self.history))
        for follower in self.newleader_acks:
            self.network.send(self.sid, follower, uptodate)
            self.uptodate_sent.add(follower)

    def _process_txn_ack(self, j: int, msg: Rec) -> bool:
        zxids = [t.zxid for t in self.history]
        idx = zxids.index(msg.zxid) if msg.zxid in zxids else -1
        if 0 <= idx < self.last_committed:
            return True  # duplicate ACK of a committed txn
        entry = next(
            (k for k, (z, _) in enumerate(self.proposal_acks) if z == msg.zxid),
            None,
        )
        if entry is None:
            raise UnrecognizedAckError(
                f"leader {self.sid}: ACK for unknown proposal {msg.zxid}"
            )
        zxid, ackers = self.proposal_acks[entry]
        ackers.add(j)
        if self.is_quorum(ackers) and idx == self.last_committed:
            del self.proposal_acks[entry]
            self.last_committed += 1
            commit = Rec(mtype=C.COMMIT, zxid=zxid)
            for follower, _ in self.synced_sent:
                self.network.send(self.sid, follower, commit)
        return True

    # --- leader: broadcast ---------------------------------------------------------

    def leader_propose(self, value: int) -> bool:
        if self.state != C.LEADING or self.zab_state != C.BROADCAST:
            return False
        counters = [
            t.zxid.counter
            for t in self.history
            if t.zxid.epoch == self.current_epoch
        ]
        zxid = Zxid(self.current_epoch, max(counters) + 1 if counters else 1)
        txn = Txn(zxid, value)
        self.history.append(txn)
        self.proposal_acks.append((zxid, {self.sid}))
        for follower, _ in self.synced_sent:
            self.network.send(self.sid, follower, Rec(mtype=C.PROPOSAL, txn=txn))
        return True

    # --- follower: synchronization ---------------------------------------------------

    def follower_process_sync_message(self, j: int) -> bool:
        msg = self.network.peek(j, self.sid)
        if msg is None or msg.mtype not in C.SYNC_MODES:
            return False
        if self.my_leader != j or self.zab_state != C.SYNCHRONIZATION:
            return False
        self.network.recv(j, self.sid)
        self.sync_mode = msg.mtype
        if msg.mtype == C.DIFF:
            self.packets_not_committed = list(msg.txns)
            self.packets_committed = list(msg.committed)
        elif msg.mtype == C.TRUNC:
            if msg.trunc_to == ZXID_ZERO:
                self.history = []
            else:
                zxids = [t.zxid for t in self.history]
                if msg.trunc_to in zxids:
                    self.history = self.history[: zxids.index(msg.trunc_to) + 1]
            self.last_committed = min(self.last_committed, len(self.history))
        else:  # SNAP
            self.history = []
            self.last_committed = 0
            self.packets_not_committed = list(msg.txns)
            self.packets_committed = list(msg.committed)
        return True

    def _pending_newleader(self, j: int) -> Optional[Rec]:
        msg = self.network.peek(j, self.sid)
        if msg is not None and msg.mtype == C.NEWLEADER:
            return msg
        return None

    def _epoch_first(self) -> bool:
        order = self.variant.history_before_epoch
        if order == "none":
            return True
        if order == "diff_only":
            return self.sync_mode == C.SNAP
        return False

    def _log_done(self) -> bool:
        if self.packets_not_committed:
            return False
        if not self.variant.synchronous_sync_logging:
            return not self.queued_requests
        return True

    def step_update_epoch(self, j: int) -> bool:
        """FollowerProcessNEWLEADER_UpdateEpoch."""
        msg = self._pending_newleader(j)
        if msg is None or self.my_leader != j:
            return False
        if self.current_epoch == self.accepted_epoch:
            return False
        if not self._epoch_first() and not self._log_done():
            return False
        if self.divergence != "skip_epoch_update":
            self.current_epoch = self.accepted_epoch
        else:
            # injected discrepancy: the epoch write is lost
            pass
        return True

    def step_log(self, j: int) -> bool:
        """FollowerProcessNEWLEADER_Log / _LogAsync."""
        msg = self._pending_newleader(j)
        if msg is None or self.my_leader != j or not self.packets_not_committed:
            return False
        if self._epoch_first() and self.current_epoch != self.accepted_epoch:
            return False
        if self.variant.synchronous_sync_logging:
            self.history.extend(self.packets_not_committed)
        else:
            self.queued_requests.extend(
                QueueEntry(txn, self.accepted_epoch)
                for txn in self.packets_not_committed
            )
        self.packets_not_committed = []
        return True

    def step_reply_ack(self, j: int) -> bool:
        """FollowerProcessNEWLEADER_ReplyAck."""
        msg = self._pending_newleader(j)
        if msg is None or self.my_leader != j:
            return False
        if self.current_epoch != self.accepted_epoch:
            return False
        if self.packets_not_committed:
            return False
        if self.variant.synchronous_sync_logging and self.queued_requests:
            return False
        self.network.recv(j, self.sid)
        self.newleader_recv = True
        ack_zxid = msg.zxid
        if self.divergence == "wrong_ack_zxid":
            ack_zxid = ZXID_ZERO  # injected discrepancy
        self.network.send(self.sid, j, Rec(mtype=C.ACK, zxid=ack_zxid))
        if self.divergence == "eager_broadcast":
            self.zab_state = C.BROADCAST  # injected discrepancy
        return True

    def _drain_queue_silently(self):
        """Log every queued request without acknowledging: inside the
        baseline-granularity atomic NEWLEADER region the per-txn ACKs are
        not modeled (only the single ACK of NEWLEADER is)."""
        while self.queued_requests:
            entry = self.queued_requests.pop(0)
            self.history.append(entry.txn)

    def follower_process_newleader_atomic(self, j: int) -> bool:
        """The baseline-granularity mapping: the three steps in one go."""
        if self._pending_newleader(j) is None:
            return False
        if self._epoch_first():
            if not self.step_update_epoch(j):
                return False
            while self.packets_not_committed:
                self.step_log(j)
            self._drain_queue_silently()
        else:
            while self.packets_not_committed:
                self.step_log(j)
            self._drain_queue_silently()
            self.step_update_epoch(j)
        return self.step_reply_ack(j)

    def follower_process_proposal_in_sync(self, j: int) -> bool:
        """A PROPOSAL during synchronization is buffered in
        packetsNotCommitted (Learner.syncWithLeader)."""
        msg = self.network.peek(j, self.sid)
        if msg is None or msg.mtype != C.PROPOSAL:
            return False
        if self.my_leader != j or self.zab_state != C.SYNCHRONIZATION:
            return False
        self.network.recv(j, self.sid)
        self.packets_not_committed.append(msg.txn)
        return True

    def follower_process_uptodate_baseline(self, j: int) -> bool:
        """The baseline-granularity mapping for UPTODATE: handle the
        message, drain the logging and commit queues before returning
        (the atomic commit of the baseline specification)."""
        if not self.follower_process_uptodate(j):
            return False
        while self.queued_requests:
            if not self.sync_processor_step():
                break
        while self.committed_requests:
            if not self.commit_processor_step():
                break
        return True

    def leader_process_ack_baseline(self, j: int) -> bool:
        """The baseline-granularity mapping for the leader's ACK
        processing: the baseline specification does not model the
        follower's ACK of UPTODATE (§2.2.3), so the region silently
        consumes those before handling the visible ACK."""
        while True:
            msg = self.network.peek(j, self.sid)
            if msg is not None and msg.mtype == C.ACK_UPTODATE:
                self.network.recv(j, self.sid)
                continue
            break
        return self.leader_process_ack(j)

    def follower_process_commit_in_sync(self, j: int) -> bool:
        msg = self.network.peek(j, self.sid)
        if msg is None or msg.mtype != C.COMMIT:
            return False
        if self.my_leader != j or self.zab_state != C.SYNCHRONIZATION:
            return False
        self.network.recv(j, self.sid)
        if not self.newleader_recv:
            self.packets_committed.append(msg.zxid)
            return True
        if self.packets_not_committed and self.packets_not_committed[0].zxid == msg.zxid:
            txn = self.packets_not_committed.pop(0)
            if (
                self.variant.synchronous_sync_logging
                or self.variant.direct_commit_in_sync
            ):
                # direct application: with synchronous logging this is
                # safe; with asynchronous logging it races the queue
                # (ZK-4785)
                self.history.append(txn)
                if self.last_committed == len(self.history) - 1:
                    self.last_committed += 1
            else:
                # hand the matched packet to the worker threads,
                # preserving the log order
                self.queued_requests.append(
                    QueueEntry(txn, self.accepted_epoch)
                )
                self.committed_requests.append(msg.zxid)
            return True
        if self.variant.match_commit_in_sync:
            zxids = [t.zxid for t in self.history]
            if msg.zxid in zxids:
                idx = zxids.index(msg.zxid)
                if idx == self.last_committed:
                    self.last_committed += 1
                elif idx > self.last_committed:
                    self.packets_committed.append(msg.zxid)
                return True
            raise CommitOrderError(f"commit for unknown {msg.zxid}")
        raise NullPointerException(
            f"follower {self.sid}: COMMIT {msg.zxid} matches no packet "
            f"between NEWLEADER and UPTODATE"
        )

    def follower_process_commit_in_sync_atomic(self, j: int) -> bool:
        """Baseline-granularity mapping: handle an in-sync COMMIT and
        drain the worker queues as one region."""
        if not self.follower_process_commit_in_sync(j):
            return False
        self._drain_queue_silently()
        while self.committed_requests:
            if not self.commit_processor_step():
                break
        return True

    def follower_process_uptodate(self, j: int) -> bool:
        msg = self.network.peek(j, self.sid)
        if msg is None or msg.mtype != C.UPTODATE:
            return False
        if self.my_leader != j or not self.newleader_recv:
            return False
        if self.zab_state != C.SYNCHRONIZATION:
            return False
        self.network.recv(j, self.sid)
        staged = self.packets_not_committed
        self.packets_not_committed = []
        if self.variant.synchronous_sync_logging:
            self.history.extend(e.txn for e in self.queued_requests)
            self.queued_requests = []
            self.history.extend(staged)
        else:
            self.queued_requests.extend(
                QueueEntry(txn, self.accepted_epoch) for txn in staged
            )
        self.zab_state = C.BROADCAST
        if self.variant.synchronous_commit:
            target = min(len(self.history), msg.commit_count)
            self.last_committed = max(self.last_committed, target)
        else:
            synced = [t for t in self.history] + [
                e.txn for e in self.queued_requests
            ]
            for txn in synced[self.last_committed : msg.commit_count]:
                self.committed_requests.append(txn.zxid)
        # The ACK carries this follower's own committed count (what the
        # leader's ZK-3023 assertion inspects).
        self.network.send(
            self.sid, j, Rec(mtype=C.ACK_UPTODATE, zxid=self.last_committed)
        )
        self.packets_committed = []
        self.sync_mode = ""
        return True

    # --- worker threads -----------------------------------------------------------

    def sync_processor_step(self) -> bool:
        """One SyncRequestProcessor iteration: log the head request and
        ACK it -- unless the enqueueing session is gone (ZK-4712)."""
        if self.state == C.DOWN or not self.queued_requests:
            return False
        entry = self.queued_requests.pop(0)
        self.history.append(entry.txn)
        same_session = entry.epoch == self.accepted_epoch
        if self.my_leader >= 0 and self.state == C.FOLLOWING and same_session:
            self.network.send(
                self.sid,
                self.my_leader,
                Rec(mtype=C.ACK, zxid=entry.txn.zxid),
            )
        return True

    def commit_processor_step(self) -> bool:
        """One CommitProcessor iteration."""
        if self.state == C.DOWN or not self.committed_requests:
            return False
        zxid = self.committed_requests[0]
        zxids = [t.zxid for t in self.history]
        idx = zxids.index(zxid) if zxid in zxids else -1
        if 0 <= idx < self.last_committed:
            self.committed_requests.pop(0)
            return True
        if idx == self.last_committed:
            self.committed_requests.pop(0)
            self.last_committed += 1
            return True
        if any(e.txn.zxid == zxid for e in self.queued_requests):
            return False  # wait for the logging thread
        self.committed_requests.pop(0)
        raise CommitOrderError(f"commit processor: unknown txn {zxid}")

    # --- follower: broadcast ----------------------------------------------------------

    def follower_process_proposal(self, j: int) -> bool:
        msg = self.network.peek(j, self.sid)
        if msg is None or msg.mtype != C.PROPOSAL:
            return False
        if (
            self.state != C.FOLLOWING
            or self.my_leader != j
            or self.zab_state != C.BROADCAST
        ):
            return False
        self.network.recv(j, self.sid)
        self.queued_requests.append(QueueEntry(msg.txn, self.accepted_epoch))
        return True

    def follower_process_proposal_atomic(self, j: int) -> bool:
        """Baseline-granularity mapping: receive, log and ACK a proposal
        as one region (drains the logging queue)."""
        if not self.follower_process_proposal(j):
            return False
        while self.queued_requests:
            if not self.sync_processor_step():
                break
        return True

    def follower_process_commit_atomic(self, j: int) -> bool:
        """Baseline-granularity mapping: receive and apply a COMMIT as
        one region (drains the commit queue)."""
        if not self.follower_process_commit(j):
            return False
        while self.committed_requests:
            if not self.commit_processor_step():
                break
        return True

    def follower_process_commit(self, j: int) -> bool:
        msg = self.network.peek(j, self.sid)
        if msg is None or msg.mtype != C.COMMIT:
            return False
        if (
            self.state != C.FOLLOWING
            or self.my_leader != j
            or self.zab_state != C.BROADCAST
        ):
            return False
        self.network.recv(j, self.sid)
        self.committed_requests.append(msg.zxid)
        return True

    # --- state extraction for conformance checking -------------------------------------

    def snapshot(self) -> dict:
        """Model-shaped view of this node's state (the variable mapping
        the conformance checker compares, §3.5.2)."""
        return {
            "state": self.state,
            "zab_state": self.zab_state,
            "accepted_epoch": self.accepted_epoch,
            "current_epoch": self.current_epoch,
            "history": tuple(self.history),
            "last_committed": self.last_committed,
            "my_leader": self.my_leader,
            "newleader_recv": self.newleader_recv,
            "queued_requests": tuple(
                (e.txn, e.epoch) for e in self.queued_requests
            ),
            "committed_requests": tuple(self.committed_requests),
        }
