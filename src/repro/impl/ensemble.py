"""The simulated ZooKeeper ensemble: nodes + network + fault injection.

The ensemble exposes the composite operations that coarse model actions
map to (``run_election`` for ElectionAndDiscovery -- the coordinator
"sets the messages that vote for the target leader with higher priority",
§3.5.3) and the per-node fault operations.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.impl.network import Network
from repro.impl.node import ZkNode
from repro.zookeeper import constants as C
from repro.zookeeper.config import SpecVariant


class Ensemble:
    """A cluster of :class:`ZkNode` over a simulated network."""

    def __init__(
        self,
        n_servers: int = 3,
        variant: Optional[SpecVariant] = None,
        divergence: str = "",
        max_msg_faults: int = 0,
    ):
        self.n = n_servers
        self.variant = variant or SpecVariant()
        self.network = Network(n_servers)
        self.nodes: List[ZkNode] = [
            ZkNode(i, n_servers, self.network, self.variant, divergence)
            for i in range(n_servers)
        ]
        self.next_value = 1
        # Shared delay/duplication allowance, mirroring the model's
        # msg_fault_budget -- the injector refusing further faults keeps
        # lockstep validation inside the model's state space.
        self.msg_fault_budget = max_msg_faults

    # --- composite election (coarse ElectionAndDiscovery mapping) -----------

    def run_election(self, leader: int, quorum: Sequence[int]) -> bool:
        """Deterministically run FLE + Discovery so that ``leader`` wins
        within ``quorum``.  Refuses when the outcome is impossible (the
        target's credentials are not maximal), which the conformance
        checker reports as an action that never takes place."""
        members = set(quorum)
        if leader not in members:
            return False
        for j in members:
            if self.nodes[j].state != C.LOOKING:
                return False
        creds = lambda j: (
            self.nodes[j].current_epoch,
            self.nodes[j].last_zxid(),
            j,
        )
        if any(creds(j) > creds(leader) for j in members):
            return False
        new_epoch = max(self.nodes[j].accepted_epoch for j in members) + 1
        for a in members:
            for b in members:
                if a < b:
                    self.network.clear_pair(a, b)
        self.nodes[leader].become_leader(members, new_epoch)
        for j in members:
            if j != leader:
                self.nodes[j].become_follower(leader, new_epoch)
                # Discovery: the leader learns the follower's credentials.
                self.nodes[leader].ackepoch_recv.add(
                    (j, self.nodes[j].current_epoch, self.nodes[j].last_zxid())
                )
        return True

    # --- faults -----------------------------------------------------------------

    def crash(self, i: int) -> bool:
        if self.nodes[i].state == C.DOWN:
            return False
        self.nodes[i].crash()
        self.network.mark_down(i)
        return True

    def restart(self, i: int) -> bool:
        if not self.nodes[i].restart():
            return False
        self.network.mark_up(i)
        return True

    def partition(self, i: int, j: int) -> bool:
        import builtins
        pair = builtins.frozenset((i, j))
        if pair in self.network.disconnected:
            return False
        self.network.partition(i, j)
        return True

    def heal(self, i: int, j: int) -> bool:
        import builtins
        pair = builtins.frozenset((i, j))
        if pair not in self.network.disconnected:
            return False
        self.network.heal(i, j)
        return True

    def follower_shutdown(self, i: int) -> bool:
        node = self.nodes[i]
        if node.state != C.FOLLOWING:
            return False
        leader = node.my_leader
        gone = (
            leader < 0
            or self.nodes[leader].state != C.LEADING
            or not self.network.connected(i, leader)
            or self.nodes[leader].accepted_epoch != node.accepted_epoch
        )
        if not gone:
            return False
        node.shutdown_to_election()
        return True

    def leader_shutdown(self, i: int) -> bool:
        node = self.nodes[i]
        if node.state != C.LEADING:
            return False
        reachable = 1 + sum(
            1
            for j in range(self.n)
            if j != i
            and self.nodes[j].state == C.FOLLOWING
            and self.nodes[j].my_leader == i
            and self.network.connected(i, j)
        )
        if reachable >= self.n // 2 + 1:
            return False
        node.shutdown_to_election()
        return True

    def discard_stale(self, i: int, j: int) -> bool:
        """Drop the head of channel j->i when the receiver can no longer
        handle it (mirrors the model's DiscardStaleMessage guards)."""
        msg = self.network.peek(j, i)
        node = self.nodes[i]
        if msg is None or node.state == C.DOWN:
            return False
        mtype = msg.mtype
        stale = False
        if mtype == C.FOLLOWERINFO and node.state != C.LEADING:
            stale = True
        elif mtype in (C.ACKEPOCH, C.ACK, C.ACK_UPTODATE) and node.state != C.LEADING:
            stale = True
        elif mtype in (C.ACK, C.ACK_UPTODATE) and not any(
            e[0] == j for e in node.ackepoch_recv
        ):
            stale = True
        elif mtype in (
            C.LEADERINFO,
            C.DIFF,
            C.TRUNC,
            C.SNAP,
            C.NEWLEADER,
            C.UPTODATE,
            C.PROPOSAL,
            C.COMMIT,
        ) and node.my_leader != j:
            stale = True
        if not stale:
            return False
        self.network.recv(j, i)
        return True

    def delay_message(self, i: int, j: int) -> bool:
        """Delay the head of channel j->i behind the traffic after it
        (the pair convention of :meth:`discard_stale`: the receiver
        first, then the sender)."""
        if self.msg_fault_budget <= 0 or not self.network.delay(j, i):
            return False
        self.msg_fault_budget -= 1
        return True

    def duplicate_message(self, i: int, j: int) -> bool:
        """Re-deliver the head of channel j->i at the channel's tail."""
        if self.msg_fault_budget <= 0 or not self.network.duplicate(j, i):
            return False
        self.msg_fault_budget -= 1
        return True

    # --- client traffic ------------------------------------------------------------

    def client_request(self, leader: int) -> bool:
        ok = self.nodes[leader].leader_propose(self.next_value)
        if ok:
            self.next_value += 1
        return ok

    # --- state extraction -------------------------------------------------------------

    def snapshot(self) -> Dict:
        """The model-shaped global state (per-variable tuples indexed by
        server id) used for conformance comparison."""
        per = lambda attr: tuple(n.snapshot()[attr] for n in self.nodes)
        return {
            "state": per("state"),
            "zab_state": per("zab_state"),
            "accepted_epoch": per("accepted_epoch"),
            "current_epoch": per("current_epoch"),
            "history": per("history"),
            "last_committed": per("last_committed"),
            "my_leader": per("my_leader"),
            "newleader_recv": per("newleader_recv"),
            "queued_requests": per("queued_requests"),
            "committed_requests": per("committed_requests"),
        }
