"""The simulated network: FIFO channels with partitions and connection
teardown, matching the model's message semantics."""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, FrozenSet, Optional, Set, Tuple

from repro.tla.values import Rec


class Network:
    """Pairwise FIFO channels between servers."""

    def __init__(self, n_servers: int):
        self.n = n_servers
        self.channels: Dict[Tuple[int, int], Deque[Rec]] = {
            (src, dst): deque()
            for src in range(n_servers)
            for dst in range(n_servers)
            if src != dst
        }
        self.disconnected: Set[FrozenSet[int]] = set()
        self.down: Set[int] = set()

    def connected(self, i: int, j: int) -> bool:
        if frozenset((i, j)) in self.disconnected:
            return False
        return i not in self.down and j not in self.down

    def send(self, src: int, dst: int, *messages: Rec):
        """Send messages; silently dropped when disconnected (broken
        TCP), as in the model."""
        if not self.connected(src, dst):
            return
        self.channels[(src, dst)].extend(messages)

    def peek(self, src: int, dst: int) -> Optional[Rec]:
        channel = self.channels[(src, dst)]
        return channel[0] if channel else None

    def recv(self, src: int, dst: int) -> Rec:
        return self.channels[(src, dst)].popleft()

    def delay(self, src: int, dst: int) -> bool:
        """Rotate the head of channel src -> dst to its tail (a delayed
        message overtaken by later traffic).  False when the channel has
        fewer than two messages."""
        channel = self.channels[(src, dst)]
        if len(channel) < 2:
            return False
        channel.rotate(-1)
        return True

    def duplicate(self, src: int, dst: int) -> bool:
        """Append a copy of the head of channel src -> dst at its tail
        (a retransmission across a reconnect).  False when empty."""
        channel = self.channels[(src, dst)]
        if not channel:
            return False
        channel.append(channel[0])
        return True

    def clear_server(self, server: int):
        for (src, dst), channel in self.channels.items():
            if src == server or dst == server:
                channel.clear()

    def clear_pair(self, i: int, j: int):
        self.channels[(i, j)].clear()
        self.channels[(j, i)].clear()

    def partition(self, i: int, j: int):
        self.disconnected.add(frozenset((i, j)))
        self.clear_pair(i, j)

    def heal(self, i: int, j: int):
        self.disconnected.discard(frozenset((i, j)))

    def mark_down(self, server: int):
        self.down.add(server)
        self.clear_server(server)

    def mark_up(self, server: int):
        self.down.discard(server)

    def snapshot(self) -> tuple:
        """The model-shaped msgs value: tuple[src][dst] of message tuples."""
        return tuple(
            tuple(
                tuple(self.channels[(src, dst)]) if src != dst else ()
                for dst in range(self.n)
            )
            for src in range(self.n)
        )
