"""A deterministic ZooKeeper implementation simulator (the conformance
target; substitutes the Java implementation per DESIGN.md section 2)."""

from repro.impl.ensemble import Ensemble
from repro.impl.exceptions import (
    CommitOrderError,
    ImplError,
    NullPointerException,
    SyncAssertionError,
    UnrecognizedAckError,
    ZkImplError,
)
from repro.impl.network import Network
from repro.impl.node import ZkNode

__all__ = [
    "CommitOrderError",
    "Ensemble",
    "ImplError",
    "Network",
    "NullPointerException",
    "SyncAssertionError",
    "UnrecognizedAckError",
    "ZkImplError",
    "ZkNode",
]
