"""Implementation-level exceptions, mirroring the symptoms the real
ZooKeeper bugs produce (the paper's conformance checker "reports
implementation bugs with obvious symptoms like assertion failures when
replaying traces", §3.5.2).

:class:`ImplError` is the system-agnostic base the remix layer catches;
other system plugins (e.g. :mod:`repro.raft.impl`) derive their own
hierarchies from it."""

from __future__ import annotations


class ImplError(Exception):
    """Base class for implementation-level failures of any system."""

    bug_id = ""


class ZkImplError(ImplError):
    """Base class for ZooKeeper implementation-level failures."""


class NullPointerException(ZkImplError):
    """Learner.syncWithLeader cannot match a COMMIT to a packet
    (ZK-4394)."""

    bug_id = "ZK-4394"


class UnrecognizedAckError(ZkImplError):
    """Leader.processAck cannot recognize an ACK received while waiting
    for the quorum of NEWLEADER ACKs (ZK-4685)."""

    bug_id = "ZK-4685"


class SyncAssertionError(ZkImplError):
    """The leader's assertion that a follower is in sync with its initial
    history fails on the follower's ACK of UPTODATE (ZK-3023)."""

    bug_id = "ZK-3023"


class CommitOrderError(ZkImplError):
    """A COMMIT arrived for a transaction that is unknown or out of
    order."""

    bug_id = ""
