"""Analyses over the specs: the paper's effort table and bug-lineage
figure, plus the static spec linter (``python -m repro lint``)."""

from repro.analysis.deps import SpecAnalyzer, Summary
from repro.analysis.efforts import SpecDiff, SpecMetrics, diff, measure, table3
from repro.analysis.findings import (
    RULES,
    Finding,
    LintReport,
    Rule,
    baseline_error,
    new_fingerprints,
)
from repro.analysis.lineage import (
    EDGES,
    ISSUES,
    Issue,
    descendants_of_optimization,
    generations,
    lineage_graph,
    render_ascii,
    roots,
    unfixed_at_publication,
)
from repro.analysis.lint import lint_plugin, lint_system, lint_systems

__all__ = [
    "EDGES",
    "ISSUES",
    "Finding",
    "Issue",
    "LintReport",
    "RULES",
    "Rule",
    "SpecAnalyzer",
    "SpecDiff",
    "SpecMetrics",
    "Summary",
    "baseline_error",
    "descendants_of_optimization",
    "diff",
    "generations",
    "lineage_graph",
    "lint_plugin",
    "lint_system",
    "lint_systems",
    "measure",
    "new_fingerprints",
    "render_ascii",
    "roots",
    "table3",
    "unfixed_at_publication",
]
