"""Analyses for the paper's effort table and bug-lineage figure."""

from repro.analysis.efforts import SpecDiff, SpecMetrics, diff, measure, table3
from repro.analysis.lineage import (
    EDGES,
    ISSUES,
    Issue,
    descendants_of_optimization,
    generations,
    lineage_graph,
    render_ascii,
    roots,
    unfixed_at_publication,
)

__all__ = [
    "EDGES",
    "ISSUES",
    "Issue",
    "SpecDiff",
    "SpecMetrics",
    "descendants_of_optimization",
    "diff",
    "generations",
    "lineage_graph",
    "measure",
    "render_ascii",
    "roots",
    "table3",
    "unfixed_at_publication",
]
