"""Checking Action/Invariant declarations against the analyzed truth.

Compares each action's declared ``reads`` / ``writes`` /
``update_sources`` (and each invariant's ``reads``) with the
:class:`~repro.analysis.deps.Summary` the AST analysis computed,
emitting the D-series findings:

- **D01 under-declared-read** -- a read outside the declared dependency
  closure.  This is the soundness bug class ``--debug-deps`` catches at
  runtime (and only on visited states): memoized outcomes would be
  reused across states that differ in the undeclared variable.
- **D02 over-declared-read** -- declared-but-never-read variables that
  widen memo keys and lower the hit rate.
- **D03/D04** -- the same two directions for writes.
- **D05** -- the analysis could not fully resolve the function.
- **D06** -- no reads declaration at all (memoization disabled).
- **D07** -- declarations naming variables outside the schema, or
  update sources for variables the action does not write.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set, Tuple

from repro.analysis.deps import Access, SpecAnalyzer, Summary
from repro.analysis.findings import Finding, make_finding
from repro.tla.action import Action
from repro.tla.spec import Invariant, Specification


def _location(fn) -> Tuple[str, int]:
    from repro.tla.action import function_location

    location = function_location(fn)
    return location if location is not None else ("", 0)


def _dedupe(findings: Iterable[Finding]) -> List[Finding]:
    seen: Set[Tuple] = set()
    out: List[Finding] = []
    for finding in findings:
        key = (finding.fingerprint, finding.line, finding.message)
        if key not in seen:
            seen.add(key)
            out.append(finding)
    return out


def check_action(
    system: str,
    action: Action,
    schema: Set[str],
    analyzer: SpecAnalyzer,
) -> List[Finding]:
    """All declaration findings for one action of one composed spec."""
    subject = f"action:{action.name}"
    summary = analyzer.analyze(action.fn, state_positions=(1,))
    file, line = _location(action.fn)
    findings: List[Finding] = []

    def emit(rule, message, variable="", at: Optional[Access] = None):
        findings.append(
            make_finding(
                rule,
                system,
                subject,
                message,
                variable=variable,
                file=at.file if at is not None else file,
                line=at.line if at is not None else line,
            )
        )

    # D07: declarations must stay inside the schema and be consistent.
    declared_sources: Set[str] = set()
    for target, source_vars in sorted(action.update_sources.items()):
        declared_sources |= source_vars
        if target not in action.writes:
            emit(
                "D07",
                f"update_sources declares sources for {target!r}, which "
                "is not in the action's writes",
                variable=target,
            )
    for group, names in (
        ("reads", action.reads),
        ("writes", action.writes),
        ("update_sources", declared_sources),
    ):
        for name in sorted(set(names) - schema):
            emit(
                "D07",
                f"declared {group} variable {name!r} is not in the spec "
                "schema",
                variable=name,
            )

    # Analyzed accesses outside the schema would KeyError at runtime.
    for var in sorted(set(summary.reads) - schema):
        emit(
            "D07",
            f"reads variable {var!r} which is not in the spec schema",
            variable=var,
            at=summary.reads[var],
        )
    analyzed_reads = {var for var in summary.reads if var in schema}

    # D05: partial resolution limits what the declaration check proves.
    for access in summary.unresolved:
        emit(
            "D05",
            f"analysis could not resolve: {access.detail}; the "
            "declaration check for this function is incomplete",
            at=access,
        )

    closure = action.dependency_closure()
    if closure is None:
        detail = ""
        if summary.reads_resolved:
            detail = (
                "; analysis suggests reads covering "
                f"{sorted(analyzed_reads)}"
                if analyzed_reads
                else "; analysis found no state reads"
            )
        emit(
            "D06",
            "no reads declaration: the incremental engine cannot "
            f"memoize this action{detail}",
        )
    else:
        # D01: soundness -- every resolved read must be inside the
        # declared closure, and whole-state access is incompatible with
        # declaring a (necessarily partial) closure at all.
        for var in sorted(analyzed_reads - closure):
            access = summary.reads[var]
            emit(
                "D01",
                f"reads {var!r} ({access.detail}) outside the declared "
                f"dependency closure {sorted(closure)}; memoized "
                "outcomes would be reused across states that differ in "
                f"{var!r}",
                variable=var,
                at=access,
            )
        for access in summary.whole_reads:
            emit(
                "D01",
                f"whole-state access ({access.detail}) is incompatible "
                "with the declared dependency closure",
                variable="*",
                at=access,
            )
        # D02: performance -- declared dependencies never actually read.
        if summary.reads_resolved:
            declared_read = set(action.reads) | declared_sources
            for var in sorted((declared_read & schema) - analyzed_reads):
                emit(
                    "D02",
                    f"declares a dependency on {var!r} but never reads "
                    "it; the declaration widens memo keys for nothing",
                    variable=var,
                )

    # D03: soundness -- may-written keys must be declared
    # (validate_updates would raise at runtime, but only on paths a run
    # happens to take).
    for var in sorted(set(summary.writes) - action.writes):
        access = summary.writes[var]
        emit(
            "D03",
            f"may return an update for undeclared variable {var!r}",
            variable=var,
            at=access,
        )
    for access in summary.writes_unknown:
        emit(
            "D05",
            "returned update keys are not statically resolvable; the "
            "writes declaration is unchecked",
            at=access,
        )
    # D04: performance -- declared writes never produced.
    if summary.writes_resolved and not summary.unresolved:
        for var in sorted((action.writes & schema) - set(summary.writes)):
            emit(
                "D04",
                f"declares a write of {var!r} but never returns an "
                "update for it",
                variable=var,
            )

    for issue in summary.purity:
        findings.append(
            make_finding(
                issue.rule,
                system,
                subject,
                issue.message,
                file=issue.file,
                line=issue.line,
            )
        )
    return _dedupe(findings)


def check_invariant(
    system: str,
    invariant: Invariant,
    schema: Set[str],
    analyzer: SpecAnalyzer,
) -> List[Finding]:
    """Declaration findings for one invariant predicate."""
    subject = f"invariant:{invariant.full_name}"
    summary = analyzer.analyze(invariant.predicate, state_positions=(1,))
    file, line = _location(invariant.predicate)
    findings: List[Finding] = []

    def emit(rule, message, variable="", at: Optional[Access] = None):
        findings.append(
            make_finding(
                rule,
                system,
                subject,
                message,
                variable=variable,
                file=at.file if at is not None else file,
                line=at.line if at is not None else line,
            )
        )

    for name in sorted(set(invariant.reads) - schema):
        emit(
            "D07",
            f"declared reads variable {name!r} is not in the spec schema",
            variable=name,
        )
    for var in sorted(set(summary.reads) - schema):
        emit(
            "D07",
            f"reads variable {var!r} which is not in the spec schema",
            variable=var,
            at=summary.reads[var],
        )
    analyzed_reads = {var for var in summary.reads if var in schema}

    for access in summary.unresolved:
        emit(
            "D05",
            f"analysis could not resolve: {access.detail}; the "
            "declaration check for this predicate is incomplete",
            at=access,
        )

    declared = set(invariant.reads)
    if not declared:
        detail = ""
        if summary.reads_resolved:
            detail = (
                f"; analysis suggests reads={sorted(analyzed_reads)}"
                if analyzed_reads
                else "; analysis found no state reads"
            )
        emit(
            "D06",
            "no reads declaration: the engine re-evaluates this "
            f"invariant on every state{detail}",
        )
    else:
        for var in sorted(analyzed_reads - declared):
            access = summary.reads[var]
            emit(
                "D01",
                f"reads {var!r} ({access.detail}) outside the declared "
                f"reads {sorted(declared)}; memoized verdicts would be "
                f"reused across states that differ in {var!r}",
                variable=var,
                at=access,
            )
        for access in summary.whole_reads:
            emit(
                "D01",
                f"whole-state access ({access.detail}) is incompatible "
                "with the declared reads",
                variable="*",
                at=access,
            )
        if summary.reads_resolved:
            for var in sorted((declared & schema) - analyzed_reads):
                emit(
                    "D02",
                    f"declares a dependency on {var!r} but never reads "
                    "it; the declaration widens memo keys for nothing",
                    variable=var,
                )

    for issue in summary.purity:
        findings.append(
            make_finding(
                issue.rule,
                system,
                subject,
                issue.message,
                file=issue.file,
                line=issue.line,
            )
        )
    return _dedupe(findings)


def check_spec(
    system: str, spec: Specification, analyzer: SpecAnalyzer
) -> Tuple[List[Finding], Set[str]]:
    """Declaration findings for a composed spec, plus the repro modules
    its functions were traced into (for the C05 coverage check)."""
    schema = set(spec.schema.names)
    findings: List[Finding] = []
    modules: Set[str] = set()
    for action in spec.actions:
        findings.extend(check_action(system, action, schema, analyzer))
        modules |= analyzer.analyze(action.fn, state_positions=(1,)).modules
    for invariant in spec.invariants:
        findings.extend(
            check_invariant(system, invariant, schema, analyzer)
        )
        modules |= analyzer.analyze(
            invariant.predicate, state_positions=(1,)
        ).modules
    return findings, modules
