"""Source resolution for the static spec analyzer.

Maps live function objects back to their AST definitions and resolves
the names a function body references (closure cells first, then module
globals, then builtins) -- the plumbing :mod:`repro.analysis.deps` uses
to follow spec helpers and wrapper lambdas.

``inspect.getsource`` is unreliable for lambdas (it returns the whole
enclosing statement), so functions are located by parsing the *module*
file once and matching code-object metadata: name, first line and
positional argument names.
"""

from __future__ import annotations

import ast
import builtins
import types
from typing import Any, Dict, List, Optional, Tuple

#: Sentinel for names/attributes the resolver cannot resolve.
UNRESOLVED = object()

_AST_CACHE: Dict[str, Optional[ast.Module]] = {}
_FUNC_CACHE: Dict[str, List[ast.AST]] = {}

FunctionNode = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def module_ast(filename: str) -> Optional[ast.Module]:
    """Parse (and cache) a module file; None when unreadable."""
    if filename not in _AST_CACHE:
        try:
            with open(filename, "r", encoding="utf-8") as handle:
                _AST_CACHE[filename] = ast.parse(handle.read(), filename)
        except (OSError, SyntaxError, ValueError):
            _AST_CACHE[filename] = None
    return _AST_CACHE[filename]


def _function_nodes(filename: str) -> List[ast.AST]:
    if filename not in _FUNC_CACHE:
        tree = module_ast(filename)
        _FUNC_CACHE[filename] = (
            [node for node in ast.walk(tree) if isinstance(node, FunctionNode)]
            if tree is not None
            else []
        )
    return _FUNC_CACHE[filename]


def positional_params(node: ast.AST) -> List[str]:
    """Positional parameter names of a function/lambda node."""
    args = node.args
    return [a.arg for a in args.posonlyargs] + [a.arg for a in args.args]


def function_node(fn: Any) -> Optional[ast.AST]:
    """The AST node defining ``fn``, or None.

    Matches on the code object's name and first line; lambdas (several
    can share a line) are disambiguated by their argument names.
    """
    code = getattr(fn, "__code__", None)
    if code is None:
        return None
    lineno = code.co_firstlineno
    expected = list(code.co_varnames[: code.co_argcount])
    candidates = []
    for node in _function_nodes(code.co_filename):
        if isinstance(node, ast.Lambda):
            if code.co_name != "<lambda>" or node.lineno != lineno:
                continue
            if positional_params(node) == expected:
                candidates.append(node)
        else:
            if node.name != code.co_name:
                continue
            # co_firstlineno points at the `def` line, but decorated
            # functions historically reported the first decorator line;
            # accept either convention.
            decorator_lines = [d.lineno for d in node.decorator_list]
            if node.lineno == lineno or lineno in decorator_lines:
                candidates.append(node)
    return candidates[0] if candidates else None


def closure_map(fn: Any) -> Dict[str, Any]:
    """Free variable name -> cell contents (unset cells are skipped)."""
    code = getattr(fn, "__code__", None)
    closure = getattr(fn, "__closure__", None)
    if code is None or not closure:
        return {}
    out: Dict[str, Any] = {}
    for name, cell in zip(code.co_freevars, closure):
        try:
            out[name] = cell.cell_contents
        except ValueError:  # pragma: no cover - still-unset cell
            continue
    return out


def resolve_name(fn: Any, name: str) -> Any:
    """Resolve a non-local name as the function body would at call time:
    closure cells, then the function's module globals, then builtins."""
    cells = closure_map(fn)
    if name in cells:
        return cells[name]
    module_globals = getattr(fn, "__globals__", {})
    if name in module_globals:
        return module_globals[name]
    if hasattr(builtins, name):
        return getattr(builtins, name)
    return UNRESOLVED


def resolve_attr(obj: Any, attr: str) -> Any:
    """Follow one attribute step through a module or class; anything
    else (instances, values) is opaque to the static analyzer."""
    if obj is UNRESOLVED:
        return UNRESOLVED
    if isinstance(obj, (types.ModuleType, type)):
        return getattr(obj, attr, UNRESOLVED)
    return UNRESOLVED


def resolve_chain(fn: Any, node: ast.AST) -> Tuple[Any, str]:
    """Resolve a ``Name`` / dotted ``Attribute`` chain rooted at a name.

    Returns ``(value, dotted_text)``; ``value`` is :data:`UNRESOLVED`
    when any step fails (including local-variable roots, which the
    caller must rule out beforehand)."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return UNRESOLVED, ""
    parts.append(current.id)
    parts.reverse()
    value = resolve_name(fn, parts[0])
    for attr in parts[1:]:
        value = resolve_attr(value, attr)
    return value, ".".join(parts)
