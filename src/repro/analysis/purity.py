"""Purity and determinism tables for the static spec analyzer.

Spec functions must be pure, deterministic functions of
``(config, state, params)``: the engine memoizes their outcomes,
replays traces across processes and fingerprints the states they
produce.  This module classifies the calls and constructs that break
that contract; :mod:`repro.analysis.deps` consults it during its AST
walk.
"""

from __future__ import annotations

import ast
from typing import Any, Optional

from repro.analysis.sources import UNRESOLVED

#: Modules whose every callable is nondeterministic or environment-
#: reading from the spec's point of view.
BANNED_MODULES = frozenset(
    {
        "random",
        "secrets",
        "uuid",
        "socket",
        "subprocess",
        "time",
        "threading",
        "multiprocessing",
    }
)

#: ``os`` is banned except the pure path helpers.
_OS_ALLOWED_PREFIXES = ("os.path.",)

#: datetime is fine (timedelta arithmetic etc.) except the clock reads.
_DATETIME_CLOCKS = frozenset({"now", "today", "utcnow"})

#: Builtins that reach outside the interpreter or defeat analysis.
BANNED_BUILTINS = frozenset({"open", "input", "eval", "exec", "compile"})

#: Builtins whose result does not depend on iteration order, so feeding
#: them an unordered set is harmless.
ORDER_INSENSITIVE = frozenset(
    {"sum", "min", "max", "any", "all", "len", "set", "frozenset", "sorted"}
)

#: Mutating methods on builtin containers (module-global mutation, P03).
MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "pop",
        "clear",
        "add",
        "discard",
        "update",
        "setdefault",
        "popitem",
        "sort",
        "reverse",
    }
)

#: Builtin constructors producing mutable (unhashable) values -- storing
#: their result into State breaks fingerprinting (P04).
MUTABLE_CONSTRUCTORS = frozenset({"list", "dict", "set", "bytearray"})

#: Mutable AST display/comprehension nodes for the same check.
MUTABLE_DISPLAYS = (
    ast.List,
    ast.Dict,
    ast.Set,
    ast.ListComp,
    ast.SetComp,
    ast.DictComp,
)


def banned_call(target: Any, dotted: str) -> Optional[str]:
    """Why calling ``target`` (resolved from the dotted source text) is
    nondeterministic, or None when the call is acceptable."""
    if dotted:
        root = dotted.split(".", 1)[0]
        leaf = dotted.rsplit(".", 1)[-1]
        if root == "os" and not dotted.startswith(_OS_ALLOWED_PREFIXES):
            return f"call to {dotted} reads process/OS state"
        if root == "datetime" and leaf in _DATETIME_CLOCKS:
            return f"call to {dotted} reads the wall clock"
        if root in BANNED_MODULES:
            return f"call to {dotted} is nondeterministic"
    if target is UNRESOLVED or target is None:
        return None
    module = getattr(target, "__module__", None) or ""
    name = getattr(target, "__name__", "") or dotted
    root = module.split(".", 1)[0]
    if root in BANNED_MODULES:
        return f"call to {module}.{name} is nondeterministic"
    if root == "os" and not f"{module}.{name}".startswith("os.path."):
        return f"call to {module}.{name} reads process/OS state"
    if module == "builtins" and name in BANNED_BUILTINS:
        return f"call to builtin {name}() reaches outside the interpreter"
    return None


def is_set_display(node: ast.AST) -> bool:
    """A syntactic set: literal, comprehension, or set()/frozenset()."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def mutable_value(node: ast.AST) -> Optional[str]:
    """Why storing the value of ``node`` into State would break
    hashing, or None when it looks immutable."""
    if isinstance(node, MUTABLE_DISPLAYS):
        kind = type(node).__name__
        return f"{kind} value is mutable/unhashable"
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in MUTABLE_CONSTRUCTORS:
            return f"{node.func.id}() value is mutable/unhashable"
    return None
