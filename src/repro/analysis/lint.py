"""The lint orchestrator behind ``python -m repro lint``.

Runs the three static passes over a system plugin -- declaration
checking (:mod:`repro.analysis.declarations`), purity (folded into the
same analysis) and plugin conformance (:mod:`repro.analysis.
conformance`) -- and collects the findings into one
:class:`~repro.analysis.findings.LintReport`.

Everything here is static: grains are *composed* (that much runs
plugin code), but no action is ever applied and no state is explored.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set

from repro.analysis.deps import SpecAnalyzer
from repro.analysis.findings import Finding, LintReport


def lint_plugin(
    system: str,
    plugin,
    config=None,
    analyzer: Optional[SpecAnalyzer] = None,
) -> List[Finding]:
    """All findings for one plugin instance (any SystemPlugin works,
    registered or not -- tests lint fixture plugins directly)."""
    from repro.analysis import conformance, declarations

    analyzer = analyzer or SpecAnalyzer()
    if config is None:
        config = plugin.default_config()
    specs, findings = conformance.build_specs(system, plugin, config)

    modules: Set[str] = set()
    seen = {
        (f.fingerprint, f.line, f.message) for f in findings
    }

    def add(batch: Iterable[Finding]) -> None:
        for finding in batch:
            key = (finding.fingerprint, finding.line, finding.message)
            if key not in seen:
                seen.add(key)
                findings.append(finding)

    # A multi-grained plugin shares most actions across grains; the
    # fingerprint dedupe above keeps each defect reported once even
    # though every grain's composition is checked.
    for grain in plugin.grains:
        spec = specs.get(grain)
        if spec is None:
            continue
        spec_findings, spec_modules = declarations.check_spec(
            system, spec, analyzer
        )
        add(spec_findings)
        modules |= spec_modules

    add(conformance.check_plugin(system, plugin, config, specs, modules))
    findings.sort(key=lambda f: (f.file, f.line, f.rule, f.variable, f.subject))
    return findings


def lint_system(
    name: str, analyzer: Optional[SpecAnalyzer] = None
) -> List[Finding]:
    """Findings for one registered system."""
    from repro.remix.registry import system_plugin

    return lint_plugin(name, system_plugin(name), analyzer=analyzer)


def lint_systems(names: Sequence[str]) -> LintReport:
    """Lint several registered systems into one report."""
    findings: List[Finding] = []
    analyzer = SpecAnalyzer()
    for name in names:
        findings.extend(lint_system(name, analyzer=analyzer))
    return LintReport(systems=tuple(names), findings=findings)
