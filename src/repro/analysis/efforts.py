"""Specification-effort metrics (Table 3).

Table 3 measures, for each mixed-grained specification relative to the
previous one: the source-diff size, the number of variables, the number of
actions, and the number of instrumentation pointcuts the replay mapping
needs.  We compute the same metrics from this repository's specification
modules: lines come from the action functions' Python source, variables
from the declared reads/writes, and pointcuts from the Remix mapping.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.remix.mapping import mapping_for
from repro.tla.spec import Specification
from repro.zookeeper.config import ZkConfig
from repro.zookeeper.specs import SELECTIONS, build_spec


@dataclass
class SpecMetrics:
    """The Table 3 measurements for one specification."""

    name: str
    lines: int
    variables: int
    actions: int
    pointcuts: Optional[int]  # None when the selection is not mappable

    def as_row(self) -> Dict:
        return {
            "spec": self.name,
            "lines": self.lines,
            "variables": self.variables,
            "actions": self.actions,
            "pointcuts": self.pointcuts,
        }


@dataclass
class SpecDiff:
    """A Table 3 row: metrics of one spec relative to another."""

    name: str
    base: str
    lines_added: int
    lines_removed: int
    variables: int
    variables_delta: int
    actions: int
    actions_delta: int
    pointcuts: Optional[int]
    pointcuts_delta: Optional[int]

    def __str__(self) -> str:
        pc = "-" if self.pointcuts is None else str(self.pointcuts)
        pcd = "" if self.pointcuts_delta is None else f" ({self.pointcuts_delta:+d})"
        return (
            f"{self.name} - {self.base}: +{self.lines_added}, "
            f"-{self.lines_removed} lines | {self.variables} vars "
            f"({self.variables_delta:+d}) | {self.actions} actions "
            f"({self.actions_delta:+d}) | {pc}{pcd} pointcuts"
        )


def _source_lines(spec: Specification) -> List[str]:
    """The deduplicated source lines of every action function."""
    seen: Set[int] = set()
    lines: List[str] = []
    for action in spec.actions:
        fn = action.fn
        target = getattr(fn, "__wrapped__", fn)
        try:
            source = inspect.getsource(target)
        except (OSError, TypeError):
            continue
        if id(target) in seen:
            continue
        seen.add(id(target))
        lines.extend(
            line.rstrip()
            for line in source.splitlines()
            if line.strip() and not line.strip().startswith("#")
        )
    return lines


def measure(name: str, config: Optional[ZkConfig] = None) -> SpecMetrics:
    """Measure one Table 1 specification."""
    config = config or ZkConfig()
    spec = build_spec(name, SELECTIONS[name], config)
    # Variable census over the protocol modules (the fault module touches
    # every volatile variable regardless of granularity, so it would hide
    # the coarsening's variable reduction that Table 3 reports).
    variables: Set[str] = set()
    for module in spec.modules:
        if module.name == "Faults":
            continue
        for action in module.actions:
            variables |= action.reads | action.writes
    try:
        pointcuts = mapping_for(SELECTIONS[name]).total_pointcuts()
    except ValueError:
        pointcuts = None
    return SpecMetrics(
        name=name,
        lines=len(_source_lines(spec)),
        variables=len(variables),
        actions=len(spec.actions),
        pointcuts=pointcuts,
    )


def diff(new: SpecMetrics, base: SpecMetrics, new_spec=None, base_spec=None) -> SpecDiff:
    """A Table 3 row comparing two measured specifications.

    Line-diff counts are computed on the multiset of source lines, which
    matches how the paper's TLA+ diffs count added/removed lines.
    """
    config = ZkConfig()
    new_lines = _source_lines(build_spec(new.name, SELECTIONS[new.name], config))
    base_lines = _source_lines(build_spec(base.name, SELECTIONS[base.name], config))
    from collections import Counter

    new_counts = Counter(new_lines)
    base_counts = Counter(base_lines)
    added = sum((new_counts - base_counts).values())
    removed = sum((base_counts - new_counts).values())
    return SpecDiff(
        name=new.name,
        base=base.name,
        lines_added=added,
        lines_removed=removed,
        variables=new.variables,
        variables_delta=new.variables - base.variables,
        actions=new.actions,
        actions_delta=new.actions - base.actions,
        pointcuts=new.pointcuts,
        pointcuts_delta=(
            new.pointcuts - base.pointcuts
            if new.pointcuts is not None and base.pointcuts is not None
            else None
        ),
    )


def table3(config: Optional[ZkConfig] = None) -> List[SpecDiff]:
    """The three rows of Table 3: mSpec-1 vs SysSpec, mSpec-2 vs
    mSpec-1, mSpec-3 vs mSpec-2."""
    pairs = [("mSpec-1", "SysSpec"), ("mSpec-2", "mSpec-1"), ("mSpec-3", "mSpec-2")]
    rows = []
    for new_name, base_name in pairs:
        rows.append(diff(measure(new_name, config), measure(base_name, config)))
    return rows
