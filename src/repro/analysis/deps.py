"""AST-based dependency and purity analysis of spec functions.

:class:`SpecAnalyzer` walks an action/guard/invariant function's AST and
computes a :class:`Summary` of the state variables it reads (resolving
through local aliases, derived states from ``state.set(...)``, wrapper
lambdas and helper calls within the spec packages), the update keys it
may return (its may-write set), and any purity/determinism hazards it
contains.  :mod:`repro.analysis.declarations` compares the summary
against the declarations on :class:`repro.tla.action.Action` and
:class:`repro.tla.spec.Invariant`.

The analysis is deliberately conservative: anything it cannot resolve is
recorded in ``Summary.unresolved`` (surfacing as a D05 finding) rather
than silently ignored, so a clean lint really does mean the declared
dependency closures were verified.
"""

from __future__ import annotations

import ast
import builtins
import sys
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis import purity, sources
from repro.analysis.sources import UNRESOLVED

#: State methods that read the entire state.
STATE_WHOLE = frozenset({"values", "items", "diff"})

#: State methods/attributes that only touch variable-name metadata.
STATE_NEUTRAL = frozenset({"schema", "keys"})

#: Builtins for which a state argument only exposes variable *names*
#: (State is a Mapping over the schema), not values.
METADATA_BUILTINS = frozenset(
    {"len", "sorted", "list", "tuple", "set", "frozenset", "iter",
     "enumerate", "zip"}
)

_MAX_DEPTH = 24

_STDLIB = frozenset(getattr(sys, "stdlib_module_names", ()))


@dataclass(frozen=True)
class Access:
    """One state-variable access site."""

    var: str
    file: str
    line: int
    detail: str = ""


@dataclass(frozen=True)
class Issue:
    """One purity/determinism hazard."""

    rule: str
    message: str
    file: str
    line: int


@dataclass
class Summary:
    """What a spec function reads, writes and depends on."""

    reads: Dict[str, Access] = field(default_factory=dict)
    whole_reads: List[Access] = field(default_factory=list)
    writes: Dict[str, Access] = field(default_factory=dict)
    writes_unknown: List[Access] = field(default_factory=list)
    returns_other: bool = False
    purity: List[Issue] = field(default_factory=list)
    unresolved: List[Access] = field(default_factory=list)
    modules: Set[str] = field(default_factory=set)

    @property
    def reads_resolved(self) -> bool:
        """True when every state access was statically resolved."""
        return not self.whole_reads and not self.unresolved

    @property
    def writes_resolved(self) -> bool:
        return not self.writes_unknown


@dataclass
class ExprInfo:
    """Static classification of an expression's value."""

    kind: str = "other"  # "state" | "dict" | "other"
    keys: Dict[str, Access] = field(default_factory=dict)
    unknown: bool = False  # dict with unresolvable keys


class SpecAnalyzer:
    """Analyzes live spec functions, memoizing per function object.

    One analyzer instance is shared across a lint run so helpers reached
    from many actions (``_volatile_reset``, the ``prims`` library, ...)
    are analyzed once.
    """

    def __init__(self):
        self._cache: Dict[Tuple[int, FrozenSet[str]], Summary] = {}
        self._keepalive: List[Any] = []  # pin ids used as cache keys
        self._active: Set[Tuple[int, FrozenSet[str]]] = set()

    def analyze(self, fn: Any, state_positions: Tuple[int, ...] = (1,)) -> Summary:
        """Analyze ``fn`` with the given positional parameters bound to
        the state (position 1 for the ``(config, state, **params)``
        action/invariant signature)."""
        code = getattr(fn, "__code__", None)
        if code is None:
            summary = Summary()
            summary.unresolved.append(
                Access("", "", 0, "callable has no Python code object")
            )
            return summary
        names = frozenset(
            code.co_varnames[p]
            for p in state_positions
            if p < code.co_argcount
        )
        return self._analyze(fn, names, 0)

    def _analyze(
        self, fn: Any, state_params: FrozenSet[str], depth: int
    ) -> Summary:
        key = (id(fn), state_params)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        summary = Summary()
        code = getattr(fn, "__code__", None)
        if code is None:
            return summary
        module = getattr(fn, "__module__", "") or ""
        if module:
            summary.modules.add(module)
        if key in self._active or depth > _MAX_DEPTH:
            # Recursion (or a pathological helper chain): approximate the
            # repeated frame with the empty summary; the first frame
            # still records everything the body touches.
            return summary
        node = sources.function_node(fn)
        if node is None:
            summary.unresolved.append(
                Access(
                    "", code.co_filename, code.co_firstlineno,
                    f"source for {code.co_name} unavailable",
                )
            )
            self._remember(key, fn, summary)
            return summary
        self._active.add(key)
        try:
            visitor = _FunctionVisitor(self, fn, summary, state_params, depth)
            visitor.run(node)
        finally:
            self._active.discard(key)
        self._remember(key, fn, summary)
        return summary

    def _remember(self, key, fn, summary: Summary) -> None:
        self._cache[key] = summary
        self._keepalive.append(fn)


class _FunctionVisitor(ast.NodeVisitor):
    """One function body's walk; helper calls recurse via the analyzer."""

    def __init__(
        self,
        analyzer: SpecAnalyzer,
        fn: Any,
        summary: Summary,
        state_params: FrozenSet[str],
        depth: int,
    ):
        self.analyzer = analyzer
        self.fn = fn
        self.code = fn.__code__
        self.file = self.code.co_filename
        self.summary = summary
        self.state_names: Set[str] = set(state_params)
        self.locals: Set[str] = set(self.code.co_varnames) | set(
            self.code.co_cellvars
        )
        self.shadow: Set[str] = set()
        self.dicts: Dict[str, Tuple[Dict[str, Access], bool]] = {}
        self.set_locals: Set[str] = set()
        self.depth = depth
        self._exempt: Set[int] = set()
        self._suppress_returns = 0

    def run(self, node: ast.AST) -> None:
        if isinstance(node, ast.Lambda):
            self._record_return(self._eval(node.body), node.body)
        else:
            for stmt in node.body:
                self.visit(stmt)

    # --- recording -----------------------------------------------------------

    def _read(self, var: str, node: ast.AST, detail: str = "") -> None:
        self.summary.reads.setdefault(
            var, Access(var, self.file, getattr(node, "lineno", 0), detail)
        )

    def _whole(self, node: ast.AST, detail: str) -> None:
        self.summary.whole_reads.append(
            Access("*", self.file, getattr(node, "lineno", 0), detail)
        )

    def _unresolved(self, node: ast.AST, detail: str) -> None:
        self.summary.unresolved.append(
            Access("", self.file, getattr(node, "lineno", 0), detail)
        )

    def _purity(self, rule: str, message: str, node: ast.AST) -> None:
        self.summary.purity.append(
            Issue(rule, message, self.file, getattr(node, "lineno", 0))
        )

    def _merge(self, callee: Summary) -> None:
        for var, access in callee.reads.items():
            self.summary.reads.setdefault(var, access)
        self.summary.whole_reads.extend(callee.whole_reads)
        self.summary.purity.extend(callee.purity)
        self.summary.unresolved.extend(callee.unresolved)
        self.summary.modules |= callee.modules

    # --- small predicates ----------------------------------------------------

    def _is_state(self, node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Name)
            and node.id in self.state_names
            and node.id not in self.shadow
        )

    def _is_local(self, name: str) -> bool:
        return name in self.locals or name in self.shadow

    def _unordered_iter(self, node: ast.AST) -> bool:
        if purity.is_set_display(node):
            return True
        return (
            isinstance(node, ast.Name)
            and node.id in self.set_locals
            and node.id not in self.shadow
        )

    def _resolve(self, node: ast.AST) -> Tuple[Any, str]:
        root = node
        while isinstance(root, ast.Attribute):
            root = root.value
        if not isinstance(root, ast.Name) or self._is_local(root.id):
            return UNRESOLVED, ""
        return sources.resolve_chain(self.fn, node)

    def _constant_strings(self, node: ast.AST) -> Optional[Set[str]]:
        """A statically known collection of variable names, or None."""
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            out: Set[str] = set()
            for element in node.elts:
                if not (
                    isinstance(element, ast.Constant)
                    and isinstance(element.value, str)
                ):
                    return None
                out.add(element.value)
            return out
        value, _ = self._resolve(node)
        if isinstance(value, (tuple, list, set, frozenset)) and all(
            isinstance(item, str) for item in value
        ):
            return set(value)
        return None

    # --- expression evaluation ----------------------------------------------

    def _eval(self, node: ast.AST) -> ExprInfo:
        """Visit an expression and classify its value (state alias /
        update dict / other); the value position of assignments and
        returns, where a bare state name is aliasing, not a read."""
        if isinstance(node, ast.Name):
            if self._is_state(node):
                return ExprInfo("state")
            if node.id in self.dicts and node.id not in self.shadow:
                keys, unknown = self.dicts[node.id]
                return ExprInfo("dict", dict(keys), unknown)
            self.visit(node)
            return ExprInfo()
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.Dict):
            return self._eval_dict(node)
        if isinstance(node, ast.IfExp):
            self.visit(node.test)
            return self._combine(self._eval(node.body), self._eval(node.orelse))
        if isinstance(node, ast.BoolOp):
            info = self._eval(node.values[0])
            for value in node.values[1:]:
                info = self._combine(info, self._eval(value))
            return info
        self.visit(node)
        return ExprInfo()

    @staticmethod
    def _combine(left: ExprInfo, right: ExprInfo) -> ExprInfo:
        if left.kind == "state" and right.kind == "state":
            return ExprInfo("state")
        if left.kind == "dict" or right.kind == "dict":
            keys: Dict[str, Access] = {}
            keys.update(left.keys)
            keys.update(right.keys)
            unknown = left.unknown or right.unknown
            # A dict on one branch and e.g. None on the other is still a
            # may-write of the dict branch's keys.
            return ExprInfo("dict", keys, unknown)
        return ExprInfo()

    def _eval_dict(self, node: ast.Dict) -> ExprInfo:
        keys: Dict[str, Access] = {}
        unknown = False
        for key, value in zip(node.keys, node.values):
            if key is None:  # ** expansion
                info = self._eval(value)
                if info.kind == "dict":
                    keys.update(info.keys)
                    unknown = unknown or info.unknown
                else:
                    unknown = True
                continue
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                keys[key.value] = Access(
                    key.value, self.file, key.lineno, "update key"
                )
                hazard = purity.mutable_value(value)
                if hazard:
                    self._purity(
                        "P04",
                        f"update value for {key.value!r}: {hazard}",
                        value,
                    )
            else:
                self.visit(key)
                unknown = True
            self.visit(value)
        return ExprInfo("dict", keys, unknown)

    # --- calls ---------------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        self._eval_call(node)

    def _eval_call(self, node: ast.Call) -> ExprInfo:
        func = node.func
        if isinstance(func, ast.Attribute):
            if self._is_state(func.value):
                return self._state_method(node, func.attr)
            base = func.value.id if isinstance(func.value, ast.Name) else None
            if (
                base is not None
                and base in self.dicts
                and base not in self.shadow
            ):
                return self._dict_method(base, func.attr, node)
            if base is not None and not self._is_local(base):
                base_value = sources.resolve_name(self.fn, base)
                if (
                    isinstance(base_value, (list, dict, set, bytearray))
                    and func.attr in purity.MUTATOR_METHODS
                ):
                    self._purity(
                        "P03",
                        f"mutates module-global {base!r} via .{func.attr}()",
                        node,
                    )
                    self._visit_args(node)
                    return ExprInfo()
            target, dotted = self._resolve(func)
            if target is not UNRESOLVED:
                reason = purity.banned_call(target, dotted)
                if reason:
                    self._purity("P01", reason, node)
                    self._visit_args(node)
                    return ExprInfo()
                if callable(target):
                    return self._call_function(node, target, dotted)
            self._visit_args(node, unresolved=func)
            return ExprInfo()
        if isinstance(func, ast.Name):
            name = func.id
            if self._is_local(name):
                self._visit_args(node, unresolved=func)
                return ExprInfo()
            target = sources.resolve_name(self.fn, name)
            if target is UNRESOLVED:
                self._visit_args(node, unresolved=func)
                return ExprInfo()
            reason = purity.banned_call(target, name)
            if reason:
                self._purity("P01", reason, node)
                self._visit_args(node)
                return ExprInfo()
            if target is getattr(builtins, name, None):
                return self._builtin_call(node, name)
            if callable(target):
                return self._call_function(node, target, name)
            self._visit_args(node, unresolved=func)
            return ExprInfo()
        # Computed callee, e.g. a call on a call's result.
        self.visit(func)
        self._visit_args(node, unresolved=func)
        return ExprInfo()

    def _state_method(self, node: ast.Call, attr: str) -> ExprInfo:
        if attr in ("set", "set_many"):
            for arg in node.args:
                self._eval(arg)
            for kw in node.keywords:
                if kw.arg is not None:
                    hazard = purity.mutable_value(kw.value)
                    if hazard:
                        self._purity(
                            "P04",
                            f"state.set({kw.arg}=...): {hazard}",
                            kw.value,
                        )
                self.visit(kw.value)
            return ExprInfo("state")
        if attr == "get":
            if (
                node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                self._read(node.args[0].value, node, "state.get")
            else:
                self._unresolved(node, "state.get with a dynamic name")
            for arg in node.args[1:]:
                self.visit(arg)
            return ExprInfo()
        if attr == "project":
            names = (
                self._constant_strings(node.args[0]) if node.args else None
            )
            if names is None:
                self._unresolved(node, "state.project with dynamic names")
            else:
                for name in sorted(names):
                    self._read(name, node, "state.project")
            return ExprInfo()
        if attr in STATE_WHOLE:
            self._whole(node, f"state.{attr}() touches every variable")
            self._visit_args(node)
            return ExprInfo()
        if attr in STATE_NEUTRAL:
            self._visit_args(node)
            return ExprInfo()
        self._unresolved(node, f"unrecognized state method .{attr}()")
        self._visit_args(node)
        return ExprInfo()

    def _dict_method(self, name: str, attr: str, node: ast.Call) -> ExprInfo:
        keys, unknown = self.dicts[name]
        if attr == "update":
            for arg in node.args:
                info = self._eval(arg)
                if info.kind == "dict":
                    keys.update(info.keys)
                    unknown = unknown or info.unknown
                else:
                    unknown = True
            for kw in node.keywords:
                if kw.arg is not None:
                    keys[kw.arg] = Access(
                        kw.arg, self.file, node.lineno, "dict.update key"
                    )
                    hazard = purity.mutable_value(kw.value)
                    if hazard:
                        self._purity(
                            "P04",
                            f"update value for {kw.arg!r}: {hazard}",
                            kw.value,
                        )
                    self.visit(kw.value)
                else:
                    info = self._eval(kw.value)
                    if info.kind == "dict":
                        keys.update(info.keys)
                        unknown = unknown or info.unknown
                    else:
                        unknown = True
            self.dicts[name] = (keys, unknown)
            return ExprInfo()
        if attr == "copy":
            return ExprInfo("dict", dict(keys), unknown)
        if attr in ("pop", "popitem", "clear", "setdefault"):
            # Local-dict mutation we do not model: may-write stays sound
            # for pop/clear (over-approximate), setdefault adds a key.
            if attr == "setdefault" and node.args:
                first = node.args[0]
                if isinstance(first, ast.Constant) and isinstance(
                    first.value, str
                ):
                    keys[first.value] = Access(
                        first.value, self.file, node.lineno, "setdefault"
                    )
                else:
                    unknown = True
                self.dicts[name] = (keys, unknown)
            self._visit_args(node)
            return ExprInfo()
        self._visit_args(node)
        return ExprInfo()

    def _builtin_call(self, node: ast.Call, name: str) -> ExprInfo:
        if name in purity.ORDER_INSENSITIVE:
            for arg in node.args:
                if isinstance(arg, (ast.GeneratorExp, ast.SetComp, ast.ListComp)):
                    self._exempt.add(id(arg))
        if name == "dict":
            keys: Dict[str, Access] = {}
            unknown = False
            for arg in node.args:
                if self._is_state(arg):
                    self._whole(arg, "dict(state) copies every variable")
                    unknown = True
                    continue
                info = self._eval(arg)
                if info.kind == "dict":
                    keys.update(info.keys)
                    unknown = unknown or info.unknown
                else:
                    unknown = True
            for kw in node.keywords:
                if kw.arg is not None:
                    keys[kw.arg] = Access(
                        kw.arg, self.file, node.lineno, "dict() key"
                    )
                    self.visit(kw.value)
                else:
                    info = self._eval(kw.value)
                    if info.kind == "dict":
                        keys.update(info.keys)
                        unknown = unknown or info.unknown
                    else:
                        unknown = True
            return ExprInfo("dict", keys, unknown)
        if name in ("list", "tuple") and node.args and self._unordered_iter(
            node.args[0]
        ):
            self._purity(
                "P02",
                f"{name}() over an unordered set: the element order is "
                "not deterministic across processes; use sorted()",
                node,
            )
        if name in METADATA_BUILTINS:
            for arg in node.args:
                if not self._is_state(arg):  # state arg: names only
                    self.visit(arg)
            for kw in node.keywords:
                self.visit(kw.value)
            return ExprInfo()
        # Any other builtin consuming the state sees every value.
        for arg in node.args:
            if self._is_state(arg):
                self._whole(arg, f"state passed to builtin {name}()")
            else:
                self.visit(arg)
        for kw in node.keywords:
            self.visit(kw.value)
        return ExprInfo()

    def _call_function(self, node: ast.Call, target: Any, dotted: str) -> ExprInfo:
        code = getattr(target, "__code__", None)
        if code is None:
            # A C-implemented callable (or class): a state argument is
            # opaque, so treat it as a whole-state read.
            for arg in node.args:
                if self._is_state(arg):
                    self._whole(arg, f"state passed to {dotted or 'callable'}")
                else:
                    self.visit(arg)
            for kw in node.keywords:
                if self._is_state(kw.value):
                    self._whole(
                        kw.value, f"state passed to {dotted or 'callable'}"
                    )
                else:
                    self.visit(kw.value)
            return ExprInfo()
        module = getattr(target, "__module__", "") or ""
        params = list(code.co_varnames[: code.co_argcount])
        state_params: Set[str] = set()
        for index, arg in enumerate(node.args):
            if isinstance(arg, ast.Starred):
                self.visit(arg.value)
                continue
            if self._is_state(arg):
                if index < len(params):
                    state_params.add(params[index])
                else:
                    self._unresolved(
                        arg, f"state passed through *args of {dotted}"
                    )
            else:
                self._eval(arg)
        for kw in node.keywords:
            if kw.arg is not None and self._is_state(kw.value):
                if kw.arg in params:
                    state_params.add(kw.arg)
                else:
                    self._unresolved(
                        kw.value, f"state passed as **kwargs to {dotted}"
                    )
            else:
                self.visit(kw.value)
        root = module.split(".", 1)[0]
        if root in _STDLIB:
            if state_params:
                self._unresolved(
                    node, f"state passed to stdlib callable {dotted}"
                )
            return ExprInfo()
        callee = self.analyzer._analyze(
            target, frozenset(state_params), self.depth + 1
        )
        self._merge(callee)
        if callee.writes_unknown:
            return ExprInfo("dict", dict(callee.writes), True)
        if callee.writes:
            return ExprInfo("dict", dict(callee.writes), False)
        if callee.returns_other:
            return ExprInfo()
        return ExprInfo("dict", {}, False)

    def _visit_args(
        self, node: ast.Call, unresolved: Optional[ast.AST] = None
    ) -> None:
        callee = ""
        if unresolved is not None:
            try:
                callee = ast.unparse(unresolved)
            except Exception:  # pragma: no cover - unparse is total in 3.9+
                callee = "<callee>"
        for arg in node.args:
            if self._is_state(arg):
                if unresolved is not None:
                    self._unresolved(
                        arg, f"state passed to unresolved callable {callee}"
                    )
                else:
                    self._whole(arg, "state passed to opaque callable")
            else:
                self.visit(arg)
        for kw in node.keywords:
            if self._is_state(kw.value):
                if unresolved is not None:
                    self._unresolved(
                        kw.value,
                        f"state passed to unresolved callable {callee}",
                    )
                else:
                    self._whole(kw.value, "state passed to opaque callable")
            else:
                self.visit(kw.value)

    # --- state access syntax --------------------------------------------------

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if self._is_state(node.value) and isinstance(node.ctx, ast.Load):
            index = node.slice
            if isinstance(index, ast.Constant) and isinstance(
                index.value, str
            ):
                self._read(index.value, node, "state subscript")
            else:
                self._unresolved(node, "state subscript with a dynamic name")
            return
        self.visit(node.value)
        self.visit(node.slice)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if self._is_state(node.value):
            attr = node.attr
            if attr in STATE_WHOLE:
                self._whole(node, f"state.{attr} touches every variable")
            elif attr in STATE_NEUTRAL or attr in (
                "set", "set_many", "get", "project",
            ):
                pass
            else:
                self._read(attr, node, "state attribute")
            return
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        self.visit(node.left)
        for op, comparator in zip(node.ops, node.comparators):
            if self._is_state(comparator) and isinstance(
                op, (ast.In, ast.NotIn)
            ):
                continue  # `name in state` is schema-membership metadata
            if self._is_state(comparator):
                self._whole(comparator, "whole-state comparison")
                continue
            self.visit(comparator)

    def visit_Name(self, node: ast.Name) -> None:
        # Reached only through generic traversal, i.e. a context no
        # handler claimed: a bare state reference there conservatively
        # counts as reading everything.
        if isinstance(node.ctx, ast.Load) and self._is_state(node):
            self._whole(node, "bare state reference")

    # --- statements -----------------------------------------------------------

    def visit_Return(self, node: ast.Return) -> None:
        if self._suppress_returns:
            if node.value is not None:
                self._eval(node.value)
            return
        if node.value is None:
            return
        self._record_return(self._eval(node.value), node.value)

    def _record_return(self, info: ExprInfo, node: ast.AST) -> None:
        if self._suppress_returns:
            return
        if info.kind == "dict":
            for key, access in info.keys.items():
                self.summary.writes.setdefault(key, access)
            if info.unknown:
                self.summary.writes_unknown.append(
                    Access(
                        "", self.file, getattr(node, "lineno", 0),
                        "returned update keys not statically resolvable",
                    )
                )
            return
        if isinstance(node, ast.Constant) and node.value is None:
            return
        self.summary.returns_other = True

    def visit_Assign(self, node: ast.Assign) -> None:
        info = self._eval(node.value)
        for target in node.targets:
            self._assign_target(target, node.value, info)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is None:
            return
        info = self._eval(node.value)
        self._assign_target(node.target, node.value, info)

    def _assign_target(
        self, target: ast.AST, value: ast.AST, info: ExprInfo
    ) -> None:
        if isinstance(target, ast.Name):
            name = target.id
            self.dicts.pop(name, None)
            self.set_locals.discard(name)
            if name in self.state_names and info.kind != "state":
                self.state_names.discard(name)
            if info.kind == "state":
                self.state_names.add(name)
            elif info.kind == "dict":
                self.dicts[name] = (dict(info.keys), info.unknown)
            elif purity.is_set_display(value):
                self.set_locals.add(name)
            return
        if isinstance(target, ast.Subscript):
            base = target.value
            if isinstance(base, ast.Name) and base.id in self.dicts:
                keys, unknown = self.dicts[base.id]
                index = target.slice
                if isinstance(index, ast.Constant) and isinstance(
                    index.value, str
                ):
                    keys[index.value] = Access(
                        index.value, self.file, target.lineno, "dict assign"
                    )
                    hazard = purity.mutable_value(value)
                    if hazard:
                        self._purity(
                            "P04",
                            f"update value for {index.value!r}: {hazard}",
                            value,
                        )
                else:
                    unknown = True
                    self.visit(index)
                self.dicts[base.id] = (keys, unknown)
                return
            if isinstance(base, ast.Name) and not self._is_local(base.id):
                if sources.resolve_name(self.fn, base.id) is not UNRESOLVED:
                    self._purity(
                        "P03",
                        f"assigns into module-global {base.id!r}",
                        target,
                    )
            self.visit(target.value)
            self.visit(target.slice)
            return
        if isinstance(target, ast.Attribute):
            root = target.value
            while isinstance(root, ast.Attribute):
                root = root.value
            if isinstance(root, ast.Name) and not self._is_local(root.id):
                if sources.resolve_name(self.fn, root.id) is not UNRESOLVED:
                    self._purity(
                        "P03",
                        f"assigns attribute on module-global {root.id!r}",
                        target,
                    )
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._assign_target(element, value, ExprInfo())

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self.visit(node.value)
        target = node.target
        root = target
        while isinstance(root, (ast.Attribute, ast.Subscript)):
            root = root.value
        if (
            isinstance(root, ast.Name)
            and root is not target
            and not self._is_local(root.id)
            and sources.resolve_name(self.fn, root.id) is not UNRESOLVED
        ):
            self._purity(
                "P03", f"augments module-global {root.id!r} in place", node
            )
            return
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            self.visit(target.value)

    def visit_Global(self, node: ast.Global) -> None:
        self._purity(
            "P03",
            f"declares global {', '.join(node.names)} for rebinding",
            node,
        )

    def visit_Nonlocal(self, node: ast.Nonlocal) -> None:
        self._purity(
            "P03",
            f"declares nonlocal {', '.join(node.names)} for rebinding",
            node,
        )

    def visit_For(self, node: ast.For) -> None:
        if self._is_state(node.iter):
            pass  # iterating a State yields variable names (metadata)
        else:
            if self._unordered_iter(node.iter):
                self._purity(
                    "P02",
                    "iteration over an unordered set: the visit order can "
                    "leak into the outcome; iterate sorted(...) instead",
                    node.iter,
                )
            self.visit(node.iter)
        for stmt in node.body:
            self.visit(stmt)
        for stmt in node.orelse:
            self.visit(stmt)

    # --- nested scopes --------------------------------------------------------

    def _shadow_args(self, args: ast.arguments) -> List[str]:
        names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
        if args.vararg:
            names.append(args.vararg.arg)
        if args.kwarg:
            names.append(args.kwarg.arg)
        added = [name for name in names if name not in self.shadow]
        self.shadow.update(added)
        return added

    def _unshadow(self, added: List[str]) -> None:
        self.shadow.difference_update(added)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        for default in node.args.defaults + [
            d for d in node.args.kw_defaults if d is not None
        ]:
            self.visit(default)
        added = self._shadow_args(node.args)
        self._suppress_returns += 1
        try:
            self.visit(node.body)
        finally:
            self._suppress_returns -= 1
            self._unshadow(added)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        added = self._shadow_args(node.args)
        self._suppress_returns += 1
        try:
            for stmt in node.body:
                self.visit(stmt)
        finally:
            self._suppress_returns -= 1
            self._unshadow(added)

    visit_AsyncFunctionDef = visit_FunctionDef

    def _visit_comprehension(self, node: ast.AST, elements: List[ast.AST]) -> None:
        added: List[str] = []
        for gen in node.generators:
            if self._is_state(gen.iter):
                pass  # names only
            else:
                if (
                    self._unordered_iter(gen.iter)
                    and id(node) not in self._exempt
                ):
                    self._purity(
                        "P02",
                        "comprehension over an unordered set feeds an "
                        "order-sensitive consumer; use sorted(...)",
                        gen.iter,
                    )
                self.visit(gen.iter)
            for name in _target_names(gen.target):
                if name not in self.shadow:
                    self.shadow.add(name)
                    added.append(name)
        for gen in node.generators:
            for condition in gen.ifs:
                self.visit(condition)
        for element in elements:
            self.visit(element)
        self._unshadow(added)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._visit_comprehension(node, [node.elt])

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._visit_comprehension(node, [node.elt])

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._visit_comprehension(node, [node.elt])

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._visit_comprehension(node, [node.key, node.value])


def _target_names(target: ast.AST) -> List[str]:
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        out: List[str] = []
        for element in target.elts:
            out.extend(_target_names(element))
        return out
    return []
