"""Lint findings: the rule catalog, finding records and the report.

The static spec analyzer (``python -m repro lint``) emits
:class:`Finding` records with stable fingerprints and ``file:line``
locations, collected into a :class:`LintReport` whose JSON form
(schema ``repro.lint/1``) doubles as the CI baseline format -- the same
gate pattern the campaign uses for impl-bug fingerprints.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

#: Report / baseline schema identifier.
SCHEMA = "repro.lint/1"

#: Baseline schemas this version can diff against.
COMPAT_SCHEMAS = (SCHEMA,)

ERROR = "error"
WARNING = "warning"


@dataclass(frozen=True)
class Rule:
    """One lint rule: identifier, severity and a one-line summary."""

    ident: str
    title: str
    severity: str
    summary: str


#: The rule catalog (documented in ``docs/linting.md``).
RULES: Dict[str, Rule] = {
    rule.ident: rule
    for rule in (
        # --- dependency declarations (the PR-5 memoization contract) ---
        Rule(
            "D01", "under-declared-read", ERROR,
            "an action/invariant reads a state variable outside its "
            "declared dependency closure (reads | writes | "
            "update_sources) -- memoized outcomes would be wrong",
        ),
        Rule(
            "D02", "over-declared-read", WARNING,
            "a declared read or update source is never actually read -- "
            "it widens memo keys and lowers the hit rate for nothing",
        ),
        Rule(
            "D03", "undeclared-write", ERROR,
            "an action may return an update for a variable outside its "
            "declared writes (validate_updates would raise at runtime)",
        ),
        Rule(
            "D04", "over-declared-write", WARNING,
            "a declared write is never present in any returned update "
            "dict -- it widens the interference matrix for nothing",
        ),
        Rule(
            "D05", "unresolved-analysis", WARNING,
            "the analyzer could not fully resolve the function's state "
            "accesses, so its declarations are only partially checked",
        ),
        Rule(
            "D06", "missing-reads-declaration", WARNING,
            "no reads declaration: the dependency closure is unknown and "
            "the incremental engine cannot memoize this function",
        ),
        Rule(
            "D07", "invalid-declaration", ERROR,
            "a declaration names a variable outside the spec schema, or "
            "declares update sources for a variable it does not write",
        ),
        # --- purity / determinism -------------------------------------
        Rule(
            "P01", "nondeterministic-call", ERROR,
            "a spec function calls a nondeterministic or environment-"
            "reading API (random/time/os/uuid/open/...)",
        ),
        Rule(
            "P02", "unordered-iteration", WARNING,
            "iteration over an unordered set where the visit order can "
            "leak into the outcome; iterate a sorted() copy instead",
        ),
        Rule(
            "P03", "global-mutation", ERROR,
            "a spec function mutates module-global state, breaking "
            "replay determinism and cross-process reproducibility",
        ),
        Rule(
            "P04", "mutable-state-value", ERROR,
            "a mutable (unhashable) value is stored into State, which "
            "would break fingerprinting and the visited set",
        ),
        # --- plugin contract ------------------------------------------
        Rule(
            "C01", "grain-resolution", ERROR,
            "a declared grain does not resolve through make_spec / "
            "make_mapping",
        ),
        Rule(
            "C02", "unknown-scenario-action", ERROR,
            "a scenario prefix applies an action name no grain defines",
        ),
        Rule(
            "C03", "invalid-fault-schedule", ERROR,
            "a fault schedule names an unknown action, mismatched "
            "parameters or an unknown role placeholder (or the required "
            "'none' schedule is missing)",
        ),
        Rule(
            "C04", "compared-variable-missing", ERROR,
            "a compared_variables entry is not in every grain's schema",
        ),
        Rule(
            "C05", "uncovered-source-module", ERROR,
            "the specs depend on a module outside spec_source_packages, "
            "so editing it would not invalidate the on-disk spec cache",
        ),
        Rule(
            "C06", "unknown-budget-action", ERROR,
            "a budget_limits key is not an action of any grain",
        ),
        Rule(
            "C07", "config-roundtrip", WARNING,
            "config_meta / config_from_meta do not round-trip",
        ),
    )
}


def _relpath(filename: str) -> str:
    """A machine-independent path for fingerprints and display.

    Paths under the repository (the parent of the ``repro`` package's
    ``src`` directory) are made relative to it; anything else is left
    untouched (fixture specs in test temp dirs, for example).
    """
    import repro

    package_dir = os.path.dirname(os.path.abspath(repro.__file__))
    root = os.path.dirname(os.path.dirname(package_dir))
    absolute = os.path.abspath(filename)
    if absolute.startswith(root + os.sep):
        return os.path.relpath(absolute, root)
    return filename


@dataclass(frozen=True)
class Finding:
    """One lint finding, locatable and stably fingerprintable.

    ``subject`` names the checked entity (``action:NodeCrash``,
    ``invariant:R-1``, ``plugin:zookeeper``); ``variable`` the state
    variable or item at issue (may be empty).  ``file`` is stored
    repo-relative so fingerprints agree across machines.
    """

    rule: str
    system: str
    subject: str
    message: str
    variable: str = ""
    file: str = ""
    line: int = 0

    @property
    def severity(self) -> str:
        return RULES[self.rule].severity

    @property
    def fingerprint(self) -> str:
        """Stable identity: rule + system + subject + variable + file.

        The line number is deliberately excluded so unrelated edits that
        shift code do not churn baselines (same policy as the campaign's
        impl-bug fingerprints).
        """
        payload = "|".join(
            (self.rule, self.system, self.subject, self.variable, self.file)
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:12]

    def location(self) -> str:
        if not self.file:
            return "<unknown>"
        return f"{self.file}:{self.line}" if self.line else self.file

    def format(self) -> str:
        rule = RULES[self.rule]
        variable = f" [{self.variable}]" if self.variable else ""
        return (
            f"{self.location()}: {self.severity}: "
            f"{self.rule} {rule.title}: {self.system}/{self.subject}"
            f"{variable}: {self.message}"
        )

    def to_json(self) -> Dict[str, Any]:
        return {
            "fingerprint": self.fingerprint,
            "rule": self.rule,
            "title": RULES[self.rule].title,
            "severity": self.severity,
            "system": self.system,
            "subject": self.subject,
            "variable": self.variable,
            "message": self.message,
            "file": self.file,
            "line": self.line,
        }


def make_finding(
    rule: str,
    system: str,
    subject: str,
    message: str,
    variable: str = "",
    file: str = "",
    line: int = 0,
) -> Finding:
    """Build a finding, normalizing the file path for fingerprinting."""
    return Finding(
        rule=rule,
        system=system,
        subject=subject,
        message=message,
        variable=variable,
        file=_relpath(file) if file else "",
        line=line,
    )


class LintReport:
    """Findings across the linted systems, JSON-serializable."""

    def __init__(self, systems: Sequence[str], findings: Iterable[Finding]):
        self.systems: Tuple[str, ...] = tuple(systems)
        self.findings: List[Finding] = list(findings)

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == ERROR]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == WARNING]

    def fingerprints(self) -> List[str]:
        return [f.fingerprint for f in self.findings]

    def to_json(self) -> Dict[str, Any]:
        return {
            "schema": SCHEMA,
            "systems": list(self.systems),
            "counts": {
                "findings": len(self.findings),
                "errors": len(self.errors),
                "warnings": len(self.warnings),
            },
            "findings": [f.to_json() for f in self.findings],
        }

    def summary(self) -> str:
        return (
            f"lint: {len(self.systems)} system(s) "
            f"({', '.join(self.systems)}): "
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s)"
        )


def new_fingerprints(
    report: LintReport, baseline: Dict[str, Any]
) -> List[str]:
    """Finding fingerprints present in ``report`` but not the baseline
    (a previously saved ``repro.lint/1`` JSON report), in report order."""
    known = {
        finding.get("fingerprint")
        for finding in baseline.get("findings", ())
    }
    fresh: List[str] = []
    for finding in report.findings:
        fingerprint = finding.fingerprint
        if fingerprint not in known and fingerprint not in fresh:
            fresh.append(fingerprint)
    return fresh


def baseline_error(baseline: Dict[str, Any]) -> Optional[str]:
    """Validate a loaded baseline document; an error message or None."""
    if not isinstance(baseline, dict):
        return "baseline is not a JSON object"
    if baseline.get("schema") not in COMPAT_SCHEMAS:
        return (
            f"unsupported baseline schema {baseline.get('schema')!r} "
            f"(expected one of {list(COMPAT_SCHEMAS)})"
        )
    return None
