"""Plugin-contract conformance checks (the C-series lint rules).

Statically validates the promises a :class:`repro.system.plugin.
SystemPlugin` makes to the campaign machinery: grains compose, scenario
prefixes script real actions, fault schedules resolve, compared
variables exist in every grain, the spec-cache source digest covers
every module the specs actually depend on, budgets name real actions
and configurations round-trip through report metadata.
"""

from __future__ import annotations

import ast
import inspect
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.findings import Finding, make_finding
from repro.analysis.sources import function_node
from repro.system.plugin import (
    ROLE_FOLLOWER,
    ROLE_LEADER,
    ROLE_LINK,
    ROLE_ORDERED_PAIR,
    ROLE_PAIR,
    Scenario,
    SystemPlugin,
)
from repro.tla.spec import Specification

_ROLES = frozenset(
    {ROLE_LEADER, ROLE_FOLLOWER, ROLE_PAIR, ROLE_LINK, ROLE_ORDERED_PAIR}
)

#: Packages the engine itself owns: edits to them are handled by the
#: engine-version component of the cache key, not the source digest.
ENGINE_PACKAGES = ("repro.tla", "repro.system")


def _plugin_location(plugin: SystemPlugin) -> Tuple[str, int]:
    try:
        file = inspect.getsourcefile(type(plugin)) or ""
        _, line = inspect.getsourcelines(type(plugin))
    except (OSError, TypeError):
        return "", 0
    return file, line


def build_specs(
    system: str, plugin: SystemPlugin, config: Any
) -> Tuple[Dict[str, Specification], List[Finding]]:
    """Compose every grain (C01); returns the ones that resolved."""
    file, line = _plugin_location(plugin)
    specs: Dict[str, Specification] = {}
    findings: List[Finding] = []
    for grain in plugin.grains:
        subject = f"grain:{grain}"
        try:
            specs[grain] = plugin.make_spec(grain, config=config)
        except Exception as exc:
            findings.append(
                make_finding(
                    "C01",
                    system,
                    subject,
                    f"make_spec failed: {exc!r}",
                    file=file,
                    line=line,
                )
            )
            continue
        try:
            plugin.make_mapping(grain)
        except Exception as exc:
            findings.append(
                make_finding(
                    "C01",
                    system,
                    subject,
                    f"make_mapping failed: {exc!r}",
                    file=file,
                    line=line,
                )
            )
    return specs, findings


class _ScriptedNames(ast.NodeVisitor):
    """Constant action names passed to ``.apply(...)`` / ``.can(...)``.

    Also follows the common indirection where a method assigns a tuple
    of constant action names to a local and loops over it::

        order = ("FollowerConnect", "LeaderHandleConnect", ...)
        for name in order:
            self.apply(name, ...)
    """

    def __init__(self) -> None:
        self.names: List[Tuple[str, int]] = []
        self._const_seqs: Dict[str, Tuple[str, ...]] = {}
        self._loop_vars: Dict[str, Tuple[str, ...]] = {}

    @staticmethod
    def _constant_strings(node: ast.AST) -> Optional[Tuple[str, ...]]:
        if isinstance(node, (ast.Tuple, ast.List)):
            items = []
            for element in node.elts:
                if not (
                    isinstance(element, ast.Constant)
                    and isinstance(element.value, str)
                ):
                    return None
                items.append(element.value)
            return tuple(items)
        return None

    def visit_Assign(self, node: ast.Assign) -> None:
        strings = self._constant_strings(node.value)
        if strings is not None:
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._const_seqs[target.id] = strings
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        strings = self._constant_strings(node.iter)
        if strings is None and isinstance(node.iter, ast.Name):
            strings = self._const_seqs.get(node.iter.id)
        if strings is not None and isinstance(node.target, ast.Name):
            self._loop_vars[node.target.id] = strings
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in ("apply", "can")
            and node.args
        ):
            arg = node.args[0]
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                self.names.append((arg.value, node.lineno))
            elif isinstance(arg, ast.Name) and arg.id in self._loop_vars:
                for name in self._loop_vars[arg.id]:
                    self.names.append((name, node.lineno))
        self.generic_visit(node)


def _scripted_names(fn: Any) -> Tuple[List[Tuple[str, int]], str]:
    """(action name, line) pairs scripted by a function, plus its file."""
    node = function_node(fn)
    if node is None:
        return [], ""
    visitor = _ScriptedNames()
    visitor.visit(node)
    code = getattr(fn, "__code__", None)
    return visitor.names, code.co_filename if code is not None else ""


def _scenario_classes(plugin: SystemPlugin) -> Set[type]:
    """Scenario subclasses reachable from the prefix builders' modules."""
    classes: Set[type] = set()
    for builder in plugin.scenario_prefixes.values():
        for value in getattr(builder, "__globals__", {}).values():
            if (
                isinstance(value, type)
                and issubclass(value, Scenario)
                and value is not Scenario
            ):
                classes.add(value)
    return classes


def check_scenarios(
    system: str, plugin: SystemPlugin, actions: Set[str]
) -> List[Finding]:
    """C02: every scripted action name must exist in some grain."""
    findings: List[Finding] = []
    scanned: List[Tuple[str, Any]] = [
        (f"scenario:{name}", builder)
        for name, builder in plugin.scenario_prefixes.items()
    ]
    for cls in sorted(_scenario_classes(plugin), key=lambda c: c.__name__):
        for name, member in sorted(vars(cls).items()):
            if callable(member) and hasattr(member, "__code__"):
                scanned.append((f"scenario-helper:{cls.__name__}.{name}", member))
    for subject, fn in scanned:
        names, file = _scripted_names(fn)
        for action, line in names:
            if action not in actions:
                findings.append(
                    make_finding(
                        "C02",
                        system,
                        subject,
                        f"applies action {action!r}, which no grain "
                        "defines",
                        variable=action,
                        file=file,
                        line=line,
                    )
                )
    return findings


def check_faults(
    system: str,
    plugin: SystemPlugin,
    specs: Dict[str, Specification],
) -> List[Finding]:
    """C03: fault schedules resolve against the composed grains."""
    file, line = _plugin_location(plugin)
    findings: List[Finding] = []

    def emit(subject: str, message: str, variable: str = "") -> None:
        findings.append(
            make_finding(
                "C03", system, subject, message,
                variable=variable, file=file, line=line,
            )
        )

    if "none" not in plugin.fault_names():
        emit(
            "faults",
            "no 'none' schedule: the campaign's fault axis requires a "
            "no-op baseline entry",
        )
    # Parameter signatures per action name, per grain that defines it.
    signatures: Dict[str, Dict[str, Set[str]]] = {}
    for grain, spec in specs.items():
        for action in spec.actions:
            signatures.setdefault(action.name, {})[grain] = set(action.params)
    for schedule in plugin.fault_schedules:
        subject = f"fault:{schedule.name}"
        for step_name, params in schedule.steps:
            if step_name not in signatures:
                emit(
                    subject,
                    f"step applies action {step_name!r}, which no grain "
                    "defines",
                    variable=step_name,
                )
                continue
            given = {key for key, _ in params}
            for grain, expected in sorted(signatures[step_name].items()):
                if given != expected:
                    emit(
                        subject,
                        f"step {step_name!r} binds parameters "
                        f"{sorted(given)} but grain {grain} declares "
                        f"{sorted(expected)}",
                        variable=step_name,
                    )
            for key, role in params:
                if role not in _ROLES:
                    emit(
                        subject,
                        f"step {step_name!r} parameter {key!r} uses "
                        f"unknown role placeholder {role!r} (expected "
                        f"one of {sorted(_ROLES)})",
                        variable=step_name,
                    )
    return findings


def check_compared_variables(
    system: str,
    plugin: SystemPlugin,
    specs: Dict[str, Specification],
) -> List[Finding]:
    """C04: compared variables must exist in every grain's schema."""
    file, line = _plugin_location(plugin)
    findings: List[Finding] = []
    for variable in plugin.compared_variables:
        missing = sorted(
            grain
            for grain, spec in specs.items()
            if variable not in spec.schema.names
        )
        if missing:
            findings.append(
                make_finding(
                    "C04",
                    system,
                    "compared_variables",
                    f"compared variable {variable!r} is missing from "
                    f"grain schema(s): {missing}",
                    variable=variable,
                    file=file,
                    line=line,
                )
            )
    return findings


def check_source_coverage(
    system: str, plugin: SystemPlugin, modules: Iterable[str]
) -> List[Finding]:
    """C05: every repro module the specs depend on must be covered by
    ``spec_source_packages`` (else edits would not invalidate the
    on-disk spec cache)."""
    file, line = _plugin_location(plugin)
    covered = tuple(plugin.spec_source_packages) + ENGINE_PACKAGES

    def is_covered(module: str) -> bool:
        return any(
            module == pkg or module.startswith(pkg + ".") for pkg in covered
        )

    findings: List[Finding] = []
    for module in sorted(set(modules)):
        if module.startswith("repro.") and not is_covered(module):
            findings.append(
                make_finding(
                    "C05",
                    system,
                    "spec_source_packages",
                    f"spec functions depend on module {module!r}, which "
                    "no spec_source_packages entry covers; editing it "
                    "would not invalidate the cached prefixes",
                    variable=module,
                    file=file,
                    line=line,
                )
            )
    return findings


def check_budgets(
    system: str, plugin: SystemPlugin, config: Any, actions: Set[str]
) -> List[Finding]:
    """C06: budget keys must be actions of some grain."""
    file, line = _plugin_location(plugin)
    findings: List[Finding] = []
    try:
        limits = plugin.budget_limits(config)
    except Exception as exc:
        return [
            make_finding(
                "C06",
                system,
                "budget_limits",
                f"budget_limits raised: {exc!r}",
                file=file,
                line=line,
            )
        ]
    for name in sorted(set(limits) - actions):
        findings.append(
            make_finding(
                "C06",
                system,
                "budget_limits",
                f"budgets action {name!r}, which no grain defines",
                variable=name,
                file=file,
                line=line,
            )
        )
    return findings


def check_config_roundtrip(
    system: str, plugin: SystemPlugin, config: Any
) -> List[Finding]:
    """C07: config_meta / config_from_meta must round-trip."""
    file, line = _plugin_location(plugin)

    def finding(message: str) -> Finding:
        return make_finding(
            "C07", system, "config", message, file=file, line=line
        )

    try:
        meta = plugin.config_meta(config)
    except Exception as exc:
        return [finding(f"config_meta raised: {exc!r}")]
    try:
        rebuilt = plugin.config_from_meta(
            {"system": system, "config": dict(meta)}
        )
    except NotImplementedError:
        return [
            finding(
                "config_from_meta is not implemented; campaign reports "
                "for this system cannot be re-verified or resumed"
            )
        ]
    except Exception as exc:
        return [finding(f"config_from_meta raised: {exc!r}")]
    try:
        again = plugin.config_meta(rebuilt)
    except Exception as exc:
        return [finding(f"config_meta raised on the rebuilt config: {exc!r}")]
    if again != meta:
        return [
            finding(
                "config_meta(config_from_meta(meta)) != meta; reports "
                "would silently verify against a different configuration"
            )
        ]
    return []


def check_plugin(
    system: str,
    plugin: SystemPlugin,
    config: Any,
    specs: Dict[str, Specification],
    modules: Iterable[str],
) -> List[Finding]:
    """All C-series findings for one plugin and its composed grains."""
    actions = {
        action.name for spec in specs.values() for action in spec.actions
    }
    findings: List[Finding] = []
    findings.extend(check_scenarios(system, plugin, actions))
    findings.extend(check_faults(system, plugin, specs))
    findings.extend(check_compared_variables(system, plugin, specs))
    findings.extend(check_source_coverage(system, plugin, modules))
    findings.extend(check_budgets(system, plugin, config, actions))
    findings.extend(check_config_roundtrip(system, plugin, config))
    return findings
