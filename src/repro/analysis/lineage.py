"""The bug-introduction lineage of Figure 8.

ZooKeeper's log-replication optimizations (starting from ZK-2678 in 2017)
introduced a family of data-loss/inconsistency bugs; several fixes opened
new triggering paths.  Figure 8 draws this as a graph; we encode it with
networkx and regenerate the figure's structure (roots, fixed markers,
introduced-by edges) programmatically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import networkx as nx


@dataclass(frozen=True)
class Issue:
    """One node of Figure 8."""

    ident: str
    title: str
    fixed: bool  # the paper's '*' marker: fix merged at publication time
    year: int


ISSUES: Dict[str, Issue] = {
    issue.ident: issue
    for issue in [
        Issue("ZK-2678", "Optimizations of data recovery (large databases regain quorum slowly)", True, 2017),
        Issue("ZK-2845", "Data inconsistency due to retaining database in leader election", True, 2017),
        Issue("ZK-3023", "Assertion failure: follower history not in sync after ACK of NEWLEADER", False, 2018),
        Issue("ZK-3642", "Data inconsistency when leader crashes right after sending SNAP sync", True, 2019),
        Issue("ZK-3911", "Data inconsistency caused by DIFF sync uncommitted log", True, 2020),
        Issue("ZK-4394", "Learner.syncWithLeader NullPointerException", False, 2021),
        Issue("ZK-4643", "Committed txns improperly truncated after crash between epoch/history updates", False, 2022),
        Issue("ZK-4646", "Transaction loss: ACK of NEWLEADER before logging to disk", False, 2022),
        Issue("ZK-4685", "Leader shutdown when ACK of PROPOSAL precedes ACK of NEWLEADER", False, 2023),
        Issue("ZK-4712", "Follower shutdown() does not stop SyncProcessor; data inconsistency", False, 2023),
    ]
}

#: (cause, effect): the optimization or fix of `cause` opened the
#: triggering path of `effect` (the arrows of Figure 8).
EDGES: Tuple[Tuple[str, str], ...] = (
    # The ZK-2678 optimizations seeded the whole family.
    ("ZK-2678", "ZK-2845"),
    ("ZK-2678", "ZK-3642"),
    ("ZK-2678", "ZK-4646"),
    ("ZK-2678", "ZK-4394"),
    ("ZK-2845", "ZK-3023"),
    ("ZK-2845", "ZK-4643"),
    ("ZK-3642", "ZK-3911"),
    # The merged ZK-3911 fix did not rule out the root cause and opened
    # new paths (§5.3).
    ("ZK-3911", "ZK-3023"),
    ("ZK-3911", "ZK-4685"),
    ("ZK-3911", "ZK-4712"),
)


def lineage_graph() -> nx.DiGraph:
    """Figure 8 as a directed acyclic graph."""
    graph = nx.DiGraph()
    for issue in ISSUES.values():
        graph.add_node(
            issue.ident, title=issue.title, fixed=issue.fixed, year=issue.year
        )
    graph.add_edges_from(EDGES)
    return graph


def roots(graph: nx.DiGraph = None) -> List[str]:
    graph = graph or lineage_graph()
    return sorted(n for n in graph.nodes if graph.in_degree(n) == 0)


def descendants_of_optimization(graph: nx.DiGraph = None) -> List[str]:
    """Every bug transitively introduced by the ZK-2678 optimizations."""
    graph = graph or lineage_graph()
    return sorted(nx.descendants(graph, "ZK-2678"))


def unfixed_at_publication(graph: nx.DiGraph = None) -> List[str]:
    graph = graph or lineage_graph()
    return sorted(n for n, d in graph.nodes(data=True) if not d["fixed"])


def generations(graph: nx.DiGraph = None) -> List[List[str]]:
    """Topological generations: the left-to-right layers of Figure 8."""
    graph = graph or lineage_graph()
    return [sorted(layer) for layer in nx.topological_generations(graph)]


def render_ascii(graph: nx.DiGraph = None) -> str:
    """A textual rendering of Figure 8."""
    graph = graph or lineage_graph()
    lines = ["Figure 8: bugs introduced in ZooKeeper's log replication", ""]
    for layer_index, layer in enumerate(generations(graph)):
        for ident in layer:
            issue = ISSUES[ident]
            marker = "*" if issue.fixed else " "
            succ = ", ".join(sorted(graph.successors(ident)))
            arrow = f" -> {succ}" if succ else ""
            lines.append(f"  [{layer_index}] {ident}{marker} ({issue.year}){arrow}")
    lines.append("")
    lines.append("  * = fix merged at publication time")
    return "\n".join(lines)
