"""repro: reproduction of "Multi-Grained Specifications for Distributed
System Model Checking and Verification" (EuroSys '25).

The package provides:

- :mod:`repro.tla` -- a pure-Python specification framework in the style of
  TLA+: immutable states, guarded actions, modules, and composition with
  interaction-preservation checking.
- :mod:`repro.checker` -- the explicit-state exploration engine playing
  the role of TLC: fingerprinted BFS/DFS/random-walk/portfolio
  strategies, optional multiprocess frontier sharding.
- :mod:`repro.zab` -- the Zab protocol specification and the improved
  protocol of the paper's Section 5.4.
- :mod:`repro.zookeeper` -- the multi-grained ZooKeeper system
  specification (baseline, atomicity-split, concurrency-aware) and the
  mixed-grained specifications mSpec-1..mSpec-4.
- :mod:`repro.impl` -- a deterministic ZooKeeper implementation simulator
  with the six paper bugs, used for conformance checking.
- :mod:`repro.remix` -- the Remix framework: spec registry, composer,
  deterministic-replay coordinator and conformance checker.
- :mod:`repro.analysis` -- effort metrics (Table 3) and the bug lineage
  graph (Figure 8).
"""

__version__ = "1.1.0"

from repro.tla import Action, Module, Specification, State
from repro.checker import BFSChecker, CheckResult, ExplorationEngine, explore

__all__ = [
    "Action",
    "Module",
    "Specification",
    "State",
    "BFSChecker",
    "CheckResult",
    "ExplorationEngine",
    "explore",
    "__version__",
]
