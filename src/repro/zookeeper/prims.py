"""Primitive state helpers shared by all granularities of the model.

Network operations (FIFO channels with partitions), vote comparison,
commit/delivery bookkeeping and the error-path ghost updates live here so
that the per-phase action modules stay close to the paper's TLA+ text.
"""

from __future__ import annotations

from typing import Dict, Iterable, NamedTuple, Optional, Tuple

from repro.tla.values import Rec, Txn, Zxid, last_zxid
from repro.zookeeper import constants as C


# --- network ---------------------------------------------------------------

def connected(state, i: int, j: int) -> bool:
    """True when no partition separates i and j and both are up."""
    if frozenset((i, j)) in state["disconnected"]:
        return False
    return state["state"][i] != C.DOWN and state["state"][j] != C.DOWN


def send(msgs, src: int, dst: int, *messages: Rec):
    """Append messages to the FIFO channel src -> dst."""
    row = msgs[src]
    channel = row[dst] + tuple(messages)
    row = row[:dst] + (channel,) + row[dst + 1 :]
    return msgs[:src] + (row,) + msgs[src + 1 :]


def send_if_connected(state, msgs, src: int, dst: int, *messages: Rec):
    """Send unless the destination is down or partitioned (drop silently,
    like a broken TCP connection)."""
    if not connected(state, src, dst):
        return msgs
    return send(msgs, src, dst, *messages)


def peek(state, src: int, dst: int) -> Optional[Rec]:
    """Head of the channel src -> dst, or None when empty."""
    channel = state["msgs"][src][dst]
    return channel[0] if channel else None


def pop(msgs, src: int, dst: int):
    """Remove the head of channel src -> dst."""
    row = msgs[src]
    row = row[:dst] + (row[dst][1:],) + row[dst + 1 :]
    return msgs[:src] + (row,) + msgs[src + 1 :]


def clear_channels(msgs, server: int):
    """Drop every message to or from ``server`` (TCP teardown on crash or
    connection loss)."""
    n = len(msgs)
    empty: Tuple = ()
    out = []
    for src in range(n):
        if src == server:
            out.append(tuple(empty for _ in range(n)))
        else:
            row = msgs[src]
            out.append(row[:server] + (empty,) + row[server + 1 :])
    return tuple(out)


def rotate_head(msgs, src: int, dst: int):
    """Move the head of channel src -> dst behind the rest (a delayed
    message overtaken by later traffic).  Channel must have >= 2
    messages for the rotation to mean anything."""
    row = msgs[src]
    channel = row[dst]
    channel = channel[1:] + (channel[0],)
    row = row[:dst] + (channel,) + row[dst + 1 :]
    return msgs[:src] + (row,) + msgs[src + 1 :]


def duplicate_head(msgs, src: int, dst: int):
    """Append a copy of the head of channel src -> dst at its tail (a
    retransmission across a connection re-establishment)."""
    row = msgs[src]
    channel = row[dst]
    channel = channel + (channel[0],)
    row = row[:dst] + (channel,) + row[dst + 1 :]
    return msgs[:src] + (row,) + msgs[src + 1 :]


def clear_pair(msgs, i: int, j: int):
    """Drop the channels between i and j in both directions."""
    out = list(msgs)
    row_i = list(out[i])
    row_i[j] = ()
    out[i] = tuple(row_i)
    row_j = list(out[j])
    row_j[i] = ()
    out[j] = tuple(row_j)
    return tuple(out)


# --- votes ------------------------------------------------------------------

def vote_of(state, i: int) -> Tuple[int, Zxid, int]:
    """The FLE credentials of a server: (currentEpoch, lastZxid, sid).

    ZooKeeper's ``totalOrderPredicate`` compares the peer epoch first, the
    zxid second and the server id last -- the epoch-first comparison is
    exactly what lets a ZK-4643 victim win an election with a stale
    history.
    """
    return (state["current_epoch"][i], last_zxid(state["history"][i]), i)


def max_vote_holder(state, members: Iterable[int]) -> int:
    return max(members, key=lambda i: vote_of(state, i))


# --- commit / delivery ghosts ------------------------------------------------

def deliver(g_delivered, server: int, txns: Iterable[Txn]):
    """Append txns to a server's delivery sequence, skipping duplicates
    (re-commit after recovery must not double-deliver)."""
    current = g_delivered[server]
    present = set(current)
    added = tuple(txn for txn in txns if txn not in present)
    if not added:
        return g_delivered
    return (
        g_delivered[:server]
        + (current + added,)
        + g_delivered[server + 1 :]
    )


def commit_globally(g_committed, txns: Iterable[Txn]):
    """Append txns to the global commit sequence, deduplicated."""
    present = set(g_committed)
    added = tuple(txn for txn in txns if txn not in present)
    return g_committed + added


def advance_commit(state, server: int, new_count: int) -> Dict:
    """Updates for committing the history prefix of ``server`` up to
    ``new_count`` entries: bumps last_committed, the delivery ghost and
    the global commit sequence."""
    history = state["history"][server]
    old = state["last_committed"][server]
    new_count = min(new_count, len(history))
    if new_count <= old:
        return {}
    newly = history[old:new_count]
    last_committed = (
        state["last_committed"][:server]
        + (new_count,)
        + state["last_committed"][server + 1 :]
    )
    return {
        "last_committed": last_committed,
        "g_delivered": deliver(state["g_delivered"], server, newly),
        "g_committed": commit_globally(state["g_committed"], newly),
    }


# --- error paths (I-11..I-14) -------------------------------------------------

def raise_error(state, code: str, server: int) -> Dict:
    """Record that code-level execution reached an error path (an
    exception or failed assertion in ZooKeeper); checked by the I-11..I-14
    invariant instances."""
    record = Rec(code=code, server=server, bug=C.ERROR_BUGS.get(code, ""))
    return {"errors": state["errors"] | frozenset((record,))}


def has_error(state, code: str) -> bool:
    return any(err.code == code for err in state["errors"])


# --- per-server tuple update -----------------------------------------------

def up(vec: Tuple, server: int, value) -> Tuple:
    """Functional update of a per-server tuple (TLA+ EXCEPT ![i])."""
    return vec[:server] + (value,) + vec[server + 1 :]


# --- history utilities -------------------------------------------------------

def zxids(history: Tuple[Txn, ...]) -> Tuple[Zxid, ...]:
    return tuple(txn.zxid for txn in history)


def index_of_zxid(history: Tuple[Txn, ...], zxid: Zxid) -> int:
    """Index of the txn with ``zxid`` in a history, or -1."""
    for k, txn in enumerate(history):
        if txn.zxid == zxid:
            return k
    return -1


def common_prefix_len(left: Tuple[Txn, ...], right: Tuple[Txn, ...]) -> int:
    n = 0
    for a, b in zip(left, right):
        if a != b:
            break
        n += 1
    return n


class QEntry(NamedTuple):
    """An entry of the SyncRequestProcessor queue: the request plus the
    acceptedEpoch of the leader session that enqueued it.  The ACK path of
    a session dies with its connection, so a stale entry (ZK-4712) is
    logged without acknowledging."""

    txn: Txn
    epoch: int


def is_learner(state, i: int, j: int) -> bool:
    """Is j a learner of leader i in i's current epoch (i.e. did i receive
    j's ACKEPOCH handshake)?  Messages from non-learners correspond to
    dead TCP connections and are discarded, never processed."""
    return any(entry[0] == j for entry in state["ackepoch_recv"][i])


def last_zxid_of(state, i: int) -> Zxid:
    """Zxid of the last txn in server i's history (<0,0> when empty)."""
    return last_zxid(state["history"][i])


def next_zxid(state, leader: int) -> Zxid:
    """The zxid of the leader's next proposal in its current epoch."""
    epoch = state["current_epoch"][leader]
    counters = [
        txn.zxid.counter
        for txn in state["history"][leader]
        if txn.zxid.epoch == epoch
    ]
    return Zxid(epoch, max(counters) + 1 if counters else 1)
