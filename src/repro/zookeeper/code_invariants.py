"""Code-level invariants I-11..I-14 (Table 2): eleven instances.

Each instance states that a specific error path in the ZooKeeper code --
an exception or a failed assertion -- is never reached.  The model raises
an ``errors`` record when an action walks such a path, so each instance is
simply "no error record with this code exists".

Instances are tagged with the granularity that can exercise them
(``requires``), which is what Remix's automatic invariant selection uses
when composing a mixed-grained specification (§3.5.1): an invariant about
thread interleavings is only meaningful when the concurrency-aware modules
are part of the composition.
"""

from __future__ import annotations

from typing import Dict, List

from repro.tla.spec import Invariant
from repro.zookeeper import constants as C


def _no_error(code: str):
    def predicate(config, state) -> bool:
        return all(err.code != code for err in state["errors"])

    return predicate


#: instance -> (family, human name, granularity requirement)
#: requirement: "any" (checkable at every granularity),
#: "sync_split" (needs the NEWLEADER atomicity split),
#: "concurrent" (needs the thread-level modules).
INSTANCE_TABLE = {
    # I-11 bad states
    C.ERR_ACK_UPTODATE_OUT_OF_SYNC: (
        "I-11",
        "Leader asserts follower in sync on ACK of UPTODATE (ZK-3023)",
        "concurrent",
    ),
    C.ERR_UNEXPECTED_NEWLEADER: (
        "I-11",
        "NEWLEADER received in an unexpected server state",
        "any",
    ),
    C.ERR_UNEXPECTED_UPTODATE: (
        "I-11",
        "UPTODATE received before NEWLEADER was processed",
        "any",
    ),
    C.ERR_UNEXPECTED_FOLLOWERINFO: (
        "I-11",
        "FOLLOWERINFO received by a non-leader",
        "any",
    ),
    # I-12 bad acknowledgments
    C.ERR_ACK_BEFORE_NEWLEADER_ACK: (
        "I-12",
        "Txn ACK arrives before the ACK of NEWLEADER (ZK-4685)",
        "concurrent",
    ),
    C.ERR_ACK_UNKNOWN_PROPOSAL: (
        "I-12",
        "ACK for a proposal the leader does not know",
        "any",
    ),
    # I-13 bad proposals
    C.ERR_PROPOSAL_GAP: (
        "I-13",
        "Out-of-order proposal at the follower",
        "any",
    ),
    C.ERR_PROPOSAL_STALE_EPOCH: (
        "I-13",
        "Proposal from a stale epoch",
        "any",
    ),
    # I-14 bad commits
    C.ERR_COMMIT_UNMATCHED_IN_SYNC: (
        "I-14",
        "COMMIT between NEWLEADER and UPTODATE matches no packet (ZK-4394)",
        "any",
    ),
    C.ERR_COMMIT_UNKNOWN_TXN: (
        "I-14",
        "COMMIT for a transaction not in the log",
        "any",
    ),
    C.ERR_COMMIT_OUT_OF_ORDER: (
        "I-14",
        "COMMIT skips a pending transaction",
        "any",
    ),
}


def code_invariants(granularities: Dict[str, str] = None) -> List[Invariant]:
    """The code-level invariant instances applicable to a composition.

    ``granularities`` maps module name -> granularity (as in Table 1);
    None means "select everything" (used by tests and by the invariant
    census of Table 2).
    """
    selected: List[Invariant] = []
    has_split = has_concurrent = True
    if granularities is not None:
        sync = granularities.get("Synchronization", "baseline")
        has_split = sync in ("fine_atomic", "fine_concurrent")
        has_concurrent = sync == "fine_concurrent"
    for code, (family, name, requires) in INSTANCE_TABLE.items():
        if requires == "concurrent" and not has_concurrent:
            continue
        if requires == "sync_split" and not has_split:
            continue
        selected.append(
            Invariant(
                family,
                name,
                _no_error(code),
                instance=code,
                source="code",
                reads=frozenset({"errors"}),
            )
        )
    return selected
