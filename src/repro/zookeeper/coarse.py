"""The coarse-grained ElectionAndDiscovery action (Figure 5b).

The eight actions of the baseline Election and Discovery modules collapse
into a single atomic action that elects a leader within a quorum and
completes discovery, while preserving exactly the interaction variables
the Synchronization module depends on:

- ``state``/``zab_state``/``my_leader`` role assignment,
- ``accepted_epoch`` (the new epoch) and the leader's ``current_epoch``,
- ``ackepoch_recv`` on the leader, which is what LeaderSyncFollower reads
  to choose the sync mode,
- the reset of the leader's per-epoch bookkeeping.

Internal FLE variables (``current_vote``, ``recv_votes``, ``vote_sent``,
``cepoch_recv``) are abstracted away, as in the paper's case study.

The guard encodes the FLE outcome: the elected node must hold the maximal
(currentEpoch, lastZxid, sid) credentials within the quorum -- the
epoch-first comparison is the interaction that lets a ZK-4643 victim win.
"""

from __future__ import annotations

from repro.tla.action import Action
from repro.tla.module import Module
from repro.tla.values import last_zxid
from repro.zookeeper import constants as C
from repro.zookeeper import prims as P
from repro.zookeeper.schema import EMPTY_SYNC
from repro.zookeeper.config import ZkConfig


def election_and_discovery(config: ZkConfig, state, i: int, quorum):
    members = set(quorum)
    if i not in members or not config.is_quorum(members):
        return None
    for j in sorted(members):
        if state["state"][j] != C.LOOKING:
            return None
    for j in sorted(members):
        for k in sorted(members):
            if j < k and frozenset((j, k)) in state["disconnected"]:
                return None
    my_vote = P.vote_of(state, i)
    if any(P.vote_of(state, j) > my_vote for j in members):
        return None

    new_epoch = max(state["accepted_epoch"][j] for j in members) + 1
    if new_epoch > config.max_epoch:
        return None

    n = config.n_servers
    new_state = tuple(
        C.LEADING if s == i else (C.FOLLOWING if s in members else state["state"][s])
        for s in range(n)
    )
    new_zab = tuple(
        C.SYNCHRONIZATION if s in members else state["zab_state"][s]
        for s in range(n)
    )
    new_accepted = tuple(
        new_epoch if s in members else state["accepted_epoch"][s]
        for s in range(n)
    )
    new_leader = tuple(
        i if s in members else state["my_leader"][s] for s in range(n)
    )
    # The leader finishes Discovery: it adopts the epoch and learns every
    # follower's (currentEpoch, lastZxid) from their ACKEPOCH.
    ackepoch = frozenset(
        (j, state["current_epoch"][j], last_zxid(state["history"][j]))
        for j in members
        if j != i
    )
    msgs = state["msgs"]
    for j in sorted(members):
        for k in sorted(members):
            if j != k:
                msgs = P.clear_pair(msgs, j, k) if j < k else msgs
    return {
        "state": new_state,
        "zab_state": new_zab,
        "accepted_epoch": new_accepted,
        "my_leader": new_leader,
        "current_epoch": P.up(state["current_epoch"], i, new_epoch),
        "ackepoch_recv": P.up(state["ackepoch_recv"], i, ackepoch),
        "synced_sent": P.up(state["synced_sent"], i, frozenset()),
        "newleader_acks": P.up(state["newleader_acks"], i, frozenset()),
        "uptodate_sent": P.up(state["uptodate_sent"], i, frozenset()),
        "proposal_acks": P.up(state["proposal_acks"], i, ()),
        "packets_sync": tuple(
            EMPTY_SYNC if s in members else state["packets_sync"][s]
            for s in range(n)
        ),
        "newleader_recv": tuple(
            False if s in members else state["newleader_recv"][s]
            for s in range(n)
        ),
        "msgs": msgs,
    }


def coarse_election_module(config: ZkConfig) -> Module:
    act = Action(
        "ElectionAndDiscovery",
        lambda cfg, s, i, Q: election_and_discovery(cfg, s, i, Q),
        params={
            "i": lambda cfg: cfg.servers,
            "Q": lambda cfg: cfg.quorums(),
        },
        reads=[
            "state",
            "disconnected",
            "current_epoch",
            "history",
            "accepted_epoch",
        ],
        writes=[
            "state",
            "zab_state",
            "accepted_epoch",
            "current_epoch",
            "my_leader",
            "ackepoch_recv",
            "synced_sent",
            "newleader_acks",
            "uptodate_sent",
            "proposal_acks",
            "packets_sync",
            "newleader_recv",
            "msgs",
        ],
        update_sources={
            "ackepoch_recv": ["current_epoch", "history"],
            "accepted_epoch": ["accepted_epoch"],
        },
    )
    return Module("ElectionAndDiscovery", [act])
