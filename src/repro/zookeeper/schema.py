"""The variable schema and initial state of the ZooKeeper system model.

Variable names follow the paper's TLA+ snippets (Figures 2-5) with ghost
variables prefixed ``g_`` and code-level error paths collected in
``errors``.  Every granularity of every module shares this schema -- that
is what makes the modules composable (Section 3.3): a coarse module simply
leaves the fine-only variables at their initial value.
"""

from __future__ import annotations

from repro.tla.state import Schema, State
from repro.tla.values import Rec, ZXID_ZERO
from repro.zookeeper import constants as C
from repro.zookeeper.config import ZkConfig

#: Variables in schema order.  Comments give the ZooKeeper counterpart.
VARIABLES = (
    # -- node roles and phases
    "state",             # QuorumPeer.ServerState per server
    "zab_state",         # the Zab phase per server (Figure 6)
    "accepted_epoch",    # acceptedEpoch file
    "current_epoch",     # currentEpoch file
    "history",           # the durable transaction log
    "last_committed",    # committed prefix length of history
    "my_leader",         # follower's current leader (-1 when none)
    # -- election (baseline FLE granularity)
    "current_vote",      # FLE vote Rec(epoch, zxid, sid)
    "recv_votes",        # votes received this round: {(voter, vote)}
    "vote_sent",         # has the current vote been broadcast?
    # -- discovery (leader side)
    "cepoch_recv",       # FOLLOWERINFO received: {(follower, acceptedEpoch)}
    "ackepoch_recv",     # ACKEPOCH received: {(follower, currentEpoch, lastZxid)}
    # -- synchronization
    "synced_sent",       # followers to whom sync packets + NEWLEADER were sent
    "newleader_acks",    # followers whose ACK of NEWLEADER was processed
    "uptodate_sent",     # followers to whom UPTODATE was sent
    "packets_sync",      # Rec(not_committed, committed, mode): Learner sync buffers
    "newleader_recv",    # follower processed NEWLEADER (epoch updated)
    # -- in-node thread queues (fine-grained concurrency only)
    "queued_requests",   # SyncRequestProcessor.queuedRequests (Figure 4)
    "committed_requests",# CommitProcessor.committedRequests
    # -- broadcast (leader side)
    "proposal_acks",     # outstanding proposals: ((zxid, {ackers}), ...)
    # -- network and faults
    "msgs",              # FIFO channels msgs[src][dst]
    "disconnected",      # partitioned pairs {{i,j}}
    "crash_budget",
    "partition_budget",
    "msg_fault_budget",  # message delays/duplications remaining
    "txn_count",         # client requests issued so far
    # -- code-level error paths (I-11..I-14)
    "errors",
    # -- ghost variables for the protocol invariants (I-1..I-10)
    "g_delivered",
    "g_proposed",
    "g_leaders",
    "g_established",
    "g_participants",
    "g_committed",
)

SCHEMA = Schema(VARIABLES)

#: Initial value of a follower's sync buffer.
EMPTY_SYNC = Rec(not_committed=(), committed=(), mode="")


def empty_vote(server: int) -> Rec:
    return Rec(epoch=0, zxid=ZXID_ZERO, sid=server)


def initial_state(config: ZkConfig) -> State:
    """All servers up, LOOKING, with empty histories (TLA+ Init)."""
    n = config.n_servers
    per = lambda value: tuple(value for _ in range(n))
    empty_row = tuple(() for _ in range(n))
    return State.make(
        SCHEMA,
        state=per(C.LOOKING),
        zab_state=per(C.ELECTION),
        accepted_epoch=per(0),
        current_epoch=per(0),
        history=per(()),
        last_committed=per(0),
        my_leader=per(-1),
        current_vote=tuple(empty_vote(i) for i in range(n)),
        recv_votes=per(frozenset()),
        vote_sent=per(False),
        cepoch_recv=per(frozenset()),
        ackepoch_recv=per(frozenset()),
        synced_sent=per(frozenset()),
        newleader_acks=per(frozenset()),
        uptodate_sent=per(frozenset()),
        packets_sync=per(EMPTY_SYNC),
        newleader_recv=per(False),
        queued_requests=per(()),
        committed_requests=per(()),
        proposal_acks=per(()),
        msgs=tuple(empty_row for _ in range(n)),
        disconnected=frozenset(),
        crash_budget=config.max_crashes,
        partition_budget=config.max_partitions,
        msg_fault_budget=config.max_msg_faults,
        txn_count=0,
        errors=frozenset(),
        g_delivered=per(()),
        g_proposed=frozenset(),
        g_leaders=(),
        g_established=(),
        g_participants=(),
        g_committed=(),
    )


def init(config: ZkConfig):
    return [initial_state(config)]


def state_constraint(config: ZkConfig, state: State) -> bool:
    """TLC CONSTRAINT: bound epochs (txns/crashes/partitions are bounded
    by their budget variables directly)."""
    return max(state["accepted_epoch"]) <= config.max_epoch


# Declared dependency variables (mirrors Invariant.reads): lets the
# engine memoize the constraint verdict per ``accepted_epoch`` projection.
state_constraint.reads = frozenset({"accepted_epoch"})
