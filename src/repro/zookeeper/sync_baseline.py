"""Baseline Synchronization module (the system specification of §2.1.2).

Models ZooKeeper's DIFF/TRUNC/SNAP synchronization with the NEWLEADER
handling as one *atomic* action (Figure 2b) -- the model-code gap the
fine-grained modules of :mod:`repro.zookeeper.sync_fine` close.

The module also carries the two leader-side actions shared by every
granularity: LeaderSyncFollower and LeaderProcessACKLD (establishment).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.tla.action import Action
from repro.tla.module import Module
from repro.tla.values import Rec, ZXID_ZERO, last_zxid
from repro.zookeeper import constants as C
from repro.zookeeper import prims as P
from repro.zookeeper.config import ZkConfig
from repro.zookeeper.schema import EMPTY_SYNC


def _pairs_distinct(cfg: ZkConfig):
    return [(i, j) for i in cfg.servers for j in cfg.servers if i != j]


def pairwise(fn):
    return lambda cfg, s, pair: fn(cfg, s, pair[0], pair[1])


def newleader_zxid_for(state, i: int, j: int):
    """The zxid the leader i sent in NEWLEADER to j (None if not sent)."""
    for follower, zxid in state["synced_sent"][i]:
        if follower == j:
            return zxid
    return None


def pending_newleader(state, i: int, j: int) -> Optional[Rec]:
    """The paper's PendingNEWLEADER(i, j): the head of the channel from
    leader j to follower i is a NEWLEADER message."""
    msg = P.peek(state, j, i)
    if msg is not None and msg.mtype == C.NEWLEADER:
        return msg
    return None


def is_my_follower_syncing(state, i: int, j: int) -> bool:
    return (
        state["state"][i] == C.FOLLOWING
        and state["my_leader"][i] == j
        and state["zab_state"][i] == C.SYNCHRONIZATION
    )


# --- leader side -------------------------------------------------------------

def leader_sync_follower(config: ZkConfig, state, i: int, j: int):
    """Choose the sync mode from the follower's ACKEPOCH credentials and
    send the sync payload followed by NEWLEADER."""
    if state["state"][i] != C.LEADING:
        return None
    if state["zab_state"][i] not in (C.SYNCHRONIZATION, C.BROADCAST):
        return None
    entry = next(
        (e for e in state["ackepoch_recv"][i] if e[0] == j), None
    )
    if entry is None or newleader_zxid_for(state, i, j) is not None:
        return None
    if not P.connected(state, i, j):
        return None

    history = state["history"][i]
    committed = state["last_committed"][i]
    zx = entry[2]
    zxids = P.zxids(history)

    if zx == last_zxid(history):
        mode, payload = C.DIFF, ()
    elif zx in zxids:
        idx = zxids.index(zx) + 1
        mode, payload = C.DIFF, history[idx:]
    elif zx == ZXID_ZERO:
        if history:
            mode, payload = C.SNAP, history
        else:
            mode, payload = C.DIFF, ()
    elif zx > last_zxid(history):
        mode, payload = C.TRUNC, ()
    else:
        mode, payload = C.SNAP, history

    if mode == C.SNAP:
        committed_zxids = P.zxids(history[:committed])
    elif mode == C.DIFF and payload:
        start = len(history) - len(payload)
        committed_zxids = P.zxids(history[start:committed])
    else:
        committed_zxids = ()

    sync_msg = Rec(
        mtype=mode,
        txns=payload,
        trunc_to=last_zxid(history),
        committed=committed_zxids,
    )
    nl_zxid = last_zxid(history)
    nl_msg = Rec(
        mtype=C.NEWLEADER, epoch=state["accepted_epoch"][i], zxid=nl_zxid
    )
    msgs = P.send(state["msgs"], i, j, sync_msg, nl_msg)
    return {
        "msgs": msgs,
        "synced_sent": P.up(
            state["synced_sent"],
            i,
            state["synced_sent"][i] | {(j, nl_zxid)},
        ),
    }


def _add_participant(g_participants, epoch: int, members):
    """Merge servers into the participant set of an epoch."""
    out = []
    found = False
    for e, existing in g_participants:
        if e == epoch:
            out.append((e, existing | frozenset(members)))
            found = True
        else:
            out.append((e, existing))
    if not found:
        out.append((epoch, frozenset(members)))
    return tuple(out)


def establish(config: ZkConfig, state, i: int, acks) -> Dict:
    """The leader becomes established (quorum of NEWLEADER ACKs):

    - commits its entire initial history,
    - records the establishment ghosts (I-1, I-8, I-10),
    - informs all synced followers of the newly committed txns and sends
      UPTODATE to the followers whose ACK was processed.

    The COMMIT-before-UPTODATE ordering on the wire is exactly the
    ZK-4394 trigger.
    """
    epoch = state["current_epoch"][i]
    history = state["history"][i]
    committed_before = state["g_committed"]
    old_committed = state["last_committed"][i]
    updates = P.advance_commit(state, i, len(history))
    newly = history[old_committed:]

    record = Rec(epoch=epoch, initial=history, committed=committed_before)
    updates["g_established"] = state["g_established"] + (record,)
    updates["g_leaders"] = state["g_leaders"] + ((epoch, i),)
    updates["g_participants"] = _add_participant(
        state["g_participants"], epoch, set(acks) | {i}
    )
    updates["zab_state"] = P.up(state["zab_state"], i, C.BROADCAST)

    msgs = state["msgs"]
    commit_msgs = tuple(Rec(mtype=C.COMMIT, zxid=txn.zxid) for txn in newly)
    for follower, _ in state["synced_sent"][i]:
        if commit_msgs:
            msgs = P.send_if_connected(state, msgs, i, follower, *commit_msgs)
    uptodate = Rec(mtype=C.UPTODATE, commit_count=len(history))
    for follower in acks:
        msgs = P.send_if_connected(state, msgs, i, follower, uptodate)
    updates["msgs"] = msgs
    updates["uptodate_sent"] = P.up(
        state["uptodate_sent"], i, frozenset(acks)
    )
    return updates


def leader_process_ackld(config: ZkConfig, state, i: int, j: int):
    """The leader processes a follower's ACK of NEWLEADER; on quorum it
    establishes the epoch; after establishment, late ACKs get UPTODATE."""
    msg = P.peek(state, j, i)
    if msg is None or msg.mtype != C.ACK or state["state"][i] != C.LEADING:
        return None
    if not P.is_learner(state, i, j):
        return None
    expected = newleader_zxid_for(state, i, j)
    if expected is None or msg.zxid != expected:
        return None
    if j in state["newleader_acks"][i]:
        return None
    acks = state["newleader_acks"][i] | {j}
    updates = {
        "msgs": P.pop(state["msgs"], j, i),
        "newleader_acks": P.up(state["newleader_acks"], i, acks),
    }
    if state["zab_state"][i] == C.SYNCHRONIZATION:
        if config.is_quorum(acks | {i}):
            est = establish(config, state, i, acks)
            # establish() computed msgs from the un-popped state; re-apply
            # the pop on its result to keep both updates.
            est["msgs"] = P.pop(est["msgs"], j, i)
            est["newleader_acks"] = updates["newleader_acks"]
            updates = est
    else:
        epoch = state["current_epoch"][i]
        uptodate = Rec(
            mtype=C.UPTODATE, commit_count=state["last_committed"][i]
        )
        msgs = P.send_if_connected(state, updates["msgs"], i, j, uptodate)
        updates["msgs"] = msgs
        updates["uptodate_sent"] = P.up(
            state["uptodate_sent"], i, state["uptodate_sent"][i] | {j}
        )
        updates["g_participants"] = _add_participant(
            state["g_participants"], epoch, {j}
        )
    return updates


# --- follower side ------------------------------------------------------------

def follower_process_sync_message(config: ZkConfig, state, i: int, j: int):
    """Apply the DIFF/TRUNC/SNAP packet that precedes NEWLEADER."""
    msg = P.peek(state, j, i)
    if msg is None or msg.mtype not in C.SYNC_MODES:
        return None
    if not is_my_follower_syncing(state, i, j) or state["newleader_recv"][i]:
        return None
    msgs = P.pop(state["msgs"], j, i)
    if msg.mtype == C.DIFF:
        packets = Rec(
            not_committed=msg.txns, committed=msg.committed, mode=C.DIFF
        )
        return {
            "msgs": msgs,
            "packets_sync": P.up(state["packets_sync"], i, packets),
        }
    if msg.mtype == C.TRUNC:
        history = state["history"][i]
        if msg.trunc_to == ZXID_ZERO:
            new_history = ()
        else:
            idx = P.index_of_zxid(history, msg.trunc_to)
            new_history = history[: idx + 1] if idx >= 0 else history
        packets = Rec(not_committed=(), committed=(), mode=C.TRUNC)
        return {
            "msgs": msgs,
            "history": P.up(state["history"], i, new_history),
            "last_committed": P.up(
                state["last_committed"],
                i,
                min(state["last_committed"][i], len(new_history)),
            ),
            "packets_sync": P.up(state["packets_sync"], i, packets),
        }
    # SNAP: the snapshot replaces the local data; the txns are staged and
    # persisted when NEWLEADER is handled (where the epoch/history order
    # of the SpecVariant applies).
    packets = Rec(
        not_committed=msg.txns, committed=msg.committed, mode=C.SNAP
    )
    return {
        "msgs": msgs,
        "history": P.up(state["history"], i, ()),
        "last_committed": P.up(state["last_committed"], i, 0),
        "packets_sync": P.up(state["packets_sync"], i, packets),
    }


def follower_process_proposal_in_sync(config: ZkConfig, state, i: int, j: int):
    """A PROPOSAL arriving during synchronization is buffered in
    packetsNotCommitted (Learner.syncWithLeader)."""
    msg = P.peek(state, j, i)
    if msg is None or msg.mtype != C.PROPOSAL:
        return None
    if not is_my_follower_syncing(state, i, j):
        return None
    packets = state["packets_sync"][i]
    packets = packets.replace(
        not_committed=packets.not_committed + (msg.txn,)
    )
    return {
        "msgs": P.pop(state["msgs"], j, i),
        "packets_sync": P.up(state["packets_sync"], i, packets),
    }


def follower_process_commit_in_sync(
    config: ZkConfig, state, i: int, j: int, concurrent: bool = False
):
    """A COMMIT arriving during synchronization.

    Before NEWLEADER it is buffered in packetsCommitted.  After NEWLEADER
    the v3.9.1 code matches it against packetsNotCommitted -- which was
    just cleared -- and throws a NullPointerException when it cannot:
    ZK-4394.  ``match_commit_in_sync`` models the fix (match against the
    already-logged history).

    At the ``concurrent`` granularity a matched packet is handed to the
    worker threads (queuedRequests + committedRequests), preserving the
    log order; at the baseline granularity it is applied atomically.
    """
    msg = P.peek(state, j, i)
    if msg is None or msg.mtype != C.COMMIT:
        return None
    if not is_my_follower_syncing(state, i, j):
        return None
    msgs = P.pop(state["msgs"], j, i)
    packets = state["packets_sync"][i]

    if not state["newleader_recv"][i]:
        packets = packets.replace(committed=packets.committed + (msg.zxid,))
        return {
            "msgs": msgs,
            "packets_sync": P.up(state["packets_sync"], i, packets),
        }

    not_committed = packets.not_committed
    if not_committed and not_committed[0].zxid == msg.zxid:
        # The matching proposal arrived after NEWLEADER: log and commit it.
        txn = not_committed[0]
        packets = packets.replace(not_committed=not_committed[1:])
        updates = {
            "msgs": msgs,
            "packets_sync": P.up(state["packets_sync"], i, packets),
        }
        if (
            concurrent
            and not config.variant.synchronous_sync_logging
            and not config.variant.direct_commit_in_sync
        ):
            entry = P.QEntry(txn, state["accepted_epoch"][i])
            updates["queued_requests"] = P.up(
                state["queued_requests"],
                i,
                state["queued_requests"][i] + (entry,),
            )
            updates["committed_requests"] = P.up(
                state["committed_requests"],
                i,
                state["committed_requests"][i] + (msg.zxid,),
            )
            return updates
        history = state["history"][i] + (txn,)
        updates["history"] = P.up(state["history"], i, history)
        if state["last_committed"][i] == len(history) - 1:
            staged = state.set(**updates)
            updates.update(P.advance_commit(staged, i, len(history)))
        return updates

    if config.variant.match_commit_in_sync:
        history = state["history"][i]
        idx = P.index_of_zxid(history, msg.zxid)
        if idx >= 0:
            if idx < state["last_committed"][i]:
                return {"msgs": msgs}  # duplicate commit
            if idx == state["last_committed"][i]:
                updates = {"msgs": msgs}
                updates.update(P.advance_commit(state, i, idx + 1))
                return updates
            packets = packets.replace(
                committed=packets.committed + (msg.zxid,)
            )
            return {
                "msgs": msgs,
                "packets_sync": P.up(state["packets_sync"], i, packets),
            }
        updates = {"msgs": msgs}
        updates.update(P.raise_error(state, C.ERR_COMMIT_UNKNOWN_TXN, i))
        return updates

    # v3.9.1: packetsNotCommitted cannot match -> NullPointerException.
    updates = {"msgs": msgs}
    updates.update(P.raise_error(state, C.ERR_COMMIT_UNMATCHED_IN_SYNC, i))
    return updates


def follower_process_newleader(config: ZkConfig, state, i: int, j: int):
    """The baseline *atomic* NEWLEADER handling (Figure 2b): update the
    epoch, log the staged txns and ACK, in one indivisible step."""
    msg = pending_newleader(state, i, j)
    if msg is None or not is_my_follower_syncing(state, i, j):
        return None
    if state["newleader_recv"][i]:
        return None
    msgs = P.pop(state["msgs"], j, i)
    if msg.epoch != state["accepted_epoch"][i]:
        return {
            "msgs": msgs,
            "state": P.up(state["state"], i, C.LOOKING),
            "zab_state": P.up(state["zab_state"], i, C.ELECTION),
            "my_leader": P.up(state["my_leader"], i, -1),
        }
    packets = state["packets_sync"][i]
    history = state["history"][i] + packets.not_committed
    msgs = P.send_if_connected(
        state, msgs, i, j, Rec(mtype=C.ACK, zxid=msg.zxid)
    )
    return {
        "msgs": msgs,
        "current_epoch": P.up(
            state["current_epoch"], i, state["accepted_epoch"][i]
        ),
        "history": P.up(state["history"], i, history),
        "packets_sync": P.up(
            state["packets_sync"], i, packets.replace(not_committed=())
        ),
        "newleader_recv": P.up(state["newleader_recv"], i, True),
    }


def follower_process_uptodate(config: ZkConfig, state, i: int, j: int):
    """The baseline UPTODATE handling: commit the synced prefix and start
    serving.  (The code-level ACK reply is a missing state transition in
    the baseline spec, §2.2.3; the fine-grained module adds it.)"""
    msg = P.peek(state, j, i)
    if msg is None or msg.mtype != C.UPTODATE:
        return None
    if not is_my_follower_syncing(state, i, j) or not state["newleader_recv"][i]:
        return None
    # Any proposals still buffered from the sync window are logged now
    # (Learner.syncWithLeader logs remaining packetsNotCommitted on
    # UPTODATE before starting to serve).
    staged = state["packets_sync"][i].not_committed
    history = state["history"][i] + staged
    updates = {
        "msgs": P.pop(state["msgs"], j, i),
        "history": P.up(state["history"], i, history),
        "zab_state": P.up(state["zab_state"], i, C.BROADCAST),
        "packets_sync": P.up(state["packets_sync"], i, EMPTY_SYNC),
    }
    working = state.set(**updates)
    updates.update(
        P.advance_commit(working, i, min(len(history), msg.commit_count))
    )
    return updates


# --- module assembly ----------------------------------------------------------

_LEADER_SYNC_ACTIONS = None


def leader_sync_actions():
    """The two leader-side actions shared by all sync granularities."""
    return [
        Action(
            "LeaderSyncFollower",
            pairwise(leader_sync_follower),
            params={"pair": _pairs_distinct},
            reads=[
                "state",
                "zab_state",
                "ackepoch_recv",
                "synced_sent",
                "disconnected",
                "history",
                "last_committed",
                "accepted_epoch",
            ],
            writes=["msgs", "synced_sent"],
            update_sources={"synced_sent": ["history"]},
        ),
        Action(
            "LeaderProcessACKLD",
            pairwise(leader_process_ackld),
            params={"pair": _pairs_distinct},
            reads=[
                "msgs",
                "state",
                "zab_state",
                "synced_sent",
                "ackepoch_recv",
                "newleader_acks",
                "history",
                "last_committed",
                "current_epoch",
                # The late-ACK UPTODATE reply is dropped when the pair is
                # partitioned.
                "disconnected",
            ],
            writes=[
                "msgs",
                "newleader_acks",
                "zab_state",
                "last_committed",
                "uptodate_sent",
                "g_delivered",
                "g_committed",
                "g_established",
                "g_leaders",
                "g_participants",
            ],
            update_sources={
                "last_committed": ["history"],
                "g_established": ["history", "g_committed", "current_epoch"],
            },
        ),
    ]


def follower_sync_shared_actions(concurrent: bool = False):
    """Follower-side actions shared by baseline and fine granularities.

    ``concurrent`` selects the thread-queue routing of matched in-sync
    commits (the fine-concurrent granularity)."""
    return [
        Action(
            "FollowerProcessSyncMessage",
            pairwise(follower_process_sync_message),
            params={"pair": _pairs_distinct},
            reads=[
                "msgs",
                "state",
                "zab_state",
                "my_leader",
                "newleader_recv",
                "history",
                "last_committed",
            ],
            writes=["msgs", "packets_sync", "history", "last_committed"],
        ),
        Action(
            "FollowerProcessPROPOSALInSync",
            pairwise(follower_process_proposal_in_sync),
            params={"pair": _pairs_distinct},
            reads=["msgs", "state", "zab_state", "my_leader", "packets_sync"],
            writes=["msgs", "packets_sync"],
        ),
        Action(
            "FollowerProcessCOMMITInSync",
            pairwise(
                lambda cfg, s, i, j: follower_process_commit_in_sync(
                    cfg, s, i, j, concurrent=concurrent
                )
            ),
            params={"pair": _pairs_distinct},
            reads=[
                "msgs",
                "state",
                "zab_state",
                "my_leader",
                "packets_sync",
                "newleader_recv",
                "history",
                "accepted_epoch",
                "last_committed",
            ],
            writes=[
                "msgs",
                "packets_sync",
                "history",
                "queued_requests",
                "committed_requests",
                "last_committed",
                "g_delivered",
                "g_committed",
                "errors",
            ],
        ),
    ]


def sync_baseline_module(config: ZkConfig) -> Module:
    actions = leader_sync_actions() + follower_sync_shared_actions() + [
        Action(
            "FollowerProcessNEWLEADER",
            pairwise(follower_process_newleader),
            params={"pair": _pairs_distinct},
            reads=[
                "msgs",
                "state",
                "zab_state",
                "my_leader",
                "newleader_recv",
                "accepted_epoch",
                "packets_sync",
                "history",
                # The ACK reply is dropped when the pair is partitioned.
                "disconnected",
            ],
            writes=[
                "msgs",
                "current_epoch",
                "history",
                "packets_sync",
                "newleader_recv",
                "state",
                "zab_state",
                "my_leader",
            ],
            update_sources={
                "current_epoch": ["accepted_epoch"],
                "history": ["packets_sync"],
            },
        ),
        Action(
            "FollowerProcessUPTODATE",
            pairwise(follower_process_uptodate),
            params={"pair": _pairs_distinct},
            reads=[
                "msgs",
                "state",
                "zab_state",
                "my_leader",
                "newleader_recv",
                "history",
                "packets_sync",
                "last_committed",
            ],
            writes=[
                "msgs",
                "zab_state",
                "packets_sync",
                "history",
                "last_committed",
                "g_delivered",
                "g_committed",
            ],
        ),
    ]
    return Module("Synchronization", actions)
