"""Broadcast modules: baseline (atomic follower logging) and fine-grained
(concurrent logging/committing through the thread queues).

The leader-side actions are shared: LeaderProcessRequest proposes and
LeaderProcessACK collects acknowledgments.  LeaderProcessACK is also where
the I-12 bad-acknowledgment instances live: an ACK that arrives before the
follower's NEWLEADER ACK is unrecognized by the v3.9.1 leader (ZK-4685).
"""

from __future__ import annotations

from repro.tla.action import Action
from repro.tla.module import Module
from repro.tla.values import Rec, Txn
from repro.zookeeper import constants as C
from repro.zookeeper import prims as P
from repro.zookeeper.config import ZkConfig
from repro.zookeeper.sync_baseline import (
    _pairs_distinct,
    newleader_zxid_for,
    pairwise,
)


# --- leader side ---------------------------------------------------------------

def leader_process_request(config: ZkConfig, state, i: int):
    """A client request: the leader logs a new proposal and broadcasts it
    to every follower it has started syncing (the forwarding set)."""
    if state["state"][i] != C.LEADING or state["zab_state"][i] != C.BROADCAST:
        return None
    if state["txn_count"] >= config.max_txns:
        return None
    zxid = P.next_zxid(state, i)
    txn = Txn(zxid, state["txn_count"] + 1)
    msgs = state["msgs"]
    for follower, _ in state["synced_sent"][i]:
        msgs = P.send_if_connected(
            state, msgs, i, follower, Rec(mtype=C.PROPOSAL, txn=txn)
        )
    return {
        "msgs": msgs,
        "history": P.up(state["history"], i, state["history"][i] + (txn,)),
        "txn_count": state["txn_count"] + 1,
        "g_proposed": state["g_proposed"] | frozenset((txn,)),
        "proposal_acks": P.up(
            state["proposal_acks"],
            i,
            state["proposal_acks"][i] + ((zxid, frozenset((i,))),),
        ),
    }


def leader_process_ack(config: ZkConfig, state, i: int, j: int):
    """Leader.processAck for proposal ACKs.

    v3.9.1 cannot recognize a txn ACK from a follower that has not yet
    ACKed NEWLEADER (the LearnerHandler is still waiting for it): the
    leader errors out and shuts the ensemble down -- ZK-4685 (I-12)."""
    msg = P.peek(state, j, i)
    if msg is None or msg.mtype != C.ACK or state["state"][i] != C.LEADING:
        return None
    if not P.is_learner(state, i, j):
        return None
    expected_nl = newleader_zxid_for(state, i, j)
    if expected_nl is not None and msg.zxid == expected_nl:
        return None  # NEWLEADER ACK: handled by LeaderProcessACKLD
    msgs = P.pop(state["msgs"], j, i)

    if j not in state["newleader_acks"][i]:
        updates = {"msgs": msgs}
        updates.update(
            P.raise_error(state, C.ERR_ACK_BEFORE_NEWLEADER_ACK, i)
        )
        return updates

    history = state["history"][i]
    committed = state["last_committed"][i]
    idx = P.index_of_zxid(history, msg.zxid)
    if idx >= 0 and idx < committed:
        return {"msgs": msgs}  # already committed: ignore (code logs a warning)

    outstanding = state["proposal_acks"][i]
    entry_index = next(
        (k for k, (zxid, _) in enumerate(outstanding) if zxid == msg.zxid),
        None,
    )
    if entry_index is None:
        updates = {"msgs": msgs}
        updates.update(P.raise_error(state, C.ERR_ACK_UNKNOWN_PROPOSAL, i))
        return updates

    zxid, ackers = outstanding[entry_index]
    ackers = ackers | {j}
    updates = {"msgs": msgs}
    if config.is_quorum(ackers) and idx == committed:
        # Commit: advance, inform every forwarding follower.
        outstanding = (
            outstanding[:entry_index] + outstanding[entry_index + 1 :]
        )
        updates["proposal_acks"] = P.up(
            state["proposal_acks"], i, outstanding
        )
        updates.update(P.advance_commit(state, i, committed + 1))
        commit = Rec(mtype=C.COMMIT, zxid=zxid)
        out = updates["msgs"]
        for follower, _ in state["synced_sent"][i]:
            out = P.send_if_connected(state, out, i, follower, commit)
        updates["msgs"] = out
    else:
        updates["proposal_acks"] = P.up(
            state["proposal_acks"],
            i,
            outstanding[:entry_index]
            + ((zxid, ackers),)
            + outstanding[entry_index + 1 :],
        )
    return updates


def _leader_actions():
    return [
        Action(
            "LeaderProcessRequest",
            leader_process_request,
            params={"i": lambda cfg: cfg.servers},
            reads=[
                "state",
                "zab_state",
                "txn_count",
                "current_epoch",
                "history",
                "synced_sent",
                "disconnected",
            ],
            writes=["msgs", "history", "txn_count", "g_proposed", "proposal_acks"],
            update_sources={"history": ["current_epoch", "txn_count"]},
        ),
        Action(
            "LeaderProcessACK",
            pairwise(leader_process_ack),
            params={"pair": _pairs_distinct},
            reads=[
                "msgs",
                "state",
                "synced_sent",
                "ackepoch_recv",
                "newleader_acks",
                "history",
                "last_committed",
                "proposal_acks",
                "disconnected",
            ],
            writes=[
                "msgs",
                "proposal_acks",
                "last_committed",
                "g_delivered",
                "g_committed",
                "errors",
            ],
        ),
    ]


# --- follower side: baseline (atomic log + ack) ---------------------------------

def _proposal_gap(state, i: int, txn: Txn, tail) -> bool:
    """An in-epoch proposal must directly follow the previous one."""
    last = tail[-1].zxid if tail else None
    if last is None or last.epoch != txn.zxid.epoch:
        return False
    return txn.zxid.counter != last.counter + 1


def follower_process_proposal(config: ZkConfig, state, i: int, j: int):
    """Baseline: the follower logs the proposal and ACKs atomically."""
    msg = P.peek(state, j, i)
    if msg is None or msg.mtype != C.PROPOSAL:
        return None
    if (
        state["state"][i] != C.FOLLOWING
        or state["my_leader"][i] != j
        or state["zab_state"][i] != C.BROADCAST
    ):
        return None
    txn = msg.txn
    msgs = P.pop(state["msgs"], j, i)
    if _proposal_gap(state, i, txn, state["history"][i]):
        updates = {"msgs": msgs}
        updates.update(P.raise_error(state, C.ERR_PROPOSAL_GAP, i))
        return updates
    msgs = P.send_if_connected(
        state, msgs, i, j, Rec(mtype=C.ACK, zxid=txn.zxid)
    )
    return {
        "msgs": msgs,
        "history": P.up(state["history"], i, state["history"][i] + (txn,)),
    }


def follower_process_commit(config: ZkConfig, state, i: int, j: int):
    """Baseline: apply a COMMIT directly against the log."""
    msg = P.peek(state, j, i)
    if msg is None or msg.mtype != C.COMMIT:
        return None
    if (
        state["state"][i] != C.FOLLOWING
        or state["my_leader"][i] != j
        or state["zab_state"][i] != C.BROADCAST
    ):
        return None
    msgs = P.pop(state["msgs"], j, i)
    history = state["history"][i]
    committed = state["last_committed"][i]
    idx = P.index_of_zxid(history, msg.zxid)
    updates = {"msgs": msgs}
    if idx >= 0 and idx < committed:
        return updates  # duplicate
    if idx == committed:
        updates.update(P.advance_commit(state, i, committed + 1))
        return updates
    if idx > committed:
        updates.update(P.raise_error(state, C.ERR_COMMIT_OUT_OF_ORDER, i))
        return updates
    updates.update(P.raise_error(state, C.ERR_COMMIT_UNKNOWN_TXN, i))
    return updates


def broadcast_baseline_module(config: ZkConfig) -> Module:
    actions = _leader_actions() + [
        Action(
            "FollowerProcessPROPOSAL",
            pairwise(follower_process_proposal),
            params={"pair": _pairs_distinct},
            reads=[
                "msgs",
                "state",
                "zab_state",
                "my_leader",
                "history",
                "disconnected",
            ],
            writes=["msgs", "history", "errors"],
        ),
        Action(
            "FollowerProcessCOMMIT",
            pairwise(follower_process_commit),
            params={"pair": _pairs_distinct},
            reads=[
                "msgs",
                "state",
                "zab_state",
                "my_leader",
                "history",
                "last_committed",
            ],
            writes=[
                "msgs",
                "last_committed",
                "g_delivered",
                "g_committed",
                "errors",
            ],
        ),
    ]
    return Module("Broadcast", actions)


# --- follower side: fine-grained (queues to the worker threads) ----------------

def follower_process_proposal_queue(config: ZkConfig, state, i: int, j: int):
    """Fine-grained: the QuorumPeer thread only queues the request; the
    SyncRequestProcessor logs and ACKs it later (Figure 4)."""
    msg = P.peek(state, j, i)
    if msg is None or msg.mtype != C.PROPOSAL:
        return None
    if (
        state["state"][i] != C.FOLLOWING
        or state["my_leader"][i] != j
        or state["zab_state"][i] != C.BROADCAST
    ):
        return None
    txn = msg.txn
    msgs = P.pop(state["msgs"], j, i)
    tail = state["history"][i] + tuple(
        entry.txn for entry in state["queued_requests"][i]
    )
    if _proposal_gap(state, i, txn, tail):
        updates = {"msgs": msgs}
        updates.update(P.raise_error(state, C.ERR_PROPOSAL_GAP, i))
        return updates
    entry = P.QEntry(txn, state["accepted_epoch"][i])
    return {
        "msgs": msgs,
        "queued_requests": P.up(
            state["queued_requests"], i, state["queued_requests"][i] + (entry,)
        ),
    }


def follower_process_commit_queue(config: ZkConfig, state, i: int, j: int):
    """Fine-grained: COMMITs are queued to the CommitProcessor."""
    msg = P.peek(state, j, i)
    if msg is None or msg.mtype != C.COMMIT:
        return None
    if (
        state["state"][i] != C.FOLLOWING
        or state["my_leader"][i] != j
        or state["zab_state"][i] != C.BROADCAST
    ):
        return None
    return {
        "msgs": P.pop(state["msgs"], j, i),
        "committed_requests": P.up(
            state["committed_requests"],
            i,
            state["committed_requests"][i] + (msg.zxid,),
        ),
    }


def broadcast_fine_module(config: ZkConfig) -> Module:
    """Fine-grained Broadcast: requires the fine-concurrent Synchronization
    module in the same composition (the SyncRequestProcessor and
    CommitProcessor actions that drain the queues live there -- they are
    the same threads serving both phases)."""
    actions = _leader_actions() + [
        Action(
            "FollowerProcessPROPOSAL",
            pairwise(follower_process_proposal_queue),
            params={"pair": _pairs_distinct},
            reads=[
                "msgs",
                "state",
                "zab_state",
                "my_leader",
                "history",
                "queued_requests",
            ],
            writes=["msgs", "queued_requests", "errors"],
            # The queued entry is tagged with the current sync session's
            # epoch (the QEntry session tag).
            update_sources={"queued_requests": ["accepted_epoch"]},
        ),
        Action(
            "FollowerProcessCOMMIT",
            pairwise(follower_process_commit_queue),
            params={"pair": _pairs_distinct},
            reads=["msgs", "state", "zab_state", "my_leader", "committed_requests"],
            writes=["msgs", "committed_requests"],
        ),
    ]
    return Module("Broadcast", actions)
