"""Baseline Discovery module -- four actions (Figure 5a, lower half).

FOLLOWERINFO / LEADERINFO / ACKEPOCH exchange: the leader collects the
followers' accepted epochs, proposes a new epoch, and gathers the
(currentEpoch, lastZxid) credentials the Synchronization module needs.
"""

from __future__ import annotations

from repro.tla.action import Action
from repro.tla.module import Module
from repro.tla.values import Rec
from repro.zookeeper import constants as C
from repro.zookeeper import prims as P
from repro.zookeeper.config import ZkConfig


def connect_and_send_followerinfo(config: ZkConfig, state, i: int, j: int):
    """A follower in DISCOVERY connects to its leader and sends
    FOLLOWERINFO(acceptedEpoch)."""
    if state["state"][i] != C.FOLLOWING or state["zab_state"][i] != C.DISCOVERY:
        return None
    if state["my_leader"][i] != j or not P.connected(state, i, j):
        return None
    if any(m.mtype == C.FOLLOWERINFO for m in state["msgs"][i][j]):
        return None
    if any(f == i for f, _ in state["cepoch_recv"][j]):
        return None
    msg = Rec(mtype=C.FOLLOWERINFO, epoch=state["accepted_epoch"][i])
    return {"msgs": P.send(state["msgs"], i, j, msg)}


def leader_process_followerinfo(config: ZkConfig, state, i: int, j: int):
    """The leader records a FOLLOWERINFO; with a quorum it proposes the
    new epoch via LEADERINFO (late joiners get LEADERINFO immediately)."""
    msg = P.peek(state, j, i)
    if msg is None or msg.mtype != C.FOLLOWERINFO:
        return None
    if state["state"][i] != C.LEADING:
        return None
    cepoch = state["cepoch_recv"][i] | {(j, msg.epoch)}
    msgs = P.pop(state["msgs"], j, i)
    updates = {"cepoch_recv": P.up(state["cepoch_recv"], i, cepoch)}

    was_quorum = config.is_quorum({f for f, _ in state["cepoch_recv"][i]} | {i})
    if state["zab_state"][i] == C.DISCOVERY and not was_quorum:
        voters = {f for f, _ in cepoch} | {i}
        if config.is_quorum(voters):
            # The quorum was just reached: propose the new epoch once.
            epochs = [e for _, e in cepoch] + [state["accepted_epoch"][i]]
            new_epoch = max(epochs) + 1
            if new_epoch > config.max_epoch:
                return None
            updates["accepted_epoch"] = P.up(
                state["accepted_epoch"], i, new_epoch
            )
            for f, _ in cepoch:
                msgs = P.send_if_connected(
                    state, msgs, i, f, Rec(mtype=C.LEADERINFO, epoch=new_epoch)
                )
    else:
        # The epoch was already proposed (or the leader is past
        # Discovery): answer the late joiner directly.
        msgs = P.send_if_connected(
            state,
            msgs,
            i,
            j,
            Rec(mtype=C.LEADERINFO, epoch=state["accepted_epoch"][i]),
        )
    updates["msgs"] = msgs
    return updates


def follower_process_leaderinfo(config: ZkConfig, state, i: int, j: int):
    """The follower accepts the proposed epoch and answers ACKEPOCH with
    its (currentEpoch, lastZxid); zabState moves to SYNCHRONIZATION."""
    msg = P.peek(state, j, i)
    if msg is None or msg.mtype != C.LEADERINFO:
        return None
    if state["my_leader"][i] != j or state["zab_state"][i] != C.DISCOVERY:
        return None
    msgs = P.pop(state["msgs"], j, i)
    if msg.epoch < state["accepted_epoch"][i]:
        # Stale leader proposal: the follower goes back to election.
        return {
            "msgs": msgs,
            "state": P.up(state["state"], i, C.LOOKING),
            "zab_state": P.up(state["zab_state"], i, C.ELECTION),
            "my_leader": P.up(state["my_leader"], i, -1),
        }
    ack = Rec(
        mtype=C.ACKEPOCH,
        epoch=state["current_epoch"][i],
        zxid=P.last_zxid_of(state, i),
    )
    msgs = P.send_if_connected(state, msgs, i, j, ack)
    return {
        "msgs": msgs,
        "accepted_epoch": P.up(state["accepted_epoch"], i, msg.epoch),
        "zab_state": P.up(state["zab_state"], i, C.SYNCHRONIZATION),
    }


def leader_process_ackepoch(config: ZkConfig, state, i: int, j: int):
    """The leader collects ACKEPOCHs; with a quorum it adopts the epoch
    and moves to SYNCHRONIZATION.  A follower with better credentials
    forces the leader to abdicate (the implementation shuts down)."""
    msg = P.peek(state, j, i)
    if msg is None or msg.mtype != C.ACKEPOCH:
        return None
    if state["state"][i] != C.LEADING:
        return None
    if (msg.epoch, msg.zxid) > (
        state["current_epoch"][i],
        P.last_zxid_of(state, i),
    ):
        return {
            "msgs": P.pop(state["msgs"], j, i),
            "state": P.up(state["state"], i, C.LOOKING),
            "zab_state": P.up(state["zab_state"], i, C.ELECTION),
            "my_leader": P.up(state["my_leader"], i, -1),
        }
    ackepoch = state["ackepoch_recv"][i] | {(j, msg.epoch, msg.zxid)}
    updates = {
        "msgs": P.pop(state["msgs"], j, i),
        "ackepoch_recv": P.up(state["ackepoch_recv"], i, ackepoch),
    }
    if state["zab_state"][i] == C.DISCOVERY:
        voters = {f for f, _, _ in ackepoch} | {i}
        if config.is_quorum(voters):
            updates["zab_state"] = P.up(
                state["zab_state"], i, C.SYNCHRONIZATION
            )
            updates["current_epoch"] = P.up(
                state["current_epoch"], i, state["accepted_epoch"][i]
            )
    return updates


def _pairs_distinct(cfg: ZkConfig):
    return [(i, j) for i in cfg.servers for j in cfg.servers if i != j]


def discovery_module(config: ZkConfig) -> Module:
    def pairwise(fn):
        return lambda cfg, s, pair: fn(cfg, s, pair[0], pair[1])

    actions = [
        Action(
            "ConnectAndFollowerSendFOLLOWERINFO",
            pairwise(connect_and_send_followerinfo),
            params={"pair": _pairs_distinct},
            reads=[
                "state",
                "zab_state",
                "my_leader",
                "disconnected",
                "msgs",
                "cepoch_recv",
                "accepted_epoch",
            ],
            writes=["msgs"],
        ),
        Action(
            "LeaderProcessFOLLOWERINFO",
            pairwise(leader_process_followerinfo),
            params={"pair": _pairs_distinct},
            reads=["msgs", "state", "zab_state", "cepoch_recv", "accepted_epoch"],
            writes=["msgs", "cepoch_recv", "accepted_epoch"],
            update_sources={"accepted_epoch": ["cepoch_recv", "accepted_epoch"]},
        ),
        Action(
            "FollowerProcessLEADERINFO",
            pairwise(follower_process_leaderinfo),
            params={"pair": _pairs_distinct},
            reads=[
                "msgs",
                "my_leader",
                "zab_state",
                "accepted_epoch",
                "current_epoch",
                "history",
            ],
            writes=["msgs", "accepted_epoch", "zab_state", "state", "my_leader"],
        ),
        Action(
            "LeaderProcessACKEPOCH",
            pairwise(leader_process_ackepoch),
            params={"pair": _pairs_distinct},
            reads=[
                "msgs",
                "state",
                "zab_state",
                "ackepoch_recv",
                "current_epoch",
                "history",
                "accepted_epoch",
            ],
            writes=[
                "msgs",
                "ackepoch_recv",
                "zab_state",
                "current_epoch",
                "state",
                "my_leader",
            ],
            update_sources={"current_epoch": ["accepted_epoch"]},
        ),
    ]
    return Module("Discovery", actions)
