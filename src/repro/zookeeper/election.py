"""Baseline Fast Leader Election (FLE) module -- four actions.

This is the fine(-ish) Election module of the system specification
(Figure 5a): explicit vote notifications, vote adoption by the
totalOrderPredicate, and quorum-based decision.  It is deliberately the
expensive part of the state space: Table 5 shows TLC spending most of its
time here when Election is not coarsened (Baseline and mSpec-4 rows).
"""

from __future__ import annotations

from repro.tla.action import Action
from repro.tla.module import Module
from repro.tla.values import Rec
from repro.zookeeper import constants as C
from repro.zookeeper import prims as P
from repro.zookeeper.config import ZkConfig
from repro.zookeeper.schema import EMPTY_SYNC


def _vote_key(vote: Rec):
    return (vote.epoch, vote.zxid, vote.sid)


def fle_broadcast_notmsg(config: ZkConfig, state, i: int):
    """A LOOKING server broadcasts its current vote to all peers."""
    if state["state"][i] != C.LOOKING or state["vote_sent"][i]:
        return None
    msgs = state["msgs"]
    vote = state["current_vote"][i]
    for j in config.servers:
        if j != i:
            msgs = P.send_if_connected(
                state, msgs, i, j, Rec(mtype=C.NOTIFICATION, vote=vote)
            )
    return {
        "msgs": msgs,
        "vote_sent": P.up(state["vote_sent"], i, True),
        "recv_votes": P.up(
            state["recv_votes"], i, state["recv_votes"][i] | {(i, vote)}
        ),
    }


def fle_receive_notmsg(config: ZkConfig, state, i: int, j: int):
    """A LOOKING server handles a notification: record the vote and adopt
    it when it beats the current one (ZooKeeper's totalOrderPredicate:
    epoch, then zxid, then sid)."""
    msg = P.peek(state, j, i)
    if msg is None or msg.mtype != C.NOTIFICATION:
        return None
    if state["state"][i] != C.LOOKING:
        return None
    vote = msg.vote
    mine = state["current_vote"][i]
    updates = {"msgs": P.pop(state["msgs"], j, i)}
    if _vote_key(vote) > _vote_key(mine):
        updates["current_vote"] = P.up(state["current_vote"], i, vote)
        updates["vote_sent"] = P.up(state["vote_sent"], i, False)
        updates["recv_votes"] = P.up(
            state["recv_votes"], i, frozenset({(i, vote), (j, vote)})
        )
    else:
        updates["recv_votes"] = P.up(
            state["recv_votes"], i, state["recv_votes"][i] | {(j, vote)}
        )
    return updates


def fle_reply_notmsg(config: ZkConfig, state, i: int, j: int):
    """A non-LOOKING server answers a notification with the vote of its
    established leader, letting late joiners converge."""
    msg = P.peek(state, j, i)
    if msg is None or msg.mtype != C.NOTIFICATION:
        return None
    if state["state"][i] not in (C.FOLLOWING, C.LEADING):
        return None
    leader = i if state["state"][i] == C.LEADING else state["my_leader"][i]
    if leader < 0:
        return None
    vote = Rec(
        epoch=state["current_epoch"][i],
        zxid=P.last_zxid_of(state, i),
        sid=leader,
    )
    msgs = P.pop(state["msgs"], j, i)
    msgs = P.send_if_connected(state, msgs, i, j, Rec(mtype=C.NOTIFICATION, vote=vote))
    return {"msgs": msgs}


def fle_decide(config: ZkConfig, state, i: int):
    """A LOOKING server with a quorum of agreeing votes takes its role
    (Figure 5a: LEADING when it voted for itself, FOLLOWING otherwise)
    and moves to DISCOVERY."""
    if state["state"][i] != C.LOOKING:
        return None
    vote = state["current_vote"][i]
    supporters = {
        voter for voter, v in state["recv_votes"][i] if v.sid == vote.sid
    } | {i}
    if not config.is_quorum(supporters):
        return None
    if vote.sid == i:
        new_state = C.LEADING
    else:
        new_state = C.FOLLOWING
        if state["state"][vote.sid] == C.DOWN:
            return None
    return {
        "state": P.up(state["state"], i, new_state),
        "zab_state": P.up(state["zab_state"], i, C.DISCOVERY),
        "my_leader": P.up(state["my_leader"], i, vote.sid),
        "cepoch_recv": P.up(state["cepoch_recv"], i, frozenset()),
        "ackepoch_recv": P.up(state["ackepoch_recv"], i, frozenset()),
        "synced_sent": P.up(state["synced_sent"], i, frozenset()),
        "newleader_acks": P.up(state["newleader_acks"], i, frozenset()),
        "uptodate_sent": P.up(state["uptodate_sent"], i, frozenset()),
        "proposal_acks": P.up(state["proposal_acks"], i, ()),
        "packets_sync": P.up(state["packets_sync"], i, EMPTY_SYNC),
        "newleader_recv": P.up(state["newleader_recv"], i, False),
    }


_PAIRS = {"i": lambda cfg: cfg.servers, "j": lambda cfg: cfg.servers}


def _pairs_distinct(cfg: ZkConfig):
    return [(i, j) for i in cfg.servers for j in cfg.servers if i != j]


def election_module(config: ZkConfig) -> Module:
    actions = [
        Action(
            "FLEBroadcastNotmsg",
            fle_broadcast_notmsg,
            params={"i": lambda cfg: cfg.servers},
            reads=["state", "vote_sent", "current_vote", "disconnected"],
            writes=["msgs", "vote_sent", "recv_votes"],
            update_sources={"recv_votes": ["current_vote"]},
        ),
        Action(
            "FLEReceiveNotmsg",
            lambda cfg, s, pair: fle_receive_notmsg(cfg, s, pair[0], pair[1]),
            params={"pair": _pairs_distinct},
            reads=["msgs", "state", "current_vote", "recv_votes"],
            writes=["msgs", "current_vote", "vote_sent", "recv_votes"],
        ),
        Action(
            "FLEReplyNotmsg",
            lambda cfg, s, pair: fle_reply_notmsg(cfg, s, pair[0], pair[1]),
            params={"pair": _pairs_distinct},
            reads=["msgs", "state", "my_leader", "current_epoch", "history"],
            writes=["msgs"],
        ),
        Action(
            "FLEDecide",
            fle_decide,
            params={"i": lambda cfg: cfg.servers},
            reads=["state", "current_vote", "recv_votes"],
            writes=[
                "state",
                "zab_state",
                "my_leader",
                "cepoch_recv",
                "ackepoch_recv",
                "synced_sent",
                "newleader_acks",
                "uptodate_sent",
                "proposal_acks",
                "packets_sync",
                "newleader_recv",
            ],
            update_sources={"my_leader": ["current_vote"]},
        ),
    ]
    return Module("Election", actions)
