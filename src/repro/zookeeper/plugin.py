"""The ZooKeeper system plugin: the paper's subject system, packaged
behind the generic :class:`~repro.system.plugin.SystemPlugin` surface.

Loaded lazily by :func:`repro.remix.registry.system_plugin`; importing
this module registers the plugin under the name ``"zookeeper"``.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Mapping

from repro.impl.ensemble import Ensemble
from repro.remix.coordinator import COMPARED_VARIABLES
from repro.system.plugin import SystemPlugin
from repro.zookeeper.config import SpecVariant, ZkConfig
from repro.zookeeper.faults import FAULT_SCHEDULES
from repro.zookeeper.scenarios import SCENARIO_PREFIXES
from repro.zookeeper.specs import SELECTIONS


class ZooKeeperPlugin(SystemPlugin):
    """ZooKeeper/ZAB checked against the paper's multi-grained specs."""

    name = "zookeeper"
    title = "ZooKeeper atomic broadcast (ZAB) vs the multi-grained specs"
    grains = ("mSpec-1", "mSpec-2", "mSpec-3")
    scenario_prefixes = SCENARIO_PREFIXES
    fault_schedules = FAULT_SCHEDULES
    compared_variables = COMPARED_VARIABLES
    # repro.zab supplies the shared invariants; editing it must
    # invalidate this system's cached prefixes too.
    spec_source_packages = ("repro.tla", "repro.zookeeper", "repro.zab")

    def default_config(self) -> ZkConfig:
        """The stock three-server configuration."""
        return ZkConfig()

    def campaign_config(self) -> ZkConfig:
        """The standard campaign configuration (small fault budgets)."""
        from repro.remix.campaign import campaign_config

        return campaign_config()

    def make_spec(self, grain: str, config=None):
        """Compose one of the multi-grained ZooKeeper specifications.

        Resolved through the module attribute at call time so tests can
        monkeypatch ``repro.zookeeper.specs.make_spec``."""
        from repro.zookeeper import specs

        return specs.make_spec(grain, config=config)

    def make_mapping(self, grain: str):
        """The grain's spec-action -> ensemble-step mapping."""
        from repro.remix.mapping import mapping_for

        if grain not in SELECTIONS:
            raise KeyError(
                f"unknown or unmappable grain {grain!r}; "
                f"options: {sorted(SELECTIONS)}"
            )
        return mapping_for(SELECTIONS[grain])

    def ensemble_factory(self, config: ZkConfig) -> Callable[[], Ensemble]:
        """Fresh simulated ensembles matching the config's variant."""
        return lambda: Ensemble(
            config.n_servers,
            config.variant,
            max_msg_faults=config.max_msg_faults,
        )

    def budget_limits(self, config: ZkConfig) -> Dict[str, int]:
        """Step budgets mirroring the spec's budget variables."""
        return {
            "NodeCrash": config.max_crashes,
            "PartitionStart": config.max_partitions,
            "LeaderProcessRequest": config.max_txns,
            "MessageDelay": config.max_msg_faults,
            "MessageDuplicate": config.max_msg_faults,
        }

    def config_from_meta(self, meta: Mapping[str, Any]) -> ZkConfig:
        """Rebuild the :class:`ZkConfig` from a report's meta block
        (pre-variant blocks fall back to the default variant)."""
        fields = dict(meta.get("config", {}))
        variant = fields.pop("variant", None)
        config = ZkConfig(**fields) if fields else self.campaign_config()
        if variant:
            config = config.with_variant(SpecVariant(**variant))
        return config


def _register():
    from repro.remix.registry import register_system

    register_system(ZooKeeperPlugin())


_register()
