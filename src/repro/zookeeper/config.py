"""Model configuration and specification variants for ZooKeeper.

:class:`ZkConfig` is the TLC configuration (cluster size and the bounds of
Section 4.4: transactions, crashes, partitions); :class:`SpecVariant` is
the set of code-version knobs that distinguish ZooKeeper v3.9.1 from the
four fix PRs of Table 6 and from the final resolution of Section 5.4.

Every knob corresponds to a concrete code change discussed in the paper:

- ``history_before_epoch``: the §5.4 protocol improvement -- the follower
  must persist the synced history *before* updating ``currentEpoch``
  (v3.9.1 does the opposite, which is ZK-4643).  ``"diff_only"`` models
  PR-1848, which repaired the DIFF path but left the SNAP path unordered.
- ``synchronous_sync_logging``: log synced txns synchronously while
  handling NEWLEADER instead of queueing them to the SyncRequestProcessor
  (removes ZK-4646's early ACK and ZK-4685's ACK reordering).
- ``synchronous_commit``: drain pending commits before ACKing UPTODATE
  (removes ZK-3023's async-commit race).
- ``fix_follower_shutdown``: shut the SyncRequestProcessor down properly
  when the follower leaves an epoch (removes ZK-4712).
- ``match_commit_in_sync``: match a COMMIT received between NEWLEADER and
  UPTODATE against the already-logged history instead of the cleared
  packet list (removes ZK-4394's NullPointerException).
- ``mask_zk4394``: do not report or explore past ZK-4394 error states
  (the masking of §4.1/§5.1; mSpec-1 masks it, mSpec-1* does not).
- ``direct_commit_in_sync``: an *extension beyond the paper's six bugs*:
  apply a COMMIT received between NEWLEADER and UPTODATE directly to the
  log, bypassing the SyncRequestProcessor queue.  This is what
  Learner.syncWithLeader actually does and is the root of ZK-4785
  ("transaction loss due to race condition during DIFF sync", 2024 --
  the paper's reference [26]): the directly-applied txn can overtake
  earlier txns still waiting in the logging queue.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple


@dataclass(frozen=True)
class SpecVariant:
    """Code-version knobs shared by the specification and the simulator."""

    history_before_epoch: str = "none"  # "none" | "diff_only" | "full"
    synchronous_sync_logging: bool = False
    synchronous_commit: bool = False
    fix_follower_shutdown: bool = False
    match_commit_in_sync: bool = False
    mask_zk4394: bool = False
    direct_commit_in_sync: bool = False

    def __post_init__(self):
        if self.history_before_epoch not in ("none", "diff_only", "full"):
            raise ValueError(
                f"history_before_epoch: {self.history_before_epoch!r}"
            )

    def with_(self, **changes) -> "SpecVariant":
        return replace(self, **changes)


#: ZooKeeper v3.9.1: every bug present.
V391 = SpecVariant()

#: mSpec-3+ baseline for Table 6: v3.9.1 plus the ZK-4712 fix.
V391_PLUS_4712 = SpecVariant(fix_follower_shutdown=True)

#: PR-1848 (attempted ZK-4643 fix): orders history/epoch on the DIFF path
#: only; the SNAP path still updates the epoch first -> still violates I-8.
PR_1848 = V391_PLUS_4712.with_(history_before_epoch="diff_only")

#: PR-1930: full history-before-epoch ordering; ZK-4685's ACK reordering
#: remains -> violates I-12.
PR_1930 = V391_PLUS_4712.with_(history_before_epoch="full")

#: PR-1993 (targets ZK-4646 and ZK-4685): also makes sync-phase logging
#: synchronous; the async-commit race of ZK-3023 remains -> violates I-11.
PR_1993 = PR_1930.with_(synchronous_sync_logging=True)

#: PR-2111: additionally repairs the COMMIT-vs-packet matching (ZK-4394)
#: but still commits asynchronously -> violates I-11.
PR_2111 = PR_1993.with_(match_commit_in_sync=True)

#: The final resolution of §5.4: ordering + synchronous logging and
#: commit + proper shutdown + commit matching.  Passes all invariants.
FINAL_FIX = SpecVariant(
    history_before_epoch="full",
    synchronous_sync_logging=True,
    synchronous_commit=True,
    fix_follower_shutdown=True,
    match_commit_in_sync=True,
)


@dataclass(frozen=True)
class ZkConfig:
    """The model-checking configuration (TLC constants).

    The paper's standard configuration is three servers, up to four
    transactions, up to three crashes and up to three partitions (§4.4);
    Table 5 uses 3/2/2/2.  Pure-Python exploration uses the same shape at
    smaller bounds (DESIGN.md §6).
    """

    n_servers: int = 3
    max_txns: int = 2
    max_crashes: int = 2
    max_partitions: int = 2
    max_epoch: int = 4
    #: Message-channel faults (delay, duplication) the fault lane may
    #: inject.  0 disables the message-fault actions entirely, keeping
    #: every pre-existing exploration bit-identical.
    max_msg_faults: int = 0
    variant: SpecVariant = field(default_factory=SpecVariant)

    @property
    def servers(self) -> Tuple[int, ...]:
        return tuple(range(self.n_servers))

    @property
    def quorum_size(self) -> int:
        return self.n_servers // 2 + 1

    def is_quorum(self, members) -> bool:
        return len(set(members)) >= self.quorum_size

    def quorums(self) -> Tuple[Tuple[int, ...], ...]:
        """All minimal-or-larger quorums, as sorted tuples."""
        from itertools import combinations

        out = []
        for size in range(self.quorum_size, self.n_servers + 1):
            out.extend(combinations(self.servers, size))
        return tuple(out)

    def with_variant(self, variant: SpecVariant) -> "ZkConfig":
        return replace(self, variant=variant)
