"""Canned model-level scenarios.

Scripted action sequences over a specification: elect a leader, sync a
follower, commit a transaction.  Tests, examples and docs all need the
same few prefixes; building them here keeps them in one place and makes
"start checking from an interesting state" workflows one-liners (TLC's
``Init`` override idiom).
"""

from __future__ import annotations

from typing import Iterable, Tuple

from repro.system.plugin import Scenario as _BaseScenario
from repro.system.plugin import ScenarioError
from repro.tla.spec import Specification

__all__ = [
    "SCENARIO_PREFIXES",
    "Scenario",
    "ScenarioError",
    "scenario_prefix",
]


class Scenario(_BaseScenario):
    """The generic scenario builder plus ZooKeeper composite steps."""

    # --- composite steps -----------------------------------------------------

    def elect(self, leader: int, quorum: Iterable[int]) -> "Scenario":
        """Coarse ElectionAndDiscovery."""
        return self.apply(
            "ElectionAndDiscovery", i=leader, Q=tuple(sorted(quorum))
        )

    def sync_follower(
        self, leader: int, follower: int, through_uptodate: bool = True
    ) -> "Scenario":
        """Drive one follower through the whole synchronization phase at
        whatever granularity the specification composes."""
        names = {a.name for a in self.spec.actions}
        self.apply("LeaderSyncFollower", pair=(leader, follower))
        self.apply("FollowerProcessSyncMessage", pair=(follower, leader))
        if "FollowerProcessNEWLEADER" in names:
            self.apply("FollowerProcessNEWLEADER", pair=(follower, leader))
        else:
            order: Tuple[str, ...] = (
                "FollowerProcessNEWLEADER_UpdateEpoch",
                "FollowerProcessNEWLEADER_Log",
                "FollowerProcessNEWLEADER_LogAsync",
                "FollowerSyncProcessorLogRequest",
                "FollowerProcessNEWLEADER_ReplyAck",
            )
            progressed = True
            while progressed and not self.state["newleader_recv"][follower]:
                progressed = False
                for name in order:
                    if name not in names:
                        continue
                    args = (
                        {"i": follower}
                        if name == "FollowerSyncProcessorLogRequest"
                        else {"pair": (follower, leader)}
                    )
                    if self.can(name, **args):
                        self.apply(name, **args)
                        progressed = True
                        break
            if not self.state["newleader_recv"][follower]:
                raise ScenarioError(
                    f"could not complete NEWLEADER for {follower}"
                )
        self.apply("LeaderProcessACKLD", pair=(leader, follower))
        if through_uptodate:
            self.apply("FollowerProcessUPTODATE", pair=(follower, leader))
            if "LeaderProcessACKUPTODATE" in names:
                self.apply(
                    "LeaderProcessACKUPTODATE", pair=(leader, follower)
                )
        return self

    def serving_cluster(
        self, leader: int = 2, quorum: Iterable[int] = (0, 1, 2)
    ) -> "Scenario":
        """Elect and fully sync a cluster into BROADCAST."""
        quorum = tuple(sorted(quorum))
        self.elect(leader, quorum)
        for follower in quorum:
            if follower != leader:
                self.sync_follower(leader, follower)
        return self

    def commit_transaction(self, leader: int, follower: int) -> "Scenario":
        """Propose a txn and commit it through one follower's ACK."""
        names = {a.name for a in self.spec.actions}
        self.apply("LeaderProcessRequest", i=leader)
        self.apply("FollowerProcessPROPOSAL", pair=(follower, leader))
        if "FollowerSyncProcessorLogRequest" in names:
            self.apply("FollowerSyncProcessorLogRequest", i=follower)
        self.apply("LeaderProcessACK", pair=(leader, follower))
        self.apply("FollowerProcessCOMMIT", pair=(follower, leader))
        if "FollowerCommitProcessorCommit" in names:
            self.apply("FollowerCommitProcessorCommit", i=follower)
        return self

    def crash(self, server: int) -> "Scenario":
        return self.apply("NodeCrash", i=server)

    def restart(self, server: int) -> "Scenario":
        return self.apply("NodeRestart", i=server)


# --- campaign prefixes -------------------------------------------------------


def _prefix_election(spec: Specification, leader: int, quorum) -> Scenario:
    return Scenario(spec).elect(leader, quorum)


def _prefix_sync(spec: Specification, leader: int, quorum) -> Scenario:
    follower = min(j for j in quorum if j != leader)
    return Scenario(spec).elect(leader, quorum).sync_follower(leader, follower)


def _prefix_broadcast(spec: Specification, leader: int, quorum) -> Scenario:
    return Scenario(spec).serving_cluster(leader, quorum)


def _prefix_commit(spec: Specification, leader: int, quorum) -> Scenario:
    follower = min(j for j in quorum if j != leader)
    return (
        Scenario(spec)
        .serving_cluster(leader, quorum)
        .commit_transaction(leader, follower)
    )


#: Named scenario prefixes a conformance campaign starts its cells from:
#: each builder drives a freshly composed specification to an interesting
#: state (just elected / one follower synced / fully serving / a committed
#: transaction) before faults and random suffixes are layered on top.
SCENARIO_PREFIXES = {
    "election": _prefix_election,
    "sync": _prefix_sync,
    "broadcast": _prefix_broadcast,
    "commit": _prefix_commit,
}


def scenario_prefix(
    name: str, spec: Specification, leader: int, quorum
) -> Scenario:
    """Build one of the named campaign prefixes; raises
    :class:`ScenarioError` when the prefix cannot be scripted for this
    specification (e.g. an action the grain does not expose)."""
    try:
        builder = SCENARIO_PREFIXES[name]
    except KeyError:
        raise ScenarioError(
            f"unknown scenario prefix {name!r}; options: "
            f"{list(SCENARIO_PREFIXES)}"
        ) from None
    return builder(spec, leader, tuple(sorted(quorum)))
