"""Fine-grained Synchronization modules (Figures 3 and 4).

Two granularities on top of the baseline:

- ``fine_atomic`` (used by mSpec-2): the atomic FollowerProcessNEWLEADER
  is split into three separate actions -- UpdateEpoch, Log, ReplyAck --
  exposing the intermediate states a crash can observe (ZK-4643).
- ``fine_concurrent`` (used by mSpec-3/4): additionally models the
  SyncRequestProcessor and CommitProcessor threads with their queues
  (``queued_requests``, ``committed_requests``), the per-txn ACKs of the
  logging thread (ZK-4685), the early ACK of NEWLEADER while txns are
  still queued (ZK-4646), the ACK reply to UPTODATE that the baseline
  omits (§2.2.3) and the leader-side assertion on it (ZK-3023).

The ordering between the epoch update and the history update follows
``config.variant.history_before_epoch`` ("none" = v3.9.1 behaviour,
"diff_only" = PR-1848, "full" = PR-1930 and later).
"""

from __future__ import annotations

from repro.tla.action import Action
from repro.tla.module import Module
from repro.tla.values import Rec
from repro.zookeeper import constants as C
from repro.zookeeper import prims as P
from repro.zookeeper.config import ZkConfig
from repro.zookeeper.schema import EMPTY_SYNC
from repro.zookeeper.sync_baseline import (
    _pairs_distinct,
    follower_sync_shared_actions,
    is_my_follower_syncing,
    leader_sync_actions,
    pairwise,
    pending_newleader,
)


def _epoch_first(config: ZkConfig, state, i: int) -> bool:
    """Does the epoch update precede the history update for this sync?

    v3.9.1 ("none"): always.  PR-1848 ("diff_only"): only on the SNAP
    path (the DIFF path was fixed).  PR-1930+ ("full"): never.
    """
    order = config.variant.history_before_epoch
    if order == "none":
        return True
    if order == "diff_only":
        return state["packets_sync"][i].mode == C.SNAP
    return False


def _log_done(config: ZkConfig, state, i: int, asynchronous: bool) -> bool:
    """Has the follower durably logged the staged sync txns?"""
    if state["packets_sync"][i].not_committed:
        return False
    if asynchronous and not config.variant.synchronous_sync_logging:
        return not state["queued_requests"][i]
    return True


def _update_epoch(config: ZkConfig, state, i: int, j: int, asynchronous: bool):
    """Figure 3a: FollowerProcessNEWLEADER_UpdateEpoch."""
    msg = pending_newleader(state, i, j)
    if msg is None or not is_my_follower_syncing(state, i, j):
        return None
    if state["current_epoch"][i] == state["accepted_epoch"][i]:
        return None
    if msg.epoch != state["accepted_epoch"][i]:
        return None
    if not _epoch_first(config, state, i) and not _log_done(
        config, state, i, asynchronous
    ):
        return None
    return {
        "current_epoch": P.up(
            state["current_epoch"], i, state["accepted_epoch"][i]
        )
    }


def _log_guard(config: ZkConfig, state, i: int, j: int):
    msg = pending_newleader(state, i, j)
    if msg is None or not is_my_follower_syncing(state, i, j):
        return None
    packets = state["packets_sync"][i]
    if not packets.not_committed:
        return None
    if _epoch_first(config, state, i) and (
        state["current_epoch"][i] != state["accepted_epoch"][i]
    ):
        return None
    return packets


def follower_newleader_log_sync(config: ZkConfig, state, i: int, j: int):
    """mSpec-2 / synchronous logging: persist the staged txns directly."""
    packets = _log_guard(config, state, i, j)
    if packets is None:
        return None
    history = state["history"][i] + packets.not_committed
    return {
        "history": P.up(state["history"], i, history),
        "packets_sync": P.up(
            state["packets_sync"], i, packets.replace(not_committed=())
        ),
    }


def follower_newleader_log_async(config: ZkConfig, state, i: int, j: int):
    """Figure 3b: queue the staged txns to the SyncRequestProcessor.

    Under ``synchronous_sync_logging`` (PR-1993 and the final fix) this
    degenerates to the synchronous append.
    """
    if config.variant.synchronous_sync_logging:
        return follower_newleader_log_sync(config, state, i, j)
    packets = _log_guard(config, state, i, j)
    if packets is None:
        return None
    session = state["accepted_epoch"][i]
    entries = tuple(P.QEntry(txn, session) for txn in packets.not_committed)
    queued = state["queued_requests"][i] + entries
    return {
        "queued_requests": P.up(state["queued_requests"], i, queued),
        "packets_sync": P.up(
            state["packets_sync"], i, packets.replace(not_committed=())
        ),
    }


def _reply_ack(config: ZkConfig, state, i: int, j: int, asynchronous: bool):
    """Figure 3c: ACK the NEWLEADER once the packet buffer is drained.

    With asynchronous logging the queue may still hold unpersisted txns
    at this point -- the early ACK at the heart of ZK-4646.
    """
    msg = pending_newleader(state, i, j)
    if msg is None or not is_my_follower_syncing(state, i, j):
        return None
    if state["current_epoch"][i] != state["accepted_epoch"][i]:
        return None
    if state["packets_sync"][i].not_committed:
        return None
    if not asynchronous or config.variant.synchronous_sync_logging:
        # Synchronous logging also drains the queue before ACKing.
        if state["queued_requests"][i]:
            return None
    msgs = P.pop(state["msgs"], j, i)
    msgs = P.send_if_connected(
        state, msgs, i, j, Rec(mtype=C.ACK, zxid=msg.zxid)
    )
    return {
        "msgs": msgs,
        "newleader_recv": P.up(state["newleader_recv"], i, True),
    }


def follower_sync_processor_log_request(config: ZkConfig, state, i: int):
    """Figure 4a: the SyncRequestProcessor thread pops one request, logs
    it and ACKs its zxid to the leader.

    The per-txn ACK may overtake the NEWLEADER ACK -- ZK-4685.  Without
    ``fix_follower_shutdown`` the thread also keeps running after the
    follower left the epoch -- ZK-4712 (a stale request is logged after
    data recovery).
    """
    if state["state"][i] == C.DOWN:
        return None
    queued = state["queued_requests"][i]
    if not queued:
        return None
    entry = queued[0]
    history = state["history"][i] + (entry.txn,)
    updates = {
        "queued_requests": P.up(state["queued_requests"], i, queued[1:]),
        "history": P.up(state["history"], i, history),
    }
    leader = state["my_leader"][i]
    same_session = entry.epoch == state["accepted_epoch"][i]
    if leader >= 0 and state["state"][i] == C.FOLLOWING and same_session:
        updates["msgs"] = P.send_if_connected(
            state,
            state["msgs"],
            i,
            leader,
            Rec(mtype=C.ACK, zxid=entry.txn.zxid),
        )
    return updates


def follower_process_uptodate_async(config: ZkConfig, state, i: int, j: int):
    """UPTODATE with the CommitProcessor modeled: the pending commits are
    queued, the follower starts serving and -- the state transition the
    baseline spec misses (§2.2.3) -- replies with an ACK.

    Under ``synchronous_commit`` the pending commits are applied before
    the ACK (the ZK-3023 fix)."""
    msg = P.peek(state, j, i)
    if msg is None or msg.mtype != C.UPTODATE:
        return None
    if not is_my_follower_syncing(state, i, j) or not state["newleader_recv"][i]:
        return None
    # Remaining proposals from the sync window are handed to the logging
    # thread now (synchronously under the fixed variant).
    staged = state["packets_sync"][i].not_committed
    history = state["history"][i]
    queued = state["queued_requests"][i]
    if config.variant.synchronous_sync_logging:
        # synchronous logging: drain anything still queued first, then
        # persist the staged txns, preserving the log order
        history = history + tuple(e.txn for e in queued) + staged
        queued = ()
    else:
        session = state["accepted_epoch"][i]
        queued = queued + tuple(P.QEntry(txn, session) for txn in staged)
    synced = history + tuple(entry.txn for entry in queued)
    pending = tuple(
        txn.zxid
        for txn in synced[state["last_committed"][i] : msg.commit_count]
    )
    updates = {
        "zab_state": P.up(state["zab_state"], i, C.BROADCAST),
        "packets_sync": P.up(state["packets_sync"], i, EMPTY_SYNC),
        "history": P.up(state["history"], i, history),
        "queued_requests": P.up(state["queued_requests"], i, queued),
    }
    if config.variant.synchronous_commit:
        working = state.set(**updates)
        updates.update(
            P.advance_commit(working, i, min(len(history), msg.commit_count))
        )
        own_committed = min(len(history), msg.commit_count)
    else:
        updates["committed_requests"] = P.up(
            state["committed_requests"],
            i,
            state["committed_requests"][i] + pending,
        )
        own_committed = state["last_committed"][i]
    # The ACK carries the follower's own committed count at send time --
    # the information the ZK-3023 assertion at the leader checks.
    msgs = P.pop(state["msgs"], j, i)
    msgs = P.send_if_connected(
        state, msgs, i, j, Rec(mtype=C.ACK_UPTODATE, zxid=own_committed)
    )
    updates["msgs"] = msgs
    return updates


def follower_commit_processor_commit(config: ZkConfig, state, i: int):
    """The CommitProcessor thread applies one pending commit.

    Blocks (stays disabled) while the matching txn is still queued for
    logging; reports a bad commit when the txn cannot exist."""
    if state["state"][i] == C.DOWN:
        return None
    queue = state["committed_requests"][i]
    if not queue:
        return None
    zxid = queue[0]
    history = state["history"][i]
    committed = state["last_committed"][i]
    rest = {"committed_requests": P.up(state["committed_requests"], i, queue[1:])}
    idx = P.index_of_zxid(history, zxid)
    if idx >= 0 and idx < committed:
        return rest  # duplicate
    if idx == committed:
        rest.update(P.advance_commit(state, i, committed + 1))
        return rest
    if any(entry.txn.zxid == zxid for entry in state["queued_requests"][i]):
        return None  # wait for the SyncRequestProcessor to log it first
    if idx > committed:
        rest.update(P.raise_error(state, C.ERR_COMMIT_OUT_OF_ORDER, i))
        return rest
    rest.update(P.raise_error(state, C.ERR_COMMIT_UNKNOWN_TXN, i))
    return rest


def leader_process_ack_uptodate(config: ZkConfig, state, i: int, j: int):
    """The leader handles the follower's ACK of UPTODATE.  The code
    asserts the follower is in sync with the leader's initial history at
    this point; with the asynchronous CommitProcessor the follower may
    still be behind -- ZK-3023 (I-11)."""
    msg = P.peek(state, j, i)
    if msg is None or msg.mtype != C.ACK_UPTODATE:
        return None
    if state["state"][i] != C.LEADING or not P.is_learner(state, i, j):
        return None
    updates = {"msgs": P.pop(state["msgs"], j, i)}
    epoch = state["current_epoch"][i]
    initial_len = next(
        (
            len(rec.initial)
            for rec in state["g_established"]
            if rec.epoch == epoch
        ),
        0,
    )
    if msg.zxid < initial_len:
        updates.update(
            P.raise_error(state, C.ERR_ACK_UPTODATE_OUT_OF_SYNC, i)
        )
    return updates


def _split_actions(asynchronous: bool):
    """The three actions of Figure 3 at either logging granularity."""
    log_fn = (
        follower_newleader_log_async if asynchronous else follower_newleader_log_sync
    )
    log_name = (
        "FollowerProcessNEWLEADER_LogAsync"
        if asynchronous
        else "FollowerProcessNEWLEADER_Log"
    )
    log_writes = (
        ["queued_requests", "packets_sync", "history"]
        if asynchronous
        else ["history", "packets_sync"]
    )
    # Synchronous logging appends straight to the history; only the
    # asynchronous split routes through the request queue.
    log_reads = [
        "msgs",
        "state",
        "zab_state",
        "my_leader",
        "current_epoch",
        "accepted_epoch",
        "packets_sync",
    ] + (["queued_requests"] if asynchronous else [])
    return [
        Action(
            "FollowerProcessNEWLEADER_UpdateEpoch",
            pairwise(
                lambda cfg, s, i, j: _update_epoch(cfg, s, i, j, asynchronous)
            ),
            params={"pair": _pairs_distinct},
            reads=[
                "msgs",
                "state",
                "zab_state",
                "my_leader",
                "current_epoch",
                "accepted_epoch",
                "packets_sync",
                "queued_requests",
            ],
            writes=["current_epoch"],
            update_sources={"current_epoch": ["accepted_epoch"]},
        ),
        Action(
            log_name,
            pairwise(log_fn),
            params={"pair": _pairs_distinct},
            reads=log_reads,
            writes=log_writes,
            update_sources={"history": ["packets_sync"]},
        ),
        Action(
            "FollowerProcessNEWLEADER_ReplyAck",
            pairwise(
                lambda cfg, s, i, j: _reply_ack(cfg, s, i, j, asynchronous)
            ),
            params={"pair": _pairs_distinct},
            reads=[
                "msgs",
                "state",
                "zab_state",
                "my_leader",
                "current_epoch",
                "accepted_epoch",
                "packets_sync",
                "queued_requests",
                # The ACK reply is dropped when the pair is partitioned.
                "disconnected",
            ],
            writes=["msgs", "newleader_recv"],
        ),
    ]


def sync_fine_atomic_module(config: ZkConfig) -> Module:
    """mSpec-2: atomicity split with synchronous logging; UPTODATE stays
    at the baseline granularity."""
    from repro.zookeeper.sync_baseline import follower_process_uptodate

    actions = (
        leader_sync_actions()
        + follower_sync_shared_actions()
        + _split_actions(asynchronous=False)
        + [
            Action(
                "FollowerProcessUPTODATE",
                pairwise(follower_process_uptodate),
                params={"pair": _pairs_distinct},
                reads=[
                    "msgs",
                    "state",
                    "zab_state",
                    "my_leader",
                    "newleader_recv",
                    "history",
                    "packets_sync",
                    "last_committed",
                ],
                writes=[
                    "msgs",
                    "zab_state",
                    "packets_sync",
                    "history",
                    "last_committed",
                    "g_delivered",
                    "g_committed",
                ],
            )
        ]
    )
    return Module("Synchronization", actions)


def sync_fine_concurrent_module(config: ZkConfig) -> Module:
    """mSpec-3/4: atomicity split plus thread-level concurrency."""
    actions = (
        leader_sync_actions()
        + follower_sync_shared_actions(concurrent=True)
        + _split_actions(asynchronous=True)
        + [
            Action(
                "FollowerSyncProcessorLogRequest",
                follower_sync_processor_log_request,
                params={"i": lambda cfg: cfg.servers},
                reads=["state", "queued_requests", "my_leader", "disconnected"],
                writes=["queued_requests", "history", "msgs"],
                # The per-txn ACK is only sent within the same sync
                # session (entry.epoch == accepted_epoch[i]).
                update_sources={
                    "history": ["queued_requests"],
                    "msgs": ["queued_requests", "accepted_epoch"],
                },
            ),
            Action(
                "FollowerProcessUPTODATE",
                pairwise(follower_process_uptodate_async),
                params={"pair": _pairs_distinct},
                reads=[
                    "msgs",
                    "state",
                    "zab_state",
                    "my_leader",
                    "newleader_recv",
                    "history",
                    "packets_sync",
                    "queued_requests",
                    "last_committed",
                    "committed_requests",
                    # The ACK_UPTODATE reply is dropped when the pair is
                    # partitioned.
                    "disconnected",
                ],
                # Staged txns are queued under the current sync session's
                # epoch (the QEntry session tag).
                update_sources={"queued_requests": ["accepted_epoch"]},
                writes=[
                    "msgs",
                    "zab_state",
                    "packets_sync",
                    "history",
                    "queued_requests",
                    "committed_requests",
                    "last_committed",
                    "g_delivered",
                    "g_committed",
                ],
            ),
            Action(
                "FollowerCommitProcessorCommit",
                follower_commit_processor_commit,
                params={"i": lambda cfg: cfg.servers},
                reads=[
                    "state",
                    "committed_requests",
                    "history",
                    "last_committed",
                    "queued_requests",
                ],
                writes=[
                    "committed_requests",
                    "last_committed",
                    "g_delivered",
                    "g_committed",
                    "errors",
                ],
            ),
            Action(
                "LeaderProcessACKUPTODATE",
                pairwise(leader_process_ack_uptodate),
                params={"pair": _pairs_distinct},
                reads=[
                    "msgs",
                    "state",
                    "current_epoch",
                    "ackepoch_recv",
                    "g_established",
                ],
                writes=["msgs", "errors"],
            ),
        ]
    )
    return Module("Synchronization", actions)
