"""Specification factories: SysSpec and the mixed-grained mSpec-1..mSpec-4.

This is the composition matrix of Table 1:

=========  =========  =========  ==================  ==============
Spec       Election   Discovery  Synchronization     Broadcast
=========  =========  =========  ==================  ==============
SysSpec    baseline   baseline   baseline            baseline
mSpec-1    coarsened  coarsened  baseline            baseline
mSpec-2    coarsened  coarsened  fine (atomicity)    baseline
mSpec-3    coarsened  coarsened  fine (atom+concur)  fine (concur)
mSpec-4    baseline   baseline   fine (atom+concur)  fine (concur)
=========  =========  =========  ==================  ==============

plus the Table 6 variants: mSpec-3+ (mSpec-3 with the ZK-4712 fix) and
the four PR specifications, and the §5.4 final-fix specification.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.tla.composition import CompositionError, compose
from repro.tla.module import Module
from repro.tla.spec import Specification
from repro.tla.state import State
from repro.zab.invariants import protocol_invariants
from repro.zookeeper import constants as C
from repro.zookeeper.broadcast import (
    broadcast_baseline_module,
    broadcast_fine_module,
)
from repro.zookeeper.coarse import coarse_election_module
from repro.zookeeper.code_invariants import code_invariants
from repro.zookeeper.config import (
    FINAL_FIX,
    PR_1848,
    PR_1930,
    PR_1993,
    PR_2111,
    SpecVariant,
    V391_PLUS_4712,
    ZkConfig,
)
from repro.zookeeper.discovery import discovery_module
from repro.zookeeper.election import election_module
from repro.zookeeper.faults import faults_module
from repro.zookeeper.schema import SCHEMA, init, state_constraint
from repro.zookeeper.sync_baseline import sync_baseline_module
from repro.zookeeper.sync_fine import (
    sync_fine_atomic_module,
    sync_fine_concurrent_module,
)

#: module name -> granularity -> factory
MODULE_FACTORIES: Dict[str, Dict[str, Callable[[ZkConfig], Module]]] = {
    "Election": {
        "baseline": election_module,
        # "coarsened" merges Election+Discovery; see build_spec.
    },
    "Discovery": {
        "baseline": discovery_module,
    },
    "Synchronization": {
        "baseline": sync_baseline_module,
        "fine_atomic": sync_fine_atomic_module,
        "fine_concurrent": sync_fine_concurrent_module,
    },
    "Broadcast": {
        "baseline": broadcast_baseline_module,
        "fine_concurrent": broadcast_fine_module,
    },
}

#: Table 1 rows, as granularity selections.
SELECTIONS: Dict[str, Dict[str, str]] = {
    "SysSpec": {
        "Election": "baseline",
        "Discovery": "baseline",
        "Synchronization": "baseline",
        "Broadcast": "baseline",
    },
    "mSpec-1": {
        "Election": "coarsened",
        "Discovery": "coarsened",
        "Synchronization": "baseline",
        "Broadcast": "baseline",
    },
    "mSpec-2": {
        "Election": "coarsened",
        "Discovery": "coarsened",
        "Synchronization": "fine_atomic",
        "Broadcast": "baseline",
    },
    "mSpec-3": {
        "Election": "coarsened",
        "Discovery": "coarsened",
        "Synchronization": "fine_concurrent",
        "Broadcast": "fine_concurrent",
    },
    "mSpec-4": {
        "Election": "baseline",
        "Discovery": "baseline",
        "Synchronization": "fine_concurrent",
        "Broadcast": "fine_concurrent",
    },
}


def zk4394_mask(state: State) -> bool:
    """Mask predicate for the known-but-unfixed ZK-4394 (§4.1): states on
    its error path are neither reported nor explored further."""
    errors = state["errors"]
    if not errors:  # fast path: evaluated once per explored state
        return False
    return any(err.code == C.ERR_COMMIT_UNMATCHED_IN_SYNC for err in errors)


# Declared dependency variables (mirrors Invariant.reads): the mask is a
# pure function of ``errors``, so the engine memoizes its verdict per
# projection instead of building a State per candidate.
zk4394_mask.reads = frozenset({"errors"})


def check_spec(
    spec,
    config: Optional[ZkConfig] = None,
    *,
    strategy: str = "bfs",
    workers: int = 1,
    masked: bool = True,
    **engine_kwargs,
):
    """Model-check a specification (or a Table 1 spec name) on the
    unified exploration engine.

    This is the one entry point the CLI and the benchmarks share:
    ``check_spec("mSpec-3", cfg, strategy="portfolio", workers=4)``.
    ``masked=True`` applies the ZK-4394 mask (the paper's default).
    """
    from repro.checker.engine import ExplorationEngine

    if isinstance(spec, str):
        spec = make_spec(spec, config)
    engine_kwargs.setdefault("mask", zk4394_mask if masked else None)
    return ExplorationEngine(
        spec, strategy=strategy, workers=workers, **engine_kwargs
    ).run()


def build_spec(
    name: str,
    selection: Dict[str, str],
    config: ZkConfig,
) -> Specification:
    """Compose a mixed-grained specification from a granularity selection
    (the Remix composition step, §3.5.1), with automatically selected
    invariants."""
    ele = selection["Election"]
    dis = selection["Discovery"]
    if (ele == "coarsened") != (dis == "coarsened"):
        raise CompositionError(
            "Election and Discovery must be coarsened together: the "
            "coarse action spans both phases"
        )
    if selection["Broadcast"] == "fine_concurrent" and selection[
        "Synchronization"
    ] != "fine_concurrent":
        raise CompositionError(
            "fine-grained Broadcast needs the fine-concurrent "
            "Synchronization module: the worker threads that drain the "
            "queues are defined there"
        )

    modules: List[Module] = []
    if ele == "coarsened":
        modules.append(coarse_election_module(config))
    else:
        modules.append(election_module(config))
        modules.append(discovery_module(config))
    modules.append(
        MODULE_FACTORIES["Synchronization"][selection["Synchronization"]](config)
    )
    modules.append(MODULE_FACTORIES["Broadcast"][selection["Broadcast"]](config))
    modules.append(faults_module(config))

    invariants = protocol_invariants() + code_invariants(selection)
    return compose(
        name,
        SCHEMA,
        init,
        modules,
        invariants,
        config,
        constraint=state_constraint,
    )


def make_spec(
    name: str,
    config: Optional[ZkConfig] = None,
    variant: Optional[SpecVariant] = None,
) -> Specification:
    """Build one of the named Table 1 specifications."""
    if name not in SELECTIONS:
        raise KeyError(f"unknown specification {name!r}; options: {list(SELECTIONS)}")
    config = config or ZkConfig()
    if variant is not None:
        config = config.with_variant(variant)
    return build_spec(name, SELECTIONS[name], config)


def sys_spec(config: Optional[ZkConfig] = None) -> Specification:
    return make_spec("SysSpec", config)


def mspec1(config: Optional[ZkConfig] = None) -> Specification:
    return make_spec("mSpec-1", config)


def mspec2(config: Optional[ZkConfig] = None) -> Specification:
    return make_spec("mSpec-2", config)


def mspec3(config: Optional[ZkConfig] = None) -> Specification:
    return make_spec("mSpec-3", config)


def mspec4(config: Optional[ZkConfig] = None) -> Specification:
    return make_spec("mSpec-4", config)


def mspec3_plus(config: Optional[ZkConfig] = None) -> Specification:
    """mSpec-3+ of Table 6: mSpec-3 with the verified ZK-4712 fix."""
    config = (config or ZkConfig()).with_variant(V391_PLUS_4712)
    spec = build_spec("mSpec-3+", SELECTIONS["mSpec-3"], config)
    return spec

#: Table 6: the four fix PRs, each as an update of mSpec-3+.
PR_VARIANTS: Dict[str, SpecVariant] = {
    "PR-1848": PR_1848,
    "PR-1930": PR_1930,
    "PR-1993": PR_1993,
    "PR-2111": PR_2111,
}


def pr_spec(pr: str, config: Optional[ZkConfig] = None) -> Specification:
    if pr not in PR_VARIANTS:
        raise KeyError(f"unknown PR {pr!r}; options: {list(PR_VARIANTS)}")
    config = (config or ZkConfig()).with_variant(PR_VARIANTS[pr])
    return build_spec(pr, SELECTIONS["mSpec-3"], config)


def final_fix_spec(config: Optional[ZkConfig] = None) -> Specification:
    """The §5.4 resolution: history-before-epoch ordering, synchronous
    logging and commit, fixed shutdown and commit matching."""
    config = (config or ZkConfig()).with_variant(FINAL_FIX)
    return build_spec("FinalFix", SELECTIONS["mSpec-3"], config)
