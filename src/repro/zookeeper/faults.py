"""Fault actions: crashes, restarts, partitions and failure detection.

These are the "other actions, e.g., for modeling faults" of Figure 7.
The module is granularity-independent and composed into every
specification.  ZK-4712 lives here: the buggy follower shutdown keeps the
SyncRequestProcessor queue alive across an epoch change
(``fix_follower_shutdown`` clears it).
"""

from __future__ import annotations

from typing import Tuple

from repro.system.plugin import (
    FaultSchedule,
    ROLE_FOLLOWER as _ROLE_FOLLOWER,
    ROLE_LEADER as _ROLE_LEADER,
    ROLE_LINK as _ROLE_LINK,
    ROLE_ORDERED_PAIR as _ROLE_ORDERED_PAIR,
    ROLE_PAIR as _ROLE_PAIR,
)
from repro.tla.action import Action
from repro.tla.module import Module
from repro.tla.values import Rec, last_zxid
from repro.zookeeper import constants as C
from repro.zookeeper import prims as P
from repro.zookeeper.schema import EMPTY_SYNC
from repro.zookeeper.config import ZkConfig


def _servers(config: ZkConfig):
    return config.servers


def _server_pairs(config: ZkConfig):
    return [
        (i, j)
        for i in config.servers
        for j in config.servers
        if i < j
    ]


def _own_vote(state, i: int) -> Rec:
    return Rec(
        epoch=state["current_epoch"][i],
        zxid=last_zxid(state["history"][i]),
        sid=i,
    )


def _volatile_reset(state, i: int, keep_queue: bool):
    """Updates that clear a server's volatile (in-memory) data.

    Durable data (history, epochs, last_committed watermark) survives.
    ``keep_queue`` preserves queued_requests -- the ZK-4712 bug, where the
    SyncRequestProcessor is not shut down with the follower.
    """
    updates = {
        "my_leader": P.up(state["my_leader"], i, -1),
        "recv_votes": P.up(state["recv_votes"], i, frozenset()),
        "vote_sent": P.up(state["vote_sent"], i, False),
        "current_vote": P.up(state["current_vote"], i, _own_vote(state, i)),
        "cepoch_recv": P.up(state["cepoch_recv"], i, frozenset()),
        "ackepoch_recv": P.up(state["ackepoch_recv"], i, frozenset()),
        "synced_sent": P.up(state["synced_sent"], i, frozenset()),
        "newleader_acks": P.up(state["newleader_acks"], i, frozenset()),
        "uptodate_sent": P.up(state["uptodate_sent"], i, frozenset()),
        "packets_sync": P.up(state["packets_sync"], i, EMPTY_SYNC),
        "newleader_recv": P.up(state["newleader_recv"], i, False),
        "committed_requests": P.up(state["committed_requests"], i, ()),
        "proposal_acks": P.up(state["proposal_acks"], i, ()),
    }
    if not keep_queue:
        updates["queued_requests"] = P.up(state["queued_requests"], i, ())
    return updates


_VOLATILE_WRITES = (
    "my_leader",
    "recv_votes",
    "vote_sent",
    "current_vote",
    "cepoch_recv",
    "ackepoch_recv",
    "synced_sent",
    "newleader_acks",
    "uptodate_sent",
    "packets_sync",
    "newleader_recv",
    "committed_requests",
    "proposal_acks",
    "queued_requests",
)


def node_crash(config: ZkConfig, state, i: int):
    """A node crash loses everything in memory, including the thread
    queues; disk data (history, epochs) survives."""
    if state["state"][i] == C.DOWN or state["crash_budget"] <= 0:
        return None
    updates = _volatile_reset(state, i, keep_queue=False)
    updates.update(
        state=P.up(state["state"], i, C.DOWN),
        zab_state=P.up(state["zab_state"], i, C.ELECTION),
        msgs=P.clear_channels(state["msgs"], i),
        crash_budget=state["crash_budget"] - 1,
    )
    return updates


def node_restart(config: ZkConfig, state, i: int):
    """Restart from disk: the server rejoins as LOOKING with its durable
    history, acceptedEpoch and currentEpoch."""
    if state["state"][i] != C.DOWN:
        return None
    return {
        "state": P.up(state["state"], i, C.LOOKING),
        "zab_state": P.up(state["zab_state"], i, C.ELECTION),
        "current_vote": P.up(state["current_vote"], i, _own_vote(state, i)),
        "vote_sent": P.up(state["vote_sent"], i, False),
        "recv_votes": P.up(state["recv_votes"], i, frozenset()),
    }


def partition_start(config: ZkConfig, state, i: int, j: int):
    pair = frozenset((i, j))
    if pair in state["disconnected"] or state["partition_budget"] <= 0:
        return None
    if state["state"][i] == C.DOWN or state["state"][j] == C.DOWN:
        return None
    return {
        "disconnected": state["disconnected"] | frozenset((pair,)),
        "msgs": P.clear_pair(state["msgs"], i, j),
        "partition_budget": state["partition_budget"] - 1,
    }


def partition_heal(config: ZkConfig, state, i: int, j: int):
    pair = frozenset((i, j))
    if pair not in state["disconnected"]:
        return None
    return {"disconnected": state["disconnected"] - frozenset((pair,))}


def follower_shutdown(config: ZkConfig, state, i: int):
    """A follower that lost its leader returns to election.

    The bug of ZK-4712: shutdown() does not stop the SyncRequestProcessor,
    so ``queued_requests`` survives into the next epoch and a stale
    request can be logged after data recovery completes.
    """
    if state["state"][i] != C.FOLLOWING:
        return None
    leader = state["my_leader"][i]
    if leader < 0:
        return None
    leader_gone = (
        state["state"][leader] != C.LEADING
        or frozenset((i, leader)) in state["disconnected"]
        # The leader moved on to a newer epoch: the old TCP session is
        # dead even though the process is alive.
        or state["accepted_epoch"][leader] != state["accepted_epoch"][i]
    )
    if not leader_gone:
        return None
    keep_queue = not config.variant.fix_follower_shutdown
    updates = _volatile_reset(state, i, keep_queue=keep_queue)
    updates.update(
        state=P.up(state["state"], i, C.LOOKING),
        zab_state=P.up(state["zab_state"], i, C.ELECTION),
    )
    return updates


def leader_shutdown(config: ZkConfig, state, i: int):
    """A leader that cannot reach a quorum of followers steps down."""
    if state["state"][i] != C.LEADING:
        return None
    reachable = 1  # itself
    for j in config.servers:
        if j == i:
            continue
        if (
            state["state"][j] == C.FOLLOWING
            and state["my_leader"][j] == i
            and P.connected(state, i, j)
        ):
            reachable += 1
    if reachable >= config.quorum_size:
        return None
    updates = _volatile_reset(state, i, keep_queue=not config.variant.fix_follower_shutdown)
    updates.update(
        state=P.up(state["state"], i, C.LOOKING),
        zab_state=P.up(state["zab_state"], i, C.ELECTION),
    )
    return updates


def discard_stale_message(config: ZkConfig, state, i: int, j: int):
    """Drop a message whose receiver is no longer in a state to handle it
    (the stale-TCP-connection teardown of the implementation).

    Only *clearly stale* messages may be dropped -- messages from the
    receiver's current leader must be handled, which keeps the bug paths
    (e.g. ZK-4394's COMMIT) intact.
    """
    msg = P.peek(state, j, i)
    if msg is None or state["state"][i] == C.DOWN:
        return None
    mtype = msg.mtype
    stale = False
    if mtype == C.FOLLOWERINFO and state["state"][i] != C.LEADING:
        stale = True
    elif mtype in (C.ACKEPOCH, C.ACK, C.ACK_UPTODATE) and state["state"][i] != C.LEADING:
        stale = True
    elif mtype in (C.ACK, C.ACK_UPTODATE) and not P.is_learner(state, i, j):
        stale = True  # sender is not a learner of this leader incarnation
    elif mtype in (
        C.LEADERINFO,
        C.DIFF,
        C.TRUNC,
        C.SNAP,
        C.NEWLEADER,
        C.UPTODATE,
        C.PROPOSAL,
        C.COMMIT,
    ) and state["my_leader"][i] != j:
        stale = True
    if not stale:
        return None
    return {"msgs": P.pop(state["msgs"], j, i)}


def message_delay(config: ZkConfig, state, i: int, j: int):
    """Delay the head of channel j -> i behind the traffic after it.

    Models a message held up long enough to be overtaken -- in real
    deployments this happens across a connection re-establishment,
    where a packet written to the old socket arrives after packets
    written to the new one.  Budgeted by ``msg_fault_budget``; needs at
    least two in-flight messages for the reordering to exist."""
    if state["msg_fault_budget"] <= 0:
        return None
    if len(state["msgs"][j][i]) < 2:
        return None
    return {
        "msgs": P.rotate_head(state["msgs"], j, i),
        "msg_fault_budget": state["msg_fault_budget"] - 1,
    }


def message_duplicate(config: ZkConfig, state, i: int, j: int):
    """Re-deliver the head of channel j -> i at the channel's tail.

    Models a retransmission across a reconnect: the sender cannot know
    whether the in-flight packet survived the old connection, so the
    receiver may see it twice.  Budgeted by ``msg_fault_budget``."""
    if state["msg_fault_budget"] <= 0:
        return None
    if not state["msgs"][j][i]:
        return None
    return {
        "msgs": P.duplicate_head(state["msgs"], j, i),
        "msg_fault_budget": state["msg_fault_budget"] - 1,
    }


def faults_module(config: ZkConfig) -> Module:
    servers = {"i": _servers}
    pairs = {"pair": _server_pairs}

    def unpack(fn):
        return lambda cfg, state, pair: fn(cfg, state, pair[0], pair[1])

    actions = [
        Action(
            "NodeCrash",
            node_crash,
            params=servers,
            reads=["state", "crash_budget"],
            writes=["state", "zab_state", "msgs", "crash_budget", *_VOLATILE_WRITES],
            # _volatile_reset seeds the post-crash vote from durable data
            # (_own_vote reads current_epoch and history).
            update_sources={"current_vote": ["current_epoch", "history"]},
        ),
        Action(
            "NodeRestart",
            node_restart,
            params=servers,
            reads=["state", "current_epoch", "history"],
            writes=["state", "zab_state", "current_vote", "vote_sent", "recv_votes"],
        ),
        Action(
            "PartitionStart",
            unpack(partition_start),
            params=pairs,
            reads=["state", "disconnected", "partition_budget"],
            writes=["disconnected", "msgs", "partition_budget"],
        ),
        Action(
            "PartitionHeal",
            unpack(partition_heal),
            params=pairs,
            reads=["disconnected"],
            writes=["disconnected"],
        ),
        Action(
            "FollowerShutdown",
            follower_shutdown,
            params=servers,
            reads=["state", "my_leader", "disconnected", "accepted_epoch", "queued_requests"],
            writes=["state", "zab_state", *_VOLATILE_WRITES],
            update_sources={"current_vote": ["current_epoch", "history"]},
        ),
        Action(
            "LeaderShutdown",
            leader_shutdown,
            params=servers,
            reads=["state", "my_leader", "disconnected"],
            writes=["state", "zab_state", *_VOLATILE_WRITES],
            update_sources={"current_vote": ["current_epoch", "history"]},
        ),
        Action(
            "DiscardStaleMessage",
            unpack(lambda cfg, s, i, j: discard_stale_message(cfg, s, i, j)),
            params={"pair": lambda cfg: [
                (i, j) for i in cfg.servers for j in cfg.servers if i != j
            ]},
            reads=["msgs", "state", "my_leader", "ackepoch_recv"],
            writes=["msgs"],
        ),
        Action(
            "MessageDelay",
            unpack(message_delay),
            params={"pair": lambda cfg: [
                (i, j) for i in cfg.servers for j in cfg.servers if i != j
            ]},
            reads=["msgs", "msg_fault_budget"],
            writes=["msgs", "msg_fault_budget"],
        ),
        Action(
            "MessageDuplicate",
            unpack(message_duplicate),
            params={"pair": lambda cfg: [
                (i, j) for i in cfg.servers for j in cfg.servers if i != j
            ]},
            reads=["msgs", "msg_fault_budget"],
            writes=["msgs", "msg_fault_budget"],
        ),
    ]
    return Module("Faults", actions)


# --- campaign fault schedules ------------------------------------------------

# FaultSchedule and the role placeholders now live in
# repro.system.plugin; they are re-imported above so existing call sites
# (tests, campaign code) keep working unchanged.

#: The canned fault matrix a campaign crosses with its scenario prefixes.
FAULT_SCHEDULES: Tuple[FaultSchedule, ...] = (
    FaultSchedule("none"),
    FaultSchedule(
        "crash-leader", (("NodeCrash", (("i", _ROLE_LEADER),)),)
    ),
    FaultSchedule(
        "crash-follower", (("NodeCrash", (("i", _ROLE_FOLLOWER),)),)
    ),
    FaultSchedule(
        "crash-restart-follower",
        (
            ("NodeCrash", (("i", _ROLE_FOLLOWER),)),
            ("NodeRestart", (("i", _ROLE_FOLLOWER),)),
        ),
    ),
    FaultSchedule(
        "partition", (("PartitionStart", (("pair", _ROLE_PAIR),)),)
    ),
    FaultSchedule(
        "partition-shutdown",
        (
            ("PartitionStart", (("pair", _ROLE_PAIR),)),
            ("FollowerShutdown", (("i", _ROLE_FOLLOWER),)),
        ),
    ),
    # The message-channel lane: put traffic in flight on the leader ->
    # follower link, then perturb it.  Delay needs >= 2 in-flight
    # messages, which only sync traffic (DIFF/TRUNC packets + NEWLEADER
    # from LeaderSyncFollower) guarantees; duplication needs just one,
    # which a client request's PROPOSAL provides.  New schedules append
    # here (at the end) so existing cells keep their CRC-derived walk
    # seeds.
    FaultSchedule(
        "message-delay",
        (
            ("LeaderSyncFollower", (("pair", _ROLE_ORDERED_PAIR),)),
            ("MessageDelay", (("pair", _ROLE_LINK),)),
        ),
    ),
    FaultSchedule(
        "message-duplicate",
        (
            ("LeaderProcessRequest", (("i", _ROLE_LEADER),)),
            ("MessageDuplicate", (("pair", _ROLE_LINK),)),
        ),
    ),
)


def fault_schedules() -> Tuple[FaultSchedule, ...]:
    """The canned fault schedules, in matrix order."""
    return FAULT_SCHEDULES


def fault_schedule(name: str) -> FaultSchedule:
    for schedule in FAULT_SCHEDULES:
        if schedule.name == name:
            return schedule
    raise KeyError(
        f"unknown fault schedule {name!r}; options: "
        f"{[s.name for s in FAULT_SCHEDULES]}"
    )
