"""The Zab protocol specification (§2.1.1) and the improved protocol (§5.4).

This is the *protocol-level* model: it follows the pen-and-paper Zab of
Junqueira et al. with a leader oracle for Phase 1 (the paper's protocol
specification also uses one), full-history NEWLEADER messages (Figure 1),
and no implementation optimizations.  Three variants:

- ``original``: Step f.2.1 is atomic -- the follower updates its epoch
  and accepts the leader's history in one step, as the Zab paper demands.
- ``improved``: the §5.4 revision -- the atomicity requirement is
  replaced by an *order*: the follower persists the history first and
  updates the epoch second, tracked by ``servingState``.
- ``epoch_first``: the ablation -- the non-atomic update in the order
  ZooKeeper actually implemented (epoch first).  Model checking shows this
  violates I-8, which is exactly why the implementation was buggy.

All three share the ghost variables of :mod:`repro.zab.invariants`, so the
ten protocol invariants of Table 2 apply unchanged.
"""

from __future__ import annotations

from typing import Optional

from repro.tla.action import Action
from repro.tla.module import Module
from repro.tla.spec import Specification
from repro.tla.state import Schema, State
from repro.tla.values import Rec, Txn, Zxid, last_zxid
from repro.zab.invariants import protocol_invariants

VARIANTS = ("original", "improved", "epoch_first")

LOOKING, FOLLOWING, LEADING, DOWN = "LOOKING", "FOLLOWING", "LEADING", "DOWN"

VARIABLES = (
    "phase",            # per server: ELECTION/SYNC/BROADCAST role marker
    "role",             # LOOKING / FOLLOWING / LEADING / DOWN
    "epoch",            # f.p in the Zab paper: last NEWEPOCH acknowledged
    "current_epoch",    # f.a: last NEWLEADER acknowledged
    "history",
    "last_committed",
    "my_leader",
    "serving_state",    # §5.4: tracks the history/epoch update order
    "synced",           # leader: followers that ACKed NEWLEADER
    "msgs",
    "crash_budget",
    "txn_count",
    "proposal_acks",
    # ghosts shared with repro.zab.invariants
    "g_delivered",
    "g_proposed",
    "g_leaders",
    "g_established",
    "g_participants",
    "g_committed",
    # alias required by the shared invariants (zab_state of the impl spec)
    "zab_state",
)

SCHEMA = Schema(VARIABLES)


class ZabConfig:
    """Protocol-model bounds (servers / txns / crashes / epochs)."""

    def __init__(
        self,
        n_servers: int = 3,
        max_txns: int = 1,
        max_crashes: int = 1,
        max_epoch: int = 3,
        variant: str = "original",
    ):
        if variant not in VARIANTS:
            raise ValueError(f"variant must be one of {VARIANTS}")
        self.n_servers = n_servers
        self.max_txns = max_txns
        self.max_crashes = max_crashes
        self.max_epoch = max_epoch
        self.variant = variant
        self.servers = tuple(range(n_servers))
        self.quorum_size = n_servers // 2 + 1

    def is_quorum(self, members) -> bool:
        return len(set(members)) >= self.quorum_size

    def quorums(self):
        from itertools import combinations

        out = []
        for size in range(self.quorum_size, self.n_servers + 1):
            out.extend(combinations(self.servers, size))
        return tuple(out)


def _per(config, value):
    return tuple(value for _ in config.servers)


def init(config: ZabConfig):
    n = config.n_servers
    empty_row = tuple(() for _ in range(n))
    return [
        State.make(
            SCHEMA,
            phase=_per(config, "ELECTION"),
            role=_per(config, LOOKING),
            epoch=_per(config, 0),
            current_epoch=_per(config, 0),
            history=_per(config, ()),
            last_committed=_per(config, 0),
            my_leader=_per(config, -1),
            serving_state=_per(config, "INITIAL"),
            synced=_per(config, frozenset()),
            msgs=tuple(empty_row for _ in range(n)),
            crash_budget=config.max_crashes,
            txn_count=0,
            proposal_acks=_per(config, ()),
            g_delivered=_per(config, ()),
            g_proposed=frozenset(),
            g_leaders=(),
            g_established=(),
            g_participants=(),
            g_committed=(),
            zab_state=_per(config, "ELECTION"),
        )
    ]


def _up(vec, i, value):
    return vec[:i] + (value,) + vec[i + 1 :]


def _send(msgs, src, dst, *messages):
    row = msgs[src]
    row = row[:dst] + (row[dst] + tuple(messages),) + row[dst + 1 :]
    return msgs[:src] + (row,) + msgs[src + 1 :]


def _peek(state, src, dst):
    channel = state["msgs"][src][dst]
    return channel[0] if channel else None


def _pop(msgs, src, dst):
    row = msgs[src]
    row = row[:dst] + (row[dst][1:],) + row[dst + 1 :]
    return msgs[:src] + (row,) + msgs[src + 1 :]


def _clear_server(msgs, server):
    n = len(msgs)
    out = []
    for src in range(n):
        if src == server:
            out.append(tuple(() for _ in range(n)))
        else:
            row = msgs[src]
            out.append(row[:server] + ((),) + row[server + 1 :])
    return tuple(out)


def _deliver(state, i, txns):
    current = state["g_delivered"][i]
    present = set(current)
    added = tuple(t for t in txns if t not in present)
    return _up(state["g_delivered"], i, current + added)


def _commit_globally(state, txns):
    present = set(state["g_committed"])
    return state["g_committed"] + tuple(t for t in txns if t not in present)


# --- Phase 1: leader oracle --------------------------------------------------

def election_oracle(config: ZabConfig, state, i: int, quorum):
    """The Zab paper's assumed leader oracle, refined with the correctness
    requirement that the prospective leader holds the most recent history
    in the quorum (epoch first, then zxid -- as in ZooKeeper)."""
    members = set(quorum)
    if i not in members or not config.is_quorum(members):
        return None
    if any(state["role"][j] != LOOKING for j in members):
        return None
    creds = lambda j: (
        state["current_epoch"][j],
        last_zxid(state["history"][j]),
        j,
    )
    if any(creds(j) > creds(i) for j in members):
        return None
    new_epoch = max(state["epoch"][j] for j in members) + 1
    if new_epoch > config.max_epoch:
        return None
    n = config.n_servers
    msgs = state["msgs"]
    # The prospective leader sends NEWLEADER(e', leader history) to the
    # quorum (Phase 2 start; Phase 1's CEPOCH/NEWEPOCH is folded into the
    # oracle, as in the paper's protocol spec).
    for j in members:
        if j != i:
            msgs = _send(
                msgs,
                i,
                j,
                Rec(
                    mtype="NEWLEADER",
                    epoch=new_epoch,
                    hist=state["history"][i],
                ),
            )
    return {
        "role": tuple(
            LEADING if s == i else (FOLLOWING if s in members else state["role"][s])
            for s in range(n)
        ),
        "phase": tuple(
            "SYNC" if s in members else state["phase"][s] for s in range(n)
        ),
        "zab_state": tuple(
            "SYNCHRONIZATION" if s in members else state["zab_state"][s]
            for s in range(n)
        ),
        "epoch": tuple(
            new_epoch if s in members else state["epoch"][s] for s in range(n)
        ),
        "my_leader": tuple(
            i if s in members else state["my_leader"][s] for s in range(n)
        ),
        "current_epoch": _up(state["current_epoch"], i, new_epoch),
        "synced": _up(state["synced"], i, frozenset()),
        "proposal_acks": _up(state["proposal_acks"], i, ()),
        "msgs": msgs,
    }


# --- Phase 2: synchronization -------------------------------------------------

def _accept_guard(config, state, i, j):
    msg = _peek(state, j, i)
    if msg is None or msg.mtype != "NEWLEADER":
        return None
    if state["role"][i] != FOLLOWING or state["my_leader"][i] != j:
        return None
    if msg.epoch != state["epoch"][i]:
        return None
    return msg


def follower_accept_newleader(config: ZabConfig, state, i: int, j: int):
    """Step f.2.1, atomic (the original protocol): set f.a = e', accept
    the leader's history, and acknowledge."""
    if config.variant != "original":
        return None
    msg = _accept_guard(config, state, i, j)
    if msg is None or state["current_epoch"][i] == msg.epoch:
        return None
    msgs = _pop(state["msgs"], j, i)
    msgs = _send(msgs, i, j, Rec(mtype="ACKLD", epoch=msg.epoch))
    return {
        "msgs": msgs,
        "current_epoch": _up(state["current_epoch"], i, msg.epoch),
        "history": _up(state["history"], i, msg.hist),
        "last_committed": _up(
            state["last_committed"],
            i,
            min(state["last_committed"][i], len(msg.hist)),
        ),
    }


def follower_update_history(config: ZabConfig, state, i: int, j: int):
    """§5.4, step 1 of the split: persist the leader's history first."""
    if config.variant != "improved":
        return None
    msg = _accept_guard(config, state, i, j)
    if msg is None or state["serving_state"][i] == "HISTORY_SYNCED":
        return None
    if state["current_epoch"][i] == msg.epoch:
        return None
    return {
        "history": _up(state["history"], i, msg.hist),
        "last_committed": _up(
            state["last_committed"],
            i,
            min(state["last_committed"][i], len(msg.hist)),
        ),
        "serving_state": _up(state["serving_state"], i, "HISTORY_SYNCED"),
    }


def follower_update_epoch(config: ZabConfig, state, i: int, j: int):
    """§5.4, step 2: update f.a only after the history is on disk, then
    acknowledge NEWLEADER."""
    if config.variant != "improved":
        return None
    msg = _accept_guard(config, state, i, j)
    if msg is None or state["serving_state"][i] != "HISTORY_SYNCED":
        return None
    msgs = _pop(state["msgs"], j, i)
    msgs = _send(msgs, i, j, Rec(mtype="ACKLD", epoch=msg.epoch))
    return {
        "msgs": msgs,
        "current_epoch": _up(state["current_epoch"], i, msg.epoch),
        "serving_state": _up(state["serving_state"], i, "INITIAL"),
    }


def follower_update_epoch_first(config: ZabConfig, state, i: int, j: int):
    """The ablation: the non-atomic order ZooKeeper implemented (epoch
    before history).  A crash between the two steps leaves a stale history
    under a new epoch -- the protocol-level root cause of ZK-4643."""
    if config.variant != "epoch_first":
        return None
    msg = _accept_guard(config, state, i, j)
    if msg is None or state["current_epoch"][i] == msg.epoch:
        return None
    return {
        "current_epoch": _up(state["current_epoch"], i, msg.epoch),
        "serving_state": _up(state["serving_state"], i, "EPOCH_SET"),
    }


def follower_update_history_second(config: ZabConfig, state, i: int, j: int):
    if config.variant != "epoch_first":
        return None
    msg = _accept_guard(config, state, i, j)
    if msg is None or state["serving_state"][i] != "EPOCH_SET":
        return None
    msgs = _pop(state["msgs"], j, i)
    msgs = _send(msgs, i, j, Rec(mtype="ACKLD", epoch=msg.epoch))
    return {
        "msgs": msgs,
        "history": _up(state["history"], i, msg.hist),
        "last_committed": _up(
            state["last_committed"],
            i,
            min(state["last_committed"][i], len(msg.hist)),
        ),
        "serving_state": _up(state["serving_state"], i, "INITIAL"),
    }


def leader_process_ackld(config: ZabConfig, state, i: int, j: int):
    """Step l.2.2: with a quorum of ACKs the leader commits its initial
    history and the epoch becomes established."""
    msg = _peek(state, j, i)
    if msg is None or msg.mtype != "ACKLD" or state["role"][i] != LEADING:
        return None
    if msg.epoch != state["current_epoch"][i]:
        return None
    synced = state["synced"][i] | {j}
    updates = {
        "msgs": _pop(state["msgs"], j, i),
        "synced": _up(state["synced"], i, synced),
    }
    already = any(e == msg.epoch for e, _ in state["g_leaders"])
    if config.is_quorum(synced | {i}) and not already:
        history = state["history"][i]
        committed_before = state["g_committed"]
        updates["last_committed"] = _up(
            state["last_committed"], i, len(history)
        )
        updates["g_delivered"] = _deliver(
            state, i, history[state["last_committed"][i] :]
        )
        updates["g_committed"] = _commit_globally(
            state, history[state["last_committed"][i] :]
        )
        updates["g_established"] = state["g_established"] + (
            Rec(epoch=msg.epoch, initial=history, committed=committed_before),
        )
        updates["g_leaders"] = state["g_leaders"] + ((msg.epoch, i),)
        updates["g_participants"] = state["g_participants"] + (
            (msg.epoch, frozenset(synced | {i})),
        )
        updates["phase"] = _up(state["phase"], i, "BROADCAST")
        updates["zab_state"] = _up(state["zab_state"], i, "BROADCAST")
        msgs = updates["msgs"]
        for f in synced:
            msgs = _send(
                msgs, i, f, Rec(mtype="COMMITLD", count=len(history))
            )
        updates["msgs"] = msgs
    elif already:
        msgs = _send(
            updates["msgs"],
            i,
            j,
            Rec(mtype="COMMITLD", count=state["last_committed"][i]),
        )
        updates["msgs"] = msgs
        updates["g_participants"] = tuple(
            (e, (m | {j}) if e == msg.epoch else m)
            for e, m in state["g_participants"]
        )
    return updates


def follower_process_commitld(config: ZabConfig, state, i: int, j: int):
    """Step f.2.2: deliver the initial history and start Broadcast."""
    msg = _peek(state, j, i)
    if msg is None or msg.mtype != "COMMITLD":
        return None
    if state["role"][i] != FOLLOWING or state["my_leader"][i] != j:
        return None
    count = min(msg.count, len(state["history"][i]))
    newly = state["history"][i][state["last_committed"][i] : count]
    return {
        "msgs": _pop(state["msgs"], j, i),
        "last_committed": _up(
            state["last_committed"],
            i,
            max(state["last_committed"][i], count),
        ),
        "g_delivered": _deliver(state, i, newly),
        "g_committed": _commit_globally(state, newly),
        "phase": _up(state["phase"], i, "BROADCAST"),
        "zab_state": _up(state["zab_state"], i, "BROADCAST"),
    }


# --- Phase 3: broadcast ---------------------------------------------------------

def leader_propose(config: ZabConfig, state, i: int):
    if state["role"][i] != LEADING or state["phase"][i] != "BROADCAST":
        return None
    if state["txn_count"] >= config.max_txns:
        return None
    epoch = state["current_epoch"][i]
    counters = [
        t.zxid.counter for t in state["history"][i] if t.zxid.epoch == epoch
    ]
    zxid = Zxid(epoch, max(counters) + 1 if counters else 1)
    txn = Txn(zxid, state["txn_count"] + 1)
    msgs = state["msgs"]
    for f in state["synced"][i]:
        msgs = _send(msgs, i, f, Rec(mtype="PROPOSE", txn=txn))
    return {
        "msgs": msgs,
        "history": _up(state["history"], i, state["history"][i] + (txn,)),
        "txn_count": state["txn_count"] + 1,
        "g_proposed": state["g_proposed"] | frozenset((txn,)),
        "proposal_acks": _up(
            state["proposal_acks"],
            i,
            state["proposal_acks"][i] + ((zxid, frozenset((i,))),),
        ),
    }


def follower_accept_proposal(config: ZabConfig, state, i: int, j: int):
    msg = _peek(state, j, i)
    if msg is None or msg.mtype != "PROPOSE":
        return None
    if state["role"][i] != FOLLOWING or state["my_leader"][i] != j:
        return None
    if state["phase"][i] != "BROADCAST":
        return None
    msgs = _pop(state["msgs"], j, i)
    msgs = _send(msgs, i, j, Rec(mtype="ACKTXN", zxid=msg.txn.zxid))
    return {
        "msgs": msgs,
        "history": _up(state["history"], i, state["history"][i] + (msg.txn,)),
    }


def leader_commit(config: ZabConfig, state, i: int, j: int):
    msg = _peek(state, j, i)
    if msg is None or msg.mtype != "ACKTXN" or state["role"][i] != LEADING:
        return None
    msgs = _pop(state["msgs"], j, i)
    outstanding = state["proposal_acks"][i]
    entry = next(
        (k for k, (z, _) in enumerate(outstanding) if z == msg.zxid), None
    )
    if entry is None:
        return {"msgs": msgs}
    zxid, ackers = outstanding[entry]
    ackers = ackers | {j}
    committed = state["last_committed"][i]
    history = state["history"][i]
    idx = next(
        (k for k, t in enumerate(history) if t.zxid == zxid), None
    )
    updates = {"msgs": msgs}
    if config.is_quorum(ackers) and idx == committed:
        newly = history[committed : committed + 1]
        updates["proposal_acks"] = _up(
            state["proposal_acks"],
            i,
            outstanding[:entry] + outstanding[entry + 1 :],
        )
        updates["last_committed"] = _up(
            state["last_committed"], i, committed + 1
        )
        updates["g_delivered"] = _deliver(state, i, newly)
        updates["g_committed"] = _commit_globally(state, newly)
        out = msgs
        for f in state["synced"][i]:
            out = _send(out, i, f, Rec(mtype="COMMIT", zxid=zxid))
        updates["msgs"] = out
    else:
        updates["proposal_acks"] = _up(
            state["proposal_acks"],
            i,
            outstanding[:entry] + ((zxid, ackers),) + outstanding[entry + 1 :],
        )
    return updates


def follower_deliver(config: ZabConfig, state, i: int, j: int):
    msg = _peek(state, j, i)
    if msg is None or msg.mtype != "COMMIT":
        return None
    if state["role"][i] != FOLLOWING or state["my_leader"][i] != j:
        return None
    history = state["history"][i]
    committed = state["last_committed"][i]
    if committed >= len(history) or history[committed].zxid != msg.zxid:
        return None
    newly = history[committed : committed + 1]
    return {
        "msgs": _pop(state["msgs"], j, i),
        "last_committed": _up(state["last_committed"], i, committed + 1),
        "g_delivered": _deliver(state, i, newly),
        "g_committed": _commit_globally(state, newly),
    }


# --- faults ----------------------------------------------------------------------

def crash(config: ZabConfig, state, i: int):
    if state["role"][i] == DOWN or state["crash_budget"] <= 0:
        return None
    return {
        "role": _up(state["role"], i, DOWN),
        "phase": _up(state["phase"], i, "ELECTION"),
        "zab_state": _up(state["zab_state"], i, "ELECTION"),
        "my_leader": _up(state["my_leader"], i, -1),
        "serving_state": _up(state["serving_state"], i, "INITIAL"),
        "synced": _up(state["synced"], i, frozenset()),
        "proposal_acks": _up(state["proposal_acks"], i, ()),
        "msgs": _clear_server(state["msgs"], i),
        "crash_budget": state["crash_budget"] - 1,
    }


def restart(config: ZabConfig, state, i: int):
    if state["role"][i] != DOWN:
        return None
    return {
        "role": _up(state["role"], i, LOOKING),
        "phase": _up(state["phase"], i, "ELECTION"),
        "zab_state": _up(state["zab_state"], i, "ELECTION"),
    }


def follower_abandon(config: ZabConfig, state, i: int):
    """A follower abandons a dead or superseded leader."""
    if state["role"][i] != FOLLOWING:
        return None
    leader = state["my_leader"][i]
    if leader < 0:
        return None
    if state["role"][leader] == LEADING and state["epoch"][leader] == state["epoch"][i]:
        return None
    return {
        "role": _up(state["role"], i, LOOKING),
        "phase": _up(state["phase"], i, "ELECTION"),
        "zab_state": _up(state["zab_state"], i, "ELECTION"),
        "my_leader": _up(state["my_leader"], i, -1),
        "serving_state": _up(state["serving_state"], i, "INITIAL"),
    }


def leader_abandon(config: ZabConfig, state, i: int):
    """A leader without a quorum of followers steps down."""
    if state["role"][i] != LEADING:
        return None
    followers = sum(
        1
        for j in config.servers
        if j != i
        and state["role"][j] == FOLLOWING
        and state["my_leader"][j] == i
    )
    if followers + 1 >= config.quorum_size:
        return None
    return {
        "role": _up(state["role"], i, LOOKING),
        "phase": _up(state["phase"], i, "ELECTION"),
        "zab_state": _up(state["zab_state"], i, "ELECTION"),
        "my_leader": _up(state["my_leader"], i, -1),
        "synced": _up(state["synced"], i, frozenset()),
        "proposal_acks": _up(state["proposal_acks"], i, ()),
    }


def drop_stale(config: ZabConfig, state, i: int, j: int):
    """Discard a message whose receiver left the sender's epoch."""
    msg = _peek(state, j, i)
    if msg is None or state["role"][i] == DOWN:
        return None
    if msg.mtype in ("NEWLEADER", "COMMITLD", "PROPOSE", "COMMIT"):
        if state["my_leader"][i] != j:
            return {"msgs": _pop(state["msgs"], j, i)}
        return None
    if msg.mtype in ("ACKLD", "ACKTXN") and state["role"][i] != LEADING:
        return {"msgs": _pop(state["msgs"], j, i)}
    return None


def zab_spec(config: Optional[ZabConfig] = None) -> Specification:
    """Build the protocol specification for the configured variant."""
    config = config or ZabConfig()
    servers = {"i": lambda cfg: cfg.servers}
    pairs = {
        "pair": lambda cfg: [
            (i, j) for i in cfg.servers for j in cfg.servers if i != j
        ]
    }

    def pairwise(fn):
        return lambda cfg, s, pair: fn(cfg, s, pair[0], pair[1])

    election = Module(
        "Election",
        [
            Action(
                "ElectionOracle",
                lambda cfg, s, i, Q: election_oracle(cfg, s, i, Q),
                params={
                    "i": lambda cfg: cfg.servers,
                    "Q": lambda cfg: cfg.quorums(),
                },
                reads=["role", "current_epoch", "history", "epoch"],
                writes=[
                    "role",
                    "phase",
                    "zab_state",
                    "epoch",
                    "my_leader",
                    "current_epoch",
                    "synced",
                    "proposal_acks",
                    "msgs",
                ],
            )
        ],
    )
    sync_actions = [
        Action(
            "FollowerAcceptNEWLEADER",
            pairwise(follower_accept_newleader),
            params=pairs,
            reads=["msgs", "role", "my_leader", "epoch", "current_epoch"],
            writes=["msgs", "current_epoch", "history", "last_committed"],
        ),
        Action(
            "FollowerUpdateHistory",
            pairwise(follower_update_history),
            params=pairs,
            reads=["msgs", "role", "my_leader", "epoch", "current_epoch", "serving_state"],
            writes=["history", "last_committed", "serving_state"],
        ),
        Action(
            "FollowerUpdateEpoch",
            pairwise(follower_update_epoch),
            params=pairs,
            reads=["msgs", "role", "my_leader", "epoch", "serving_state"],
            writes=["msgs", "current_epoch", "serving_state"],
        ),
        Action(
            "FollowerUpdateEpochFirst",
            pairwise(follower_update_epoch_first),
            params=pairs,
            reads=["msgs", "role", "my_leader", "epoch", "current_epoch", "serving_state"],
            writes=["current_epoch", "serving_state"],
        ),
        Action(
            "FollowerUpdateHistorySecond",
            pairwise(follower_update_history_second),
            params=pairs,
            reads=["msgs", "role", "my_leader", "epoch", "serving_state"],
            writes=["msgs", "history", "last_committed", "serving_state"],
        ),
        Action(
            "LeaderProcessACKLD",
            pairwise(leader_process_ackld),
            params=pairs,
            reads=[
                "msgs",
                "role",
                "current_epoch",
                "synced",
                "history",
                "last_committed",
                "g_leaders",
                "g_committed",
            ],
            writes=[
                "msgs",
                "synced",
                "last_committed",
                "g_delivered",
                "g_committed",
                "g_established",
                "g_leaders",
                "g_participants",
                "phase",
                "zab_state",
            ],
        ),
        Action(
            "FollowerProcessCOMMITLD",
            pairwise(follower_process_commitld),
            params=pairs,
            reads=["msgs", "role", "my_leader", "history", "last_committed"],
            writes=[
                "msgs",
                "last_committed",
                "g_delivered",
                "g_committed",
                "phase",
                "zab_state",
            ],
        ),
    ]
    sync = Module("Synchronization", sync_actions)
    broadcast = Module(
        "Broadcast",
        [
            Action(
                "LeaderPropose",
                leader_propose,
                params=servers,
                reads=["role", "phase", "txn_count", "current_epoch", "history", "synced"],
                writes=["msgs", "history", "txn_count", "g_proposed", "proposal_acks"],
            ),
            Action(
                "FollowerAcceptProposal",
                pairwise(follower_accept_proposal),
                params=pairs,
                reads=["msgs", "role", "my_leader", "phase", "history"],
                writes=["msgs", "history"],
            ),
            Action(
                "LeaderCommit",
                pairwise(leader_commit),
                params=pairs,
                reads=[
                    "msgs",
                    "role",
                    "proposal_acks",
                    "last_committed",
                    "history",
                    "synced",
                ],
                writes=[
                    "msgs",
                    "proposal_acks",
                    "last_committed",
                    "g_delivered",
                    "g_committed",
                ],
            ),
            Action(
                "FollowerDeliver",
                pairwise(follower_deliver),
                params=pairs,
                reads=["msgs", "role", "my_leader", "history", "last_committed"],
                writes=[
                    "msgs",
                    "last_committed",
                    "g_delivered",
                    "g_committed",
                ],
            ),
        ],
    )
    faults = Module(
        "Faults",
        [
            Action(
                "NodeCrash",
                crash,
                params=servers,
                reads=["role", "crash_budget"],
                writes=[
                    "role",
                    "phase",
                    "zab_state",
                    "my_leader",
                    "serving_state",
                    "synced",
                    "proposal_acks",
                    "msgs",
                    "crash_budget",
                ],
            ),
            Action(
                "NodeRestart",
                restart,
                params=servers,
                reads=["role"],
                writes=["role", "phase", "zab_state"],
            ),
            Action(
                "FollowerAbandon",
                follower_abandon,
                params=servers,
                reads=["role", "my_leader", "epoch"],
                writes=["role", "phase", "zab_state", "my_leader", "serving_state"],
            ),
            Action(
                "LeaderAbandon",
                leader_abandon,
                params=servers,
                reads=["role", "my_leader"],
                writes=[
                    "role",
                    "phase",
                    "zab_state",
                    "my_leader",
                    "synced",
                    "proposal_acks",
                ],
            ),
            Action(
                "DropStale",
                pairwise(drop_stale),
                params=pairs,
                reads=["msgs", "role", "my_leader"],
                writes=["msgs"],
            ),
        ],
    )
    return Specification(
        f"Zab-{config.variant}",
        SCHEMA,
        init,
        [election, sync, broadcast, faults],
        protocol_invariants(),
        config,
        constraint=lambda cfg, s: max(s["epoch"]) <= cfg.max_epoch,
    )
