"""The ten protocol-level safety invariants of Zab (Table 2, I-1..I-10).

These predicates are written against the ghost variables that both the Zab
protocol specification and the ZooKeeper system specification maintain:

- ``g_delivered``  per-server tuple of delivered (committed) txns, in
  delivery order;
- ``g_proposed``   frozenset of all txns broadcast by any primary;
- ``g_leaders``    tuple of ``(epoch, server)`` establishment records;
- ``g_established`` tuple of ``Rec(epoch, initial, committed)`` records:
  the initial history of the epoch and the globally-committed sequence at
  the moment of establishment;
- ``g_committed``  the global commit sequence.

plus the real variables ``history``, ``current_epoch``, ``zab_state`` and
``g_participants`` for I-10.  All invariants are pure state predicates, so
they can be checked on every state the model checker visits.
"""

from __future__ import annotations

from itertools import combinations
from typing import List, Tuple

from repro.tla.spec import Invariant
from repro.tla.values import Txn, comparable, is_prefix


def _delivered(state) -> Tuple[Tuple[Txn, ...], ...]:
    return state["g_delivered"]


def i1_primary_uniqueness(config, state) -> bool:
    """I-1: at most one established leader for each epoch."""
    seen = {}
    for epoch, server in state["g_leaders"]:
        if epoch in seen and seen[epoch] != server:
            return False
        seen[epoch] = server
    return True


def i2_integrity(config, state) -> bool:
    """I-2: a delivered txn was broadcast by some primary."""
    proposed = state["g_proposed"]
    for delivered in _delivered(state):
        for txn in delivered:
            if txn not in proposed:
                return False
    return True


def i3_agreement(config, state) -> bool:
    """I-3: delivered sets of any two processes are comparable (one is a
    subset of the other) -- the instantaneous form of Zab agreement."""
    sets = [frozenset(d) for d in _delivered(state)]
    for left, right in combinations(sets, 2):
        if not (left <= right or right <= left):
            return False
    return True


def i4_total_order(config, state) -> bool:
    """I-4: if some process delivers t before t', any process delivering
    t' also delivers t, and before t'."""
    delivered = _delivered(state)
    for di in delivered:
        position = {txn: k for k, txn in enumerate(di)}
        for dj in delivered:
            if dj is di:
                continue
            for k, t_prime in enumerate(dj):
                if t_prime not in position:
                    continue
                # every txn before t_prime in di must be before it in dj
                for txn in di[: position[t_prime]]:
                    if txn not in dj[:k]:
                        return False
    return True


def i5_local_primary_order(config, state) -> bool:
    """I-5: same-epoch broadcasts are delivered in broadcast (counter)
    order, with no same-epoch predecessor skipped."""
    proposed = state["g_proposed"]
    for delivered in _delivered(state):
        position = {txn: k for k, txn in enumerate(delivered)}
        for t_prime in delivered:
            for txn in proposed:
                if (
                    txn.zxid.epoch == t_prime.zxid.epoch
                    and txn.zxid.counter < t_prime.zxid.counter
                ):
                    if txn not in position:
                        return False
                    if position[txn] > position[t_prime]:
                        return False
    return True


def i6_global_primary_order(config, state) -> bool:
    """I-6: epochs are non-decreasing along any delivery sequence."""
    for delivered in _delivered(state):
        for earlier, later in zip(delivered, delivered[1:]):
            if earlier.zxid.epoch > later.zxid.epoch:
                return False
    return True


def i7_primary_integrity(config, state) -> bool:
    """I-7: a primary that broadcasts in epoch e has delivered every
    older-epoch txn that anyone delivered, before its own broadcasts."""
    proposed = state["g_proposed"]
    leaders = dict(state["g_leaders"])  # epoch -> server
    delivered = _delivered(state)
    for epoch, leader in leaders.items():
        epoch_txns = [t for t in proposed if t.zxid.epoch == epoch]
        if not epoch_txns:
            continue
        leader_delivered = delivered[leader]
        leader_set = set(leader_delivered)
        first_own = next(
            (
                k
                for k, txn in enumerate(leader_delivered)
                if txn.zxid.epoch == epoch
            ),
            len(leader_delivered),
        )
        for other in delivered:
            for t_prime in other:
                if t_prime.zxid.epoch >= epoch:
                    continue
                if t_prime not in leader_set:
                    return False
                if leader_delivered.index(t_prime) >= first_own and any(
                    txn.zxid.epoch == epoch for txn in leader_set
                ):
                    return False
    return True


def i8_initial_history_integrity(config, state) -> bool:
    """I-8: the initial history of every established epoch extends the
    globally committed sequence at establishment time (I_e ⊑ I_e' in the
    paper; operationally each establishment record must contain the commit
    sequence as a prefix, which makes the violation point the exact
    establishment step)."""
    for record in state["g_established"]:
        if not is_prefix(record.committed, record.initial):
            return False
    return True


def i9_commit_consistency(config, state) -> bool:
    """I-9: once a process delivers txns of its current (established)
    epoch, its delivery sequence extends that epoch's initial history."""
    established = {rec.epoch: rec for rec in state["g_established"]}
    for server, delivered in enumerate(_delivered(state)):
        epoch = state["current_epoch"][server]
        record = established.get(epoch)
        if record is None:
            continue
        if any(txn.zxid.epoch == epoch for txn in delivered):
            if not is_prefix(record.initial, delivered):
                return False
    return True


def i10_history_consistency(config, state) -> bool:
    """I-10: histories of any two servers that participate in epoch e and
    are actively serving in e (BROADCAST) are prefix-comparable."""
    histories = state["history"]
    current_epoch = state["current_epoch"]
    zab_state = state["zab_state"]
    for epoch, members in state["g_participants"]:
        active = [
            server
            for server in members
            if current_epoch[server] == epoch
            and zab_state[server] == "BROADCAST"
        ]
        for left, right in combinations(active, 2):
            if not comparable(histories[left], histories[right]):
                return False
    return True


def protocol_invariants() -> List[Invariant]:
    """The ten protocol invariants, applicable at any granularity.

    Each entry declares the ghost/state variables its predicate reads
    (the dependency variables), which lets the exploration engine
    memoize verdicts per projection of the state onto those variables.
    """
    table = [
        ("I-1", "Primary uniqueness", i1_primary_uniqueness,
         ("g_leaders",)),
        ("I-2", "Integrity", i2_integrity,
         ("g_proposed", "g_delivered")),
        ("I-3", "Agreement", i3_agreement,
         ("g_delivered",)),
        ("I-4", "Total order", i4_total_order,
         ("g_delivered",)),
        ("I-5", "Local primary order", i5_local_primary_order,
         ("g_proposed", "g_delivered")),
        ("I-6", "Global primary order", i6_global_primary_order,
         ("g_delivered",)),
        ("I-7", "Primary integrity", i7_primary_integrity,
         ("g_proposed", "g_leaders", "g_delivered")),
        ("I-8", "Initial history integrity", i8_initial_history_integrity,
         ("g_established",)),
        ("I-9", "Commit consistency", i9_commit_consistency,
         ("g_established", "g_delivered", "current_epoch")),
        ("I-10", "History consistency", i10_history_consistency,
         ("history", "current_epoch", "zab_state", "g_participants")),
    ]
    return [
        Invariant(ident, name, fn, source="protocol", reads=frozenset(reads))
        for ident, name, fn, reads in table
    ]
