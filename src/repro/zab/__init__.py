"""The Zab protocol specification and its invariants (Table 2, I-1..I-10)."""

from repro.zab.invariants import protocol_invariants
from repro.zab.protocol import VARIANTS, ZabConfig, zab_spec

__all__ = ["VARIANTS", "ZabConfig", "protocol_invariants", "zab_spec"]
