"""Command-line interface: ``python -m repro <command>``.

Exposes the main workflows without writing Python:

- ``check``       model-check one of the Table 1 specifications
- ``conformance`` run conformance checking against the simulator
- ``campaign``    run a parallel conformance campaign over the
                  (grain x scenario x fault x seed) matrix of any
                  registered system plugin (``--system``)
- ``serve``       run the long-lived campaign server (streams
                  ``repro.campaign.event/1`` JSON-lines per request)
- ``client``      send one campaign request to a server and stream
                  its events to stdout
- ``worker``      join a socket-backend listener as a remote worker
- ``systems``     list the registered system plugins
- ``bugs``        hunt each of the six paper bugs (a mini Table 4)
- ``protocol``    verify the Zab protocol variants (§5.4)
- ``efforts``     print the Table 3 effort metrics
- ``lineage``     print the Figure 8 bug lineage

The ``campaign``/``serve``/``client`` trio all speak the same
serialized :class:`~repro.remix.request.CampaignRequest`:
``campaign --dry-run`` prints it, ``campaign --request FILE`` (or
``-`` for stdin) runs it, and ``serve``/``client`` move it over a
socket.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.checker import DEDUPE_MODES, STRATEGIES, ExplorationEngine, format_trace
from repro.zookeeper import ZkConfig, make_spec, zk4394_mask
from repro.zookeeper.specs import SELECTIONS


def _add_config_args(parser: argparse.ArgumentParser):
    parser.add_argument("--servers", type=int, default=3)
    parser.add_argument("--txns", type=int, default=1)
    parser.add_argument("--crashes", type=int, default=1)
    parser.add_argument("--partitions", type=int, default=0)
    parser.add_argument("--max-epoch", type=int, default=3)
    parser.add_argument("--max-states", type=int, default=500_000)
    parser.add_argument("--max-time", type=float, default=120.0)


def _add_engine_args(parser: argparse.ArgumentParser):
    parser.add_argument(
        "--strategy",
        choices=list(STRATEGIES),
        default="bfs",
        help="exploration strategy (default: bfs)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the parallel BFS / portfolio modes",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="seed for the random / portfolio strategies",
    )
    parser.add_argument(
        "--dedupe",
        choices=list(DEDUPE_MODES),
        default="rounds",
        help="cross-worker visited-set mode: 'rounds' merges at round "
        "barriers (bitwise-identical to sequential), 'shared' dedupes "
        "through a shared-memory visited table in real time (same "
        "states and violations, faster; also enables sharded DFS and "
        "the portfolio's shared walk pruning)",
    )
    parser.add_argument(
        "--debug-deps",
        action="store_true",
        help="cross-check memoized action outcomes against fresh "
        "evaluations (slow; validates reads/writes/update_sources "
        "declarations)",
    )
    parser.add_argument(
        "--compile",
        dest="compile_mode",
        choices=["auto", "on", "off"],
        default="auto",
        help="compiled successor kernels: 'auto' compiles when the "
        "static analyzer (repro lint) proves the spec's dependency "
        "declarations, 'on' forces compilation (trust declarations), "
        "'off' stays on the interpreted path (default: auto)",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print per-action-group memo hit/miss statistics after "
        "the run (guard, outcome and kernel counters)",
    )


def _engine(args, spec, **overrides) -> ExplorationEngine:
    kwargs = dict(
        strategy=getattr(args, "strategy", "bfs"),
        workers=getattr(args, "workers", 1),
        seed=getattr(args, "seed", 0),
        dedupe=getattr(args, "dedupe", "rounds"),
        debug=getattr(args, "debug_deps", False),
        compile_mode=getattr(args, "compile_mode", "auto"),
        max_states=args.max_states,
        max_time=args.max_time,
    )
    kwargs.update(overrides)
    return ExplorationEngine(spec, **kwargs)


def _print_stats(engine: ExplorationEngine) -> None:
    core = getattr(engine, "core", None)
    if core is None:
        print("(no memo statistics: engine ran without a compiled core)")
        return
    stats = core.memo_stats()
    print(json.dumps(stats, indent=2, sort_keys=True))


def _config(args) -> ZkConfig:
    return ZkConfig(
        n_servers=args.servers,
        max_txns=args.txns,
        max_crashes=args.crashes,
        max_partitions=args.partitions,
        max_epoch=args.max_epoch,
    )


def cmd_check(args) -> int:
    spec = make_spec(args.spec, _config(args))
    mask = None if args.unmask_zk4394 else zk4394_mask
    engine = _engine(args, spec, mask=mask)
    result = engine.run()
    print(result.summary())
    if getattr(args, "stats", False):
        _print_stats(engine)
    if result.found_violation and args.trace:
        print()
        print(format_trace(result.first_violation.trace))
    return 1 if result.found_violation else 0


def cmd_conformance(args) -> int:
    from repro.impl import Ensemble
    from repro.remix import ConformanceChecker
    from repro.zookeeper import V391

    spec = make_spec(args.spec, _config(args))
    checker = ConformanceChecker(
        spec,
        SELECTIONS[args.spec],
        lambda: Ensemble(args.servers, V391),
        seed=args.seed,
    )
    report = checker.run(traces=args.traces, max_steps=args.steps)
    print(report.summary())
    for discrepancy in report.discrepancies[:10]:
        print(f"  {discrepancy}")
    for bug in report.impl_bugs[:10]:
        print(f"  {bug}")
    return 0 if report.conforms else 1


def request_from_args(args):
    """Build a :class:`CampaignRequest` straight from the ``campaign``
    argparse namespace (the one flags->request seam; no per-flag
    plumbing anywhere else)."""
    from repro.remix.request import DIRECTIONS, CampaignRequest

    directions = (
        DIRECTIONS if args.directions == "both" else (args.directions,)
    )
    return CampaignRequest(
        system=args.system,
        directions=directions,
        grains=args.grains,
        scenarios=args.scenarios,
        faults=args.faults,
        seeds=args.seeds,
        traces=args.traces,
        max_steps=args.steps,
        seed=args.seed,
        workers=args.workers,
        backend=args.backend,
        budget=args.budget,
        adaptive=args.adaptive,
        shrink=args.shrink,
        task_timeout=args.task_timeout,
        task_retries=args.task_retries,
        auth_token=args.auth_token,
    )


def _load_request(source: str):
    """Read a serialized ``CampaignRequest`` from a file (``-`` =
    stdin).  Accepts either the bare request JSON or a server envelope
    ``{"request": {...}}``."""
    import json

    from repro.remix.request import CampaignRequest

    text = sys.stdin.read() if source == "-" else open(source).read()
    data = json.loads(text)
    if isinstance(data, dict) and "request" in data:
        data = data["request"]
    return CampaignRequest.from_json(data)


def cmd_campaign(args) -> int:
    import json

    from repro.remix import spec_cache
    from repro.remix.campaign import COMPAT_SCHEMAS, new_fingerprints, run_campaign
    from repro.remix.request import RequestError

    if args.spec_cache is not None:
        spec_cache.set_disk_cache_dir(args.spec_cache)
    try:
        request = (
            _load_request(args.request)
            if args.request
            else request_from_args(args)
        )
    except (RequestError, KeyError, ValueError, OSError) as error:
        message = error.args[0] if error.args else str(error)
        print(f"campaign: {message}", file=sys.stderr)
        return 2
    if args.resume and not args.journal:
        print("campaign: --resume requires --journal DIR", file=sys.stderr)
        return 2
    if args.dry_run:
        print(json.dumps(request.to_json(), indent=2))
        return 0
    baseline = None
    if args.baseline:
        # Load and validate before the (multi-minute) campaign runs: a
        # missing or stale baseline should fail in milliseconds.
        try:
            with open(args.baseline) as fh:
                baseline = json.load(fh)
        except (OSError, ValueError) as error:
            print(f"campaign: baseline {args.baseline}: {error}", file=sys.stderr)
            return 2
        if baseline.get("schema") not in COMPAT_SCHEMAS:
            print(
                f"campaign: baseline {args.baseline} has unsupported schema "
                f"{baseline.get('schema')!r} (expected one of "
                f"{list(COMPAT_SCHEMAS)})",
                file=sys.stderr,
            )
            return 2
    report = run_campaign(
        request, journal_dir=args.journal, resume=args.resume
    )
    payload = report.to_json()
    # Warm-start accounting goes to stderr so `--json -` stdout stays
    # pure JSON; disk hits > 0 means this invocation reused prefixes a
    # previous invocation persisted (the on-disk spec cache).
    cache_stats = spec_cache.stats()
    print(
        f"spec cache: {cache_stats['disk_hits']} disk hits, "
        f"{cache_stats['disk_misses']} disk misses, "
        f"{cache_stats['prefix_hits']} warm prefix reuses",
        file=sys.stderr,
    )
    if args.json_path == "-":
        print(json.dumps(payload, indent=2))
    else:
        print(report.summary())
        for finding in report.findings[:10]:
            line = f"  [{finding['fingerprint']}] {finding['detail']}"
            min_trace = finding.get("min_trace", {})
            if min_trace.get("status") == "ok":
                line += (
                    f" (minimized {min_trace['witness_steps']}"
                    f" -> {min_trace['steps']} steps)"
                )
            print(line)
        if len(report.findings) > 10:
            print(f"  ... ({len(report.findings) - 10} more)")
        if args.json_path:
            with open(args.json_path, "w") as fh:
                json.dump(payload, fh, indent=2)
                fh.write("\n")
            print(f"report written to {args.json_path}")
    if args.repros:
        # Keep stdout clean when the JSON report goes there.
        _write_repros(
            args.repros,
            report,
            stream=sys.stderr if args.json_path == "-" else sys.stdout,
        )
    if baseline is not None:
        fresh = new_fingerprints(report, baseline)
        # Keep stdout clean when the JSON report goes there.
        stream = sys.stderr if args.json_path == "-" else sys.stdout
        if fresh:
            print(
                f"NEW impl-bug fingerprints vs {args.baseline}: "
                f"{', '.join(fresh)}",
                file=sys.stderr,
            )
            return 2
        print(f"no new impl-bug fingerprints vs {args.baseline}", file=stream)
    return 0


def _write_repros(directory: str, report, stream=sys.stdout) -> None:
    """Dump one replayable repro JSON per finding (the nightly artifact
    uploaded next to the campaign report)."""
    import json
    import os

    os.makedirs(directory, exist_ok=True)
    for finding in report.findings:
        path = os.path.join(directory, f"{finding['fingerprint']}.json")
        with open(path, "w") as fh:
            json.dump(
                {
                    key: finding[key]
                    for key in (
                        "fingerprint",
                        "kind",
                        "grain",
                        "detail",
                        "witness",
                        "min_trace",
                    )
                    if key in finding
                },
                fh,
                indent=2,
            )
            fh.write("\n")
    print(
        f"{len(report.findings)} repro traces written to {directory}/",
        file=stream,
    )


def cmd_serve(args) -> int:
    import json

    from repro.remix import spec_cache
    from repro.remix.request import RequestError
    from repro.remix.service import CampaignServer, serve_request

    if args.spec_cache is not None:
        spec_cache.set_disk_cache_dir(args.spec_cache)
    if args.request:
        # One-shot offline mode: run the request in-process and stream
        # its repro.campaign.event/1 lines to stdout (no TCP involved).
        try:
            request = _load_request(args.request)
        except (RequestError, ValueError, OSError) as error:
            message = error.args[0] if error.args else str(error)
            print(f"serve: {message}", file=sys.stderr)
            return 2
        report = serve_request(
            request,
            lambda event: print(json.dumps(event), flush=True),
            heartbeat=args.heartbeat,
        )
        return 0 if report is not None else 1
    server = CampaignServer(
        host=args.host,
        port=args.port,
        heartbeat=args.heartbeat,
        max_requests=args.max_requests,
        request_timeout=args.request_timeout,
    )
    host, port = server.start()
    # The first stdout line announces the bound address (ephemeral
    # ports included), so scripts can connect without racing logs.
    print(
        json.dumps({"event": "serving", "host": host, "port": port}),
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover
        pass
    finally:
        server.stop()
    return 0


def cmd_client(args) -> int:
    import json
    import socket

    from repro.remix.request import RequestError

    try:
        request = _load_request(args.request)
    except (RequestError, ValueError, OSError) as error:
        message = error.args[0] if error.args else str(error)
        print(f"client: {message}", file=sys.stderr)
        return 2
    payload = {"request": request.to_json()}
    if args.deadline is not None:
        payload["deadline"] = args.deadline
    try:
        sock = socket.create_connection((args.host, args.port), timeout=30)
    except OSError as error:
        print(f"client: {args.host}:{args.port}: {error}", file=sys.stderr)
        return 2
    outcome = 1  # stream ended without a report
    with sock:
        sock.sendall((json.dumps(payload) + "\n").encode("utf-8"))
        sock.settimeout(None)
        with sock.makefile("r", encoding="utf-8") as stream:
            for line in stream:
                line = line.strip()
                if not line:
                    continue
                print(line, flush=True)
                try:
                    event = json.loads(line)
                except ValueError:
                    continue
                if event.get("event") == "report":
                    outcome = 0
                elif event.get("event") == "error":
                    outcome = 1
    return outcome


def cmd_worker(args) -> int:
    import os

    from repro.checker.backends.sockets import TOKEN_ENV, worker_main

    host, _, port = args.address.rpartition(":")
    if not host or not port.isdigit():
        print(f"worker: expected HOST:PORT, got {args.address!r}", file=sys.stderr)
        return 2
    # The token prefers the environment (how spawned workers get it,
    # keeping secrets out of `ps`); --auth-token overrides for hand-run
    # external workers.
    token = args.auth_token or os.environ.get(TOKEN_ENV) or None
    worker_main(host, int(port), token=token, reconnect=args.reconnect)
    return 0


def _hunt_bug(args, spec_name, config, family, instance, masked, variant):
    from repro.zookeeper.specs import build_spec

    if variant is not None:
        config = config.with_variant(variant)
    spec = build_spec(spec_name, SELECTIONS[spec_name], config)
    spec.invariants = [
        inv
        for inv in spec.invariants
        if inv.ident == family and (instance is None or inv.instance == instance)
    ]
    return _engine(args, spec, mask=zk4394_mask if masked else None).run()


def cmd_hunt(args) -> int:
    from repro.zookeeper import PR_1930

    hunts = [
        ("ZK-3023", "mSpec-3", dict(max_txns=1, max_crashes=1), "I-11",
         "ACK_UPTODATE_OUT_OF_SYNC", True, None),
        ("ZK-4394", "mSpec-1", dict(max_txns=1, max_crashes=1), "I-14",
         "COMMIT_UNMATCHED_IN_SYNC", False, None),
        ("ZK-4643", "mSpec-2", dict(max_txns=1, max_crashes=2), "I-8",
         None, True, None),
        ("ZK-4646", "mSpec-3", dict(max_txns=1, max_crashes=2), "I-8",
         None, True, PR_1930),
        ("ZK-4685", "mSpec-3", dict(max_txns=2, max_crashes=1), "I-12",
         "ACK_BEFORE_NEWLEADER_ACK", True, None),
        ("ZK-4712", "mSpec-3", dict(max_txns=2, max_crashes=1), "I-10",
         None, True, None),
    ]
    failures = 0
    for name, spec_name, cfg_kw, family, instance, masked, variant in hunts:
        config = ZkConfig(max_partitions=0, max_epoch=3, **cfg_kw)
        result = _hunt_bug(
            args, spec_name, config, family, instance, masked, variant
        )
        if result.found_violation:
            violation = result.first_violation
            print(
                f"{name}: FOUND by {spec_name} "
                f"({violation.invariant.ident}, depth {violation.depth}, "
                f"{result.states_explored} states, "
                f"{result.elapsed_seconds:.1f}s)"
            )
        else:
            failures += 1
            print(f"{name}: not found within budget")
    return failures


def cmd_protocol(args) -> int:
    from repro.zab import ZabConfig, zab_spec

    failures = 0
    for variant in ("original", "improved", "epoch_first"):
        config = ZabConfig(
            max_txns=1, max_crashes=2, max_epoch=3, variant=variant
        )
        result = _engine(args, zab_spec(config)).run()
        expected_violation = variant == "epoch_first"
        ok = result.found_violation == expected_violation
        failures += 0 if ok else 1
        outcome = (
            f"violates {result.first_violation.invariant.ident}"
            if result.found_violation
            else "passes"
        )
        print(f"{variant:12s}: {outcome} "
              f"({result.states_explored} states, "
              f"{result.elapsed_seconds:.1f}s)")
    return failures


def cmd_systems(args) -> int:
    from repro.remix.registry import registered_systems, system_plugin

    for name in registered_systems():
        plugin = system_plugin(name)
        print(f"{name:12s} {plugin.title}")
        print(f"{'':12s}   grains:    {', '.join(plugin.grains)}")
        print(f"{'':12s}   scenarios: {', '.join(plugin.scenario_names())}")
        print(f"{'':12s}   faults:    {', '.join(plugin.fault_names())}")
    return 0


def cmd_lint(args) -> int:
    from repro.analysis.findings import (
        baseline_error,
        new_fingerprints,
    )
    from repro.analysis.lint import lint_systems
    from repro.remix.registry import registered_systems

    names = args.system or registered_systems()
    baseline = None
    if args.baseline:
        # Validate before any analysis runs: a missing or stale
        # baseline should fail immediately.
        try:
            with open(args.baseline) as fh:
                baseline = json.load(fh)
        except (OSError, ValueError) as error:
            print(f"lint: baseline {args.baseline}: {error}", file=sys.stderr)
            return 2
        problem = baseline_error(baseline)
        if problem is not None:
            print(f"lint: baseline {args.baseline}: {problem}", file=sys.stderr)
            return 2

    try:
        report = lint_systems(names)
    except KeyError as error:
        print(f"lint: {error.args[0]}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps(report.to_json(), indent=2))
    else:
        for finding in report.findings:
            print(finding.format())
        print(report.summary(), file=sys.stderr)

    if baseline is not None:
        fresh = new_fingerprints(report, baseline)
        if fresh:
            print(
                f"NEW lint fingerprints vs {args.baseline}: "
                f"{', '.join(fresh)}",
                file=sys.stderr,
            )
            return 2
        print(
            f"no new lint fingerprints vs {args.baseline}", file=sys.stderr
        )
        return 0
    return 1 if report.findings else 0


def cmd_efforts(args) -> int:
    from repro.analysis import table3

    for row in table3():
        print(row)
    return 0


def cmd_lineage(args) -> int:
    from repro.analysis import render_ascii

    print(render_ascii())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Multi-grained specification model checking (EuroSys '25 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_check = sub.add_parser("check", help="model-check a specification")
    p_check.add_argument("spec", choices=list(SELECTIONS))
    p_check.add_argument("--trace", action="store_true", help="print the counterexample")
    p_check.add_argument("--unmask-zk4394", action="store_true")
    _add_config_args(p_check)
    _add_engine_args(p_check)
    p_check.set_defaults(fn=cmd_check)

    p_conf = sub.add_parser("conformance", help="conformance-check a spec")
    p_conf.add_argument(
        "spec", choices=[n for n in SELECTIONS if n not in ("SysSpec", "mSpec-4")]
    )
    p_conf.add_argument("--traces", type=int, default=30)
    p_conf.add_argument("--steps", type=int, default=25)
    p_conf.add_argument("--seed", type=int, default=0)
    _add_config_args(p_conf)
    p_conf.set_defaults(fn=cmd_conformance)

    p_camp = sub.add_parser(
        "campaign",
        help="parallel conformance campaign over the fault-scenario matrix",
    )
    # Axis values are validated by ConformanceCampaign (not argparse
    # choices) so the remix stack stays a lazy import like the other
    # heavy subcommands.
    p_camp.add_argument(
        "--system", default="zookeeper",
        help="registered system plugin to campaign over "
        "(default: zookeeper; see `python -m repro systems`)",
    )
    p_camp.add_argument(
        "--grains", nargs="+", default=None,
        help="spec grains to campaign over (default: all the system's "
        "mappable grains, e.g. mSpec-1..3 for zookeeper)",
    )
    p_camp.add_argument(
        "--scenarios", nargs="+", default=None,
        help="scenario prefixes (default: all the system's prefixes)",
    )
    p_camp.add_argument(
        "--faults", nargs="+", default=None,
        help="fault schedules (default: all the system's schedules)",
    )
    p_camp.add_argument(
        "--directions", choices=["topdown", "bottomup", "both"],
        default="topdown",
        help="conformance directions: topdown model-driven replay, "
        "bottomup implementation-driven lockstep validation, or both "
        "(default: topdown)",
    )
    p_camp.add_argument(
        "--seeds", type=int, default=1,
        help="seeds per (direction, grain, scenario, fault) cell",
    )
    p_camp.add_argument(
        "--traces", type=int, default=2, help="random suffix walks per cell"
    )
    p_camp.add_argument(
        "--steps", type=int, default=12, help="max random suffix steps"
    )
    p_camp.add_argument(
        "--budget", default=None,
        help='wall-clock budget like "5s" or "2m"; undispatched cells are skipped',
    )
    p_camp.add_argument(
        "--workers", type=int, default=1,
        help="campaign workers (1 = inline for the fork backend)",
    )
    p_camp.add_argument(
        "--backend", choices=["fork", "socket", "chaos"], default="fork",
        help="execution backend: 'fork' (forked TaskPool workers, the "
        "default), 'socket' (TCP worker subprocesses; reports are "
        "bitwise-identical across backends), or 'chaos' (the socket "
        "backend under seeded fault injection -- testing the harness)",
    )
    p_camp.add_argument(
        "--task-timeout", type=float, default=None, metavar="SECONDS",
        help="hard per-cell wall clock: a cell running longer has its "
        "worker killed and is retried (default: no watchdog)",
    )
    p_camp.add_argument(
        "--task-retries", type=int, default=2, metavar="N",
        help="transient failures (worker death, timeout) one cell may "
        "survive before it is quarantined as poison (default: 2)",
    )
    p_camp.add_argument(
        "--auth-token", default=None,
        help="shared secret for the socket backend's worker handshake "
        "(spawned workers inherit it; external workers pass it to "
        "`python -m repro worker`)",
    )
    p_camp.add_argument(
        "--journal", default=None, metavar="DIR",
        help="crash-safe mode: append completed cell/shrink results to "
        "DIR/journal.jsonl as they finish",
    )
    p_camp.add_argument(
        "--resume", action="store_true",
        help="with --journal: skip cells already journaled for this "
        "request and replay their results (the resumed report is "
        "bitwise-identical to an uninterrupted run)",
    )
    p_camp.add_argument("--seed", type=int, default=0)
    p_camp.add_argument(
        "--shrink", action=argparse.BooleanOptionalAction, default=True,
        help="minimize each distinct finding's witness after the merge "
        "(attaches a replayable min_trace per finding; on by default, "
        "disable with --no-shrink)",
    )
    p_camp.add_argument(
        "--adaptive", action="store_true",
        help="reallocate the seed budget in rounds toward cells with the "
        "highest novel-fingerprint yield (default: uniform matrix)",
    )
    p_camp.add_argument(
        "--repros", default=None, metavar="DIR",
        help="write one replayable repro JSON per finding into DIR",
    )
    p_camp.add_argument(
        "--json", dest="json_path", nargs="?", const="-", default=None,
        help="emit the JSON report (to stdout, or to the given path)",
    )
    p_camp.add_argument(
        "--baseline", default=None,
        help="campaign report JSON to diff impl-bug fingerprints against; "
        "exits 2 on new ones (the nightly CI gate)",
    )
    p_camp.add_argument(
        "--spec-cache", default=None, metavar="DIR",
        help="on-disk spec cache directory ('off' disables persistence; "
        "default: $REPRO_SPEC_CACHE_DIR or ~/.cache/repro-spec-cache)",
    )
    p_camp.add_argument(
        "--request", default=None, metavar="FILE",
        help="run a serialized CampaignRequest JSON instead of flags "
        "('-' reads stdin; the same JSON serve/client speak)",
    )
    p_camp.add_argument(
        "--dry-run", action="store_true",
        help="print the normalized CampaignRequest JSON and exit "
        "(feed it back via --request or to serve/client)",
    )
    p_camp.set_defaults(fn=cmd_campaign)

    p_serve = sub.add_parser(
        "serve",
        help="long-lived campaign server streaming repro.campaign.event/1 "
        "JSON-lines per request",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=0,
        help="TCP port (default 0 = ephemeral; the bound address is "
        "announced as the first stdout line)",
    )
    p_serve.add_argument(
        "--heartbeat", type=float, default=5.0,
        help="seconds between heartbeat events on an active stream",
    )
    p_serve.add_argument(
        "--max-requests", type=int, default=None,
        help="shut down after serving this many requests (CI harness)",
    )
    p_serve.add_argument(
        "--request-timeout", type=float, default=30.0, metavar="SECONDS",
        help="seconds a fresh connection gets to send its request line "
        "before it is answered with an error event and closed "
        "(default: 30)",
    )
    p_serve.add_argument(
        "--request", default=None, metavar="FILE",
        help="one-shot offline mode: run this request JSON ('-' = stdin) "
        "in-process, stream its events to stdout, and exit",
    )
    p_serve.add_argument(
        "--spec-cache", default=None, metavar="DIR",
        help="on-disk spec cache directory (shared across requests)",
    )
    p_serve.set_defaults(fn=cmd_serve)

    p_client = sub.add_parser(
        "client",
        help="send one campaign request to a server, stream events to stdout",
    )
    p_client.add_argument("--host", default="127.0.0.1")
    p_client.add_argument("--port", type=int, required=True)
    p_client.add_argument(
        "--request", default="-", metavar="FILE",
        help="CampaignRequest JSON to send (default '-' = stdin)",
    )
    p_client.add_argument(
        "--deadline", type=float, default=None,
        help="per-request wall-clock deadline in seconds (the server "
        "folds it into the campaign budget)",
    )
    p_client.set_defaults(fn=cmd_client)

    p_worker = sub.add_parser(
        "worker",
        help="join a socket-backend listener as a remote campaign worker",
    )
    p_worker.add_argument(
        "address", metavar="HOST:PORT",
        help="the socket backend's listener address",
    )
    p_worker.add_argument(
        "--auth-token", default=None,
        help="shared secret for the backend's hello handshake (default: "
        "$REPRO_WORKER_TOKEN, which is how spawned workers receive it)",
    )
    p_worker.add_argument(
        "--reconnect", action=argparse.BooleanOptionalAction, default=True,
        help="reconnect with exponential backoff when the connection "
        "drops mid-session (clean shutdown always exits; on by default)",
    )
    p_worker.set_defaults(fn=cmd_worker)

    p_hunt = sub.add_parser("bugs", help="hunt the six paper bugs")
    p_hunt.add_argument("--max-states", type=int, default=1_000_000)
    p_hunt.add_argument("--max-time", type=float, default=240.0)
    _add_engine_args(p_hunt)
    p_hunt.set_defaults(fn=cmd_hunt)

    p_proto = sub.add_parser("protocol", help="verify the Zab variants (§5.4)")
    p_proto.add_argument("--max-states", type=int, default=300_000)
    p_proto.add_argument("--max-time", type=float, default=180.0)
    _add_engine_args(p_proto)
    p_proto.set_defaults(fn=cmd_protocol)

    p_lint = sub.add_parser(
        "lint",
        help="static spec analysis: dependency declarations, purity and "
        "plugin conformance, before anything runs",
    )
    p_lint.add_argument(
        "--system", action="append", default=None,
        help="system to lint (repeatable; default: all registered)",
    )
    p_lint.add_argument(
        "--all", action="store_true",
        help="lint every registered system (the default; explicit for CI)",
    )
    p_lint.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="text findings (default) or the repro.lint/1 JSON report",
    )
    p_lint.add_argument(
        "--baseline", default=None,
        help="lint report JSON to diff finding fingerprints against; "
        "exits 2 on new ones (the CI gate), 0 otherwise",
    )
    p_lint.set_defaults(fn=cmd_lint)

    sub.add_parser(
        "systems", help="list registered system plugins"
    ).set_defaults(fn=cmd_systems)

    sub.add_parser("efforts", help="Table 3 effort metrics").set_defaults(
        fn=cmd_efforts
    )
    sub.add_parser("lineage", help="Figure 8 bug lineage").set_defaults(
        fn=cmd_lineage
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:  # e.g. `repro lineage | head`
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
