"""The Raft replay mapping: model action names to ensemble steps.

One mapping serves both grains: the coarse ``ElectLeader`` and the fine
``BecomeCandidate``/``GrantVote``/``BecomeLeader`` entries coexist in
the table, and :meth:`repro.remix.mapping.ActionMapping.lookup` only
ever resolves the names the composed specification actually emits.
"""

from __future__ import annotations

from repro.remix.mapping import ActionMapping, MappedAction


def _server(method: str):
    """Step dispatching a single-server label argument ``i``."""
    return lambda ens, label: getattr(ens, method)(label.args["i"])


def _pair(method: str):
    """Step unpacking a ``pair`` label argument into two arguments."""
    return lambda ens, label: getattr(ens, method)(*label.args["pair"])


def raft_mapping() -> ActionMapping:
    """The action mapping shared by the ``raft-*`` grains."""
    return ActionMapping(
        {
            "ElectLeader": MappedAction(
                "ElectLeader",
                lambda ens, label: ens.run_election(
                    label.args["i"], label.args["Q"]
                ),
                pointcuts=3,
                region="coarse",
            ),
            "BecomeCandidate": MappedAction(
                "BecomeCandidate", _server("become_candidate")
            ),
            "GrantVote": MappedAction("GrantVote", _pair("grant_vote")),
            "BecomeLeader": MappedAction(
                "BecomeLeader", _server("become_leader")
            ),
            "ClientRequest": MappedAction(
                "ClientRequest", _server("client_request")
            ),
            "ReplicateLog": MappedAction(
                "ReplicateLog", _pair("replicate_log")
            ),
            "LeaderAdvanceCommit": MappedAction(
                "LeaderAdvanceCommit", _server("leader_advance_commit")
            ),
            "FollowerLearnCommit": MappedAction(
                "FollowerLearnCommit", _pair("follower_learn_commit")
            ),
            "NodeCrash": MappedAction("NodeCrash", _server("node_crash")),
            "NodeRestart": MappedAction("NodeRestart", _server("node_restart")),
            "PartitionStart": MappedAction(
                "PartitionStart", _pair("partition_start")
            ),
            "PartitionHeal": MappedAction(
                "PartitionHeal", _pair("partition_heal")
            ),
        }
    )
