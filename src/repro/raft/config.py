"""Model configuration and implementation variants for the Raft plugin.

:class:`RaftConfig` mirrors the shape of
:class:`repro.zookeeper.config.ZkConfig` (cluster size plus exploration
bounds); :class:`RaftVariant` is the set of knobs distinguishing the
deliberately buggy toy implementation from its fixed version.  Each knob
corresponds to one planted conformance bug:

- ``durable_vote``: persist ``votedFor`` across restarts.  The buggy
  default forgets the vote, so a restarted follower's ``voted_for``
  diverges from the model (which, like the Raft paper, makes the vote
  durable state).
- ``reset_commit_on_restart``: drop the volatile ``commitIndex`` on
  restart.  The buggy default keeps the pre-crash value; the model
  resets it to 0.
- ``clamp_commit``: clamp a learned commit index to the local log
  length.  The buggy default copies the leader's commit index verbatim
  and raises :class:`repro.raft.impl.CommitAheadError` when it points
  past the end of the local log.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from itertools import combinations
from typing import Tuple


@dataclass(frozen=True)
class RaftVariant:
    """Code-version knobs of the toy Raft implementation.

    All-``False`` (the default) is the buggy build the campaign checks;
    :data:`FIXED_VARIANT` turns every fix on.
    """

    durable_vote: bool = False
    reset_commit_on_restart: bool = False
    clamp_commit: bool = False


#: The implementation with all three planted bugs fixed; conformance
#: campaigns against it find nothing.
FIXED_VARIANT = RaftVariant(
    durable_vote=True, reset_commit_on_restart=True, clamp_commit=True
)


@dataclass(frozen=True)
class RaftConfig:
    """The model-checking configuration (TLC-style constants).

    ``max_entries`` bounds client requests, ``max_term`` bounds term
    growth, ``max_crashes``/``max_partitions`` bound fault injection --
    the same budget discipline :class:`repro.zookeeper.config.ZkConfig`
    uses for ZooKeeper.
    """

    n_servers: int = 3
    max_entries: int = 2
    max_crashes: int = 2
    max_partitions: int = 1
    max_term: int = 3
    variant: RaftVariant = field(default_factory=RaftVariant)

    @property
    def servers(self) -> Tuple[int, ...]:
        """Server ids ``0 .. n_servers-1``."""
        return tuple(range(self.n_servers))

    @property
    def quorum_size(self) -> int:
        """Minimal majority size."""
        return self.n_servers // 2 + 1

    def is_quorum(self, members) -> bool:
        """True when ``members`` contains a majority of the cluster."""
        return len(set(members)) >= self.quorum_size

    def quorums(self) -> Tuple[Tuple[int, ...], ...]:
        """All minimal-or-larger quorums, as sorted tuples."""
        out = []
        for size in range(self.quorum_size, self.n_servers + 1):
            out.extend(combinations(self.servers, size))
        return tuple(out)

    def with_variant(self, variant: RaftVariant) -> "RaftConfig":
        """A copy of this configuration with a different variant."""
        return replace(self, variant=variant)
