"""The Raft system plugin: registers the toy Raft stack with the remix
campaign machinery.

Importing this module registers the plugin (the registry's builtin
loader does exactly that); everything the campaign needs -- grains,
prefixes, faults, mapping, ensemble and configuration plumbing -- hangs
off the one :class:`RaftPlugin` instance.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping

from repro.raft import spec as raft_spec
from repro.raft.config import RaftConfig, RaftVariant
from repro.raft.impl import RaftEnsemble
from repro.raft.mapping import raft_mapping
from repro.raft.scenarios import FAULT_SCHEDULES, SCENARIO_PREFIXES
from repro.remix.registry import register_system
from repro.system.plugin import SystemPlugin


class RaftPlugin(SystemPlugin):
    """A compact Raft protocol behind the generic plugin surface."""

    name = "raft"
    title = "Toy Raft: coarse/fine election grains, full-log replication"
    grains = ("raft-coarse", "raft-fine")
    scenario_prefixes = SCENARIO_PREFIXES
    fault_schedules = FAULT_SCHEDULES
    compared_variables = (
        "role",
        "current_term",
        "voted_for",
        "log",
        "commit_index",
    )
    spec_source_packages = ("repro.tla", "repro.raft")

    def default_config(self) -> RaftConfig:
        """The stock three-server configuration."""
        return RaftConfig()

    def campaign_config(self) -> RaftConfig:
        """Smaller bounds for tractable campaign cells."""
        return RaftConfig(
            n_servers=3,
            max_entries=1,
            max_crashes=2,
            max_partitions=1,
            max_term=2,
        )

    def make_spec(self, grain: str, config=None):
        """Compose one of the ``raft-*`` grains."""
        return raft_spec.make_spec(grain, config)

    def make_mapping(self, grain: str):
        """Both grains replay through the same mapping table."""
        if grain not in self.grains:
            raise KeyError(
                f"unknown or unmappable grain {grain!r}; "
                f"options: {sorted(self.grains)}"
            )
        return raft_mapping()

    def ensemble_factory(self, config: RaftConfig):
        """Fresh buggy-or-fixed ensembles per the config's variant."""
        return lambda: RaftEnsemble(config.n_servers, config.variant)

    def budget_limits(self, config: RaftConfig) -> Dict[str, int]:
        """Bottom-up exploration budgets.

        The election budgets bound term growth at the implementation
        level the way ``max_term`` bounds it in the model (each election
        or candidacy raises the cluster's maximum term by at most 1)."""
        return {
            "NodeCrash": config.max_crashes,
            "PartitionStart": config.max_partitions,
            "ClientRequest": config.max_entries,
            "ElectLeader": config.max_term,
            "BecomeCandidate": config.max_term,
        }

    def config_from_meta(self, meta: Mapping[str, Any]) -> RaftConfig:
        """Rebuild a :class:`RaftConfig` from a report's meta block."""
        fields = dict(meta.get("config") or {})
        variant = fields.pop("variant", None)
        config = RaftConfig(**fields) if fields else self.campaign_config()
        if variant:
            config = config.with_variant(RaftVariant(**variant))
        return config


register_system(RaftPlugin())
