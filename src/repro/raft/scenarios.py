"""Canned Raft scenario prefixes and fault schedules for the campaign.

Three prefixes (election, replicate, commit) scripted at whatever grain
the specification composes, and four fault schedules resolved against
the campaign's leader/follower choice -- the Raft counterparts of
:mod:`repro.zookeeper.scenarios` and :mod:`repro.zookeeper.faults`.
"""

from __future__ import annotations

from typing import Tuple

from repro.system.plugin import (
    ROLE_FOLLOWER,
    ROLE_LEADER,
    ROLE_PAIR,
    FaultSchedule,
    Scenario,
)
from repro.tla.spec import Specification

__all__ = ["FAULT_SCHEDULES", "SCENARIO_PREFIXES", "scenario_prefix"]


def _elect(scenario: Scenario, leader: int, quorum: Tuple[int, ...]) -> Scenario:
    """Elect ``leader`` within ``quorum`` at the composed granularity."""
    names = {a.name for a in scenario.spec.actions}
    if "ElectLeader" in names:
        return scenario.apply("ElectLeader", i=leader, Q=tuple(quorum))
    scenario.apply("BecomeCandidate", i=leader)
    for voter in quorum:
        if voter != leader:
            scenario.apply("GrantVote", pair=(voter, leader))
    return scenario.apply("BecomeLeader", i=leader)


def election_prefix(
    spec: Specification, leader: int, quorum: Tuple[int, ...]
) -> Scenario:
    """A completed election: ``leader`` leads, ``quorum`` voted."""
    return _elect(Scenario(spec), leader, quorum)


def replicate_prefix(
    spec: Specification, leader: int, quorum: Tuple[int, ...]
) -> Scenario:
    """An election plus one entry replicated to the lowest follower."""
    scenario = election_prefix(spec, leader, quorum)
    follower = min(j for j in quorum if j != leader)
    scenario.apply("ClientRequest", i=leader)
    return scenario.apply("ReplicateLog", pair=(leader, follower))


def commit_prefix(
    spec: Specification, leader: int, quorum: Tuple[int, ...]
) -> Scenario:
    """Replication carried through to a committed, learned entry."""
    scenario = replicate_prefix(spec, leader, quorum)
    follower = min(j for j in quorum if j != leader)
    scenario.apply("LeaderAdvanceCommit", i=leader)
    return scenario.apply("FollowerLearnCommit", pair=(follower, leader))


#: Campaign scenario axis: name -> builder(spec, leader, quorum).
SCENARIO_PREFIXES = {
    "election": election_prefix,
    "replicate": replicate_prefix,
    "commit": commit_prefix,
}


def scenario_prefix(
    name: str, spec: Specification, leader: int, quorum
) -> Scenario:
    """Build a named prefix (convenience mirror of the plugin hook)."""
    return SCENARIO_PREFIXES[name](spec, leader, tuple(sorted(quorum)))


#: Campaign fault axis, in matrix order.
FAULT_SCHEDULES = (
    FaultSchedule("none"),
    FaultSchedule("crash-leader", (("NodeCrash", (("i", ROLE_LEADER),)),)),
    FaultSchedule(
        "crash-restart-follower",
        (
            ("NodeCrash", (("i", ROLE_FOLLOWER),)),
            ("NodeRestart", (("i", ROLE_FOLLOWER),)),
        ),
    ),
    FaultSchedule("partition", (("PartitionStart", (("pair", ROLE_PAIR),)),)),
)
