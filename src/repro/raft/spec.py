"""Multi-grained Raft specifications: leader election and log replication.

Two grains of the same protocol, composed from three modules:

- ``raft-coarse``: a single atomic ``ElectLeader`` action (the election
  outcome, analogous to ZooKeeper's coarse ``ElectionAndDiscovery``)
  plus the replication and fault modules;
- ``raft-fine``: the election decomposed into ``BecomeCandidate`` /
  ``GrantVote`` / ``BecomeLeader`` plus the same replication and fault
  modules.

The model is deliberately compact -- full-log replication instead of
per-entry AppendEntries -- but keeps Raft's safety structure: terms,
durable votes, up-to-date election restriction, quorum commit.  Durable
state (``current_term``, ``voted_for``, ``log``) survives crashes;
volatile state (``commit_index``, ``votes``) does not.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.tla.action import Action
from repro.tla.module import Module
from repro.tla.spec import Invariant
from repro.tla.state import Schema, State
from repro.tla.composition import compose
from repro.raft.config import RaftConfig

#: Role values (the model's ``role`` variable).
FOLLOWER = "follower"
CANDIDATE = "candidate"
LEADER = "leader"
DOWN = "down"

#: ``voted_for`` value meaning "no vote cast this term".
NO_VOTE = -1

#: State variables, in schema order.
VARIABLES = (
    "role",
    "current_term",
    "voted_for",
    "log",
    "commit_index",
    "votes",
    "disconnected",
    "crash_budget",
    "partition_budget",
    "entry_budget",
)

SCHEMA = Schema(VARIABLES)


def initial_state(config: RaftConfig) -> State:
    """All servers start as followers with empty durable state."""
    n = config.n_servers
    per = lambda value: tuple(value for _ in range(n))  # noqa: E731
    return State.make(
        SCHEMA,
        role=per(FOLLOWER),
        current_term=per(0),
        voted_for=per(NO_VOTE),
        log=per(()),
        commit_index=per(0),
        votes=per(frozenset()),
        disconnected=frozenset(),
        crash_budget=config.max_crashes,
        partition_budget=config.max_partitions,
        entry_budget=config.max_entries,
    )


def init(config: RaftConfig):
    """The (single) initial state."""
    return [initial_state(config)]


# --- guards shared by actions ------------------------------------------------


def _alive(state, i: int) -> bool:
    return state["role"][i] != DOWN


def _connected(state, i: int, j: int) -> bool:
    return frozenset((i, j)) not in state["disconnected"]


def _log_key(log: Tuple) -> Tuple[int, int]:
    """Raft's up-to-date comparison key: (last entry term, length)."""
    last_term = log[-1][0] if log else 0
    return (last_term, len(log))


def _up_to_date(log_i: Tuple, log_j: Tuple) -> bool:
    """True when ``log_i`` is at least as up-to-date as ``log_j``."""
    return _log_key(log_i) >= _log_key(log_j)


def _up(values: Tuple, i: int, value) -> Tuple:
    return values[:i] + (value,) + values[i + 1 :]


# --- coarse election ---------------------------------------------------------


def elect_leader(config: RaftConfig, state, i: int, quorum):
    """Atomic election outcome: ``i`` wins a new term within ``quorum``.

    Folds candidacy, voting and the up-to-date restriction into one
    action, exactly the coarsening move of the paper's Figure 5b."""
    members = set(quorum)
    if i not in members or not config.is_quorum(members):
        return None
    for j in sorted(members):
        if not _alive(state, j):
            return None
        if j != i and not _connected(state, i, j):
            return None
    new_term = max(state["current_term"][j] for j in members) + 1
    if new_term > config.max_term:
        return None
    for j in sorted(members):
        if not _up_to_date(state["log"][i], state["log"][j]):
            return None
    n = config.n_servers
    return {
        "role": tuple(
            (LEADER if s == i else FOLLOWER) if s in members else state["role"][s]
            for s in range(n)
        ),
        "current_term": tuple(
            new_term if s in members else state["current_term"][s]
            for s in range(n)
        ),
        "voted_for": tuple(
            i if s in members else state["voted_for"][s] for s in range(n)
        ),
        "votes": tuple(
            (frozenset(members) if s == i else frozenset())
            if s in members
            else state["votes"][s]
            for s in range(n)
        ),
    }


def coarse_election_module(config: RaftConfig) -> Module:
    """The single-action coarse election module."""
    return Module(
        "RaftElectionCoarse",
        [
            Action(
                "ElectLeader",
                lambda cfg, s, i, Q: elect_leader(cfg, s, i, Q),
                params={
                    "i": lambda cfg: cfg.servers,
                    "Q": lambda cfg: cfg.quorums(),
                },
                reads=[
                    "role",
                    "current_term",
                    "voted_for",
                    "votes",
                    "log",
                    "disconnected",
                ],
                writes=["role", "current_term", "voted_for", "votes"],
            )
        ],
    )


# --- fine election -----------------------------------------------------------


def become_candidate(config: RaftConfig, state, i: int):
    """A follower (or a retrying candidate) starts a new term."""
    if state["role"][i] not in (FOLLOWER, CANDIDATE):
        return None
    new_term = state["current_term"][i] + 1
    if new_term > config.max_term:
        return None
    return {
        "role": _up(state["role"], i, CANDIDATE),
        "current_term": _up(state["current_term"], i, new_term),
        "voted_for": _up(state["voted_for"], i, i),
        "votes": _up(state["votes"], i, frozenset((i,))),
    }


def grant_vote(config: RaftConfig, state, j: int, i: int):
    """Voter ``j`` grants its vote to candidate ``i``.

    The voter adopts the candidate's term, records the vote durably and
    steps down to follower; the candidate tallies it."""
    if not _alive(state, i) or not _alive(state, j):
        return None
    if not _connected(state, i, j):
        return None
    if state["role"][i] != CANDIDATE:
        return None
    if j in state["votes"][i]:
        return None
    term_i = state["current_term"][i]
    term_j = state["current_term"][j]
    if term_j > term_i:
        return None
    if term_j == term_i and state["voted_for"][j] not in (NO_VOTE, i):
        return None
    if not _up_to_date(state["log"][i], state["log"][j]):
        return None
    return {
        "role": _up(state["role"], j, FOLLOWER),
        "current_term": _up(state["current_term"], j, term_i),
        "voted_for": _up(state["voted_for"], j, i),
        "votes": _up(
            _up(state["votes"], j, frozenset()),
            i,
            state["votes"][i] | {j},
        ),
    }


def become_leader(config: RaftConfig, state, i: int):
    """A candidate with a quorum of votes takes leadership."""
    if state["role"][i] != CANDIDATE:
        return None
    if not config.is_quorum(state["votes"][i]):
        return None
    return {"role": _up(state["role"], i, LEADER)}


def fine_election_module(config: RaftConfig) -> Module:
    """Candidacy, voting and promotion as separate actions."""
    servers = {"i": lambda cfg: cfg.servers}
    pairs = {
        "pair": lambda cfg: [
            (j, i) for j in cfg.servers for i in cfg.servers if j != i
        ]
    }
    return Module(
        "RaftElectionFine",
        [
            Action(
                "BecomeCandidate",
                become_candidate,
                params=servers,
                reads=["role", "current_term", "voted_for", "votes"],
                writes=["role", "current_term", "voted_for", "votes"],
            ),
            Action(
                "GrantVote",
                lambda cfg, s, pair: grant_vote(cfg, s, pair[0], pair[1]),
                params=pairs,
                reads=[
                    "role",
                    "current_term",
                    "voted_for",
                    "votes",
                    "log",
                    "disconnected",
                ],
                writes=["role", "current_term", "voted_for", "votes"],
            ),
            Action(
                "BecomeLeader",
                become_leader,
                params=servers,
                reads=["role", "votes"],
                writes=["role"],
            ),
        ],
    )


# --- replication (shared by both grains) -------------------------------------


def client_request(config: RaftConfig, state, i: int):
    """The leader appends a new entry ``(term, seq)`` to its log."""
    if state["role"][i] != LEADER:
        return None
    if state["entry_budget"] <= 0:
        return None
    seq = config.max_entries - state["entry_budget"] + 1
    entry = (state["current_term"][i], seq)
    return {
        "log": _up(state["log"], i, state["log"][i] + (entry,)),
        "entry_budget": state["entry_budget"] - 1,
    }


def replicate_log(config: RaftConfig, state, i: int, j: int):
    """Leader ``i`` overwrites follower ``j``'s log with its own.

    Full-log AppendEntries: the follower adopts the leader's term and
    log wholesale (per-entry consistency checks are abstracted away)."""
    if state["role"][i] != LEADER or not _alive(state, j):
        return None
    if not _connected(state, i, j):
        return None
    term_i = state["current_term"][i]
    if state["current_term"][j] > term_i:
        return None
    if state["role"][j] == LEADER and state["current_term"][j] == term_i:
        return None
    if (
        state["log"][j] == state["log"][i]
        and state["current_term"][j] == term_i
        and state["role"][j] == FOLLOWER
    ):
        return None  # no-op: already in sync
    return {
        "role": _up(state["role"], j, FOLLOWER),
        "current_term": _up(state["current_term"], j, term_i),
        "log": _up(state["log"], j, state["log"][i]),
    }


def leader_advance_commit(config: RaftConfig, state, i: int):
    """The leader advances its commit index to the largest quorum-
    replicated index whose entry is from its own term (Raft §5.4.2)."""
    if state["role"][i] != LEADER:
        return None
    log_i = state["log"][i]
    term_i = state["current_term"][i]
    best = None
    for k in range(state["commit_index"][i] + 1, len(log_i) + 1):
        if log_i[k - 1][0] != term_i:
            continue
        matched = sum(
            1
            for j in config.servers
            if state["log"][j][:k] == log_i[:k]
        )
        if matched >= config.quorum_size:
            best = k
    if best is None:
        return None
    return {"commit_index": _up(state["commit_index"], i, best)}


def follower_learn_commit(config: RaftConfig, state, j: int, i: int):
    """Follower ``j`` learns the leader's commit index, clamped to its
    own log length (the clamp the buggy implementation forgets)."""
    if state["role"][i] != LEADER or state["role"][j] != FOLLOWER:
        return None
    if not _connected(state, i, j):
        return None
    if state["current_term"][j] != state["current_term"][i]:
        return None
    target = min(state["commit_index"][i], len(state["log"][j]))
    if state["log"][j][:target] != state["log"][i][:target]:
        return None
    if target <= state["commit_index"][j]:
        return None
    return {"commit_index": _up(state["commit_index"], j, target)}


def replication_module(config: RaftConfig) -> Module:
    """Client requests, full-log replication and commit propagation."""
    servers = {"i": lambda cfg: cfg.servers}
    ordered_pairs = lambda cfg: [  # noqa: E731
        (a, b) for a in cfg.servers for b in cfg.servers if a != b
    ]
    return Module(
        "RaftReplication",
        [
            Action(
                "ClientRequest",
                client_request,
                params=servers,
                reads=["role", "current_term", "log", "entry_budget"],
                writes=["log", "entry_budget"],
            ),
            Action(
                "ReplicateLog",
                lambda cfg, s, pair: replicate_log(cfg, s, pair[0], pair[1]),
                params={"pair": ordered_pairs},
                reads=["role", "current_term", "log", "disconnected"],
                writes=["role", "current_term", "log"],
            ),
            Action(
                "LeaderAdvanceCommit",
                leader_advance_commit,
                params=servers,
                reads=["role", "current_term", "log", "commit_index"],
                writes=["commit_index"],
            ),
            Action(
                "FollowerLearnCommit",
                lambda cfg, s, pair: follower_learn_commit(
                    cfg, s, pair[0], pair[1]
                ),
                params={"pair": ordered_pairs},
                reads=[
                    "role",
                    "current_term",
                    "log",
                    "commit_index",
                    "disconnected",
                ],
                writes=["commit_index"],
            ),
        ],
    )


# --- faults ------------------------------------------------------------------


def node_crash(config: RaftConfig, state, i: int):
    """A server halts; volatile vote tallies are lost immediately."""
    if not _alive(state, i):
        return None
    if state["crash_budget"] <= 0:
        return None
    return {
        "role": _up(state["role"], i, DOWN),
        "votes": _up(state["votes"], i, frozenset()),
        "crash_budget": state["crash_budget"] - 1,
    }


def node_restart(config: RaftConfig, state, i: int):
    """A crashed server rejoins as a follower.

    Durable state (term, vote, log) survives; the volatile
    ``commit_index`` resets to 0 -- the behaviour the buggy
    implementation gets wrong in two ways (non-durable vote, retained
    commit index)."""
    if state["role"][i] != DOWN:
        return None
    return {
        "role": _up(state["role"], i, FOLLOWER),
        "commit_index": _up(state["commit_index"], i, 0),
        "votes": _up(state["votes"], i, frozenset()),
    }


def partition_start(config: RaftConfig, state, i: int, j: int):
    """Disconnect a live pair of servers."""
    if state["partition_budget"] <= 0:
        return None
    if not _alive(state, i) or not _alive(state, j):
        return None
    pair = frozenset((i, j))
    if pair in state["disconnected"]:
        return None
    return {
        "disconnected": state["disconnected"] | {pair},
        "partition_budget": state["partition_budget"] - 1,
    }


def partition_heal(config: RaftConfig, state, i: int, j: int):
    """Reconnect a partitioned pair."""
    pair = frozenset((i, j))
    if pair not in state["disconnected"]:
        return None
    return {"disconnected": state["disconnected"] - {pair}}


def faults_module(config: RaftConfig) -> Module:
    """Crash, restart, partition and heal, under the config's budgets."""
    servers = {"i": lambda cfg: cfg.servers}
    unordered = {
        "pair": lambda cfg: [
            (a, b) for a in cfg.servers for b in cfg.servers if a < b
        ]
    }
    unpack = lambda fn: (  # noqa: E731
        lambda cfg, s, pair: fn(cfg, s, pair[0], pair[1])
    )
    return Module(
        "RaftFaults",
        [
            Action(
                "NodeCrash",
                node_crash,
                params=servers,
                reads=["role", "votes", "crash_budget"],
                writes=["role", "votes", "crash_budget"],
            ),
            Action(
                "NodeRestart",
                node_restart,
                params=servers,
                reads=["role", "commit_index", "votes"],
                writes=["role", "commit_index", "votes"],
            ),
            Action(
                "PartitionStart",
                unpack(partition_start),
                params=unordered,
                reads=["role", "disconnected", "partition_budget"],
                writes=["disconnected", "partition_budget"],
            ),
            Action(
                "PartitionHeal",
                unpack(partition_heal),
                params=unordered,
                reads=["disconnected"],
                writes=["disconnected"],
            ),
        ],
    )


# --- invariants --------------------------------------------------------------


def election_safety(config: RaftConfig, state) -> bool:
    """R-1: at most one leader per term."""
    seen = set()
    for i in config.servers:
        if state["role"][i] != LEADER:
            continue
        term = state["current_term"][i]
        if term in seen:
            return False
        seen.add(term)
    return True


def log_matching(config: RaftConfig, state) -> bool:
    """R-2: entries equal at an index imply equal prefixes up to it."""
    for i in config.servers:
        for j in config.servers:
            if i >= j:
                continue
            log_i, log_j = state["log"][i], state["log"][j]
            for k in range(min(len(log_i), len(log_j)) - 1, -1, -1):
                if log_i[k] == log_j[k]:
                    if log_i[: k + 1] != log_j[: k + 1]:
                        return False
                    break
    return True


def commit_safety(config: RaftConfig, state) -> bool:
    """R-3: commit indices stay within logs and committed prefixes agree
    across servers."""
    for i in config.servers:
        if state["commit_index"][i] > len(state["log"][i]):
            return False
    for i in config.servers:
        for j in config.servers:
            if i >= j:
                continue
            k = min(state["commit_index"][i], state["commit_index"][j])
            if state["log"][i][:k] != state["log"][j][:k]:
                return False
    return True


INVARIANTS = (
    Invariant(
        "R-1",
        "ElectionSafety",
        election_safety,
        reads=frozenset({"role", "current_term"}),
    ),
    Invariant("R-2", "LogMatching", log_matching, reads=frozenset({"log"})),
    Invariant(
        "R-3",
        "CommitSafety",
        commit_safety,
        reads=frozenset({"commit_index", "log"}),
    ),
)


#: Grain name -> election module factory; replication and faults are
#: shared by every grain.
GRAIN_ELECTIONS = {
    "raft-coarse": coarse_election_module,
    "raft-fine": fine_election_module,
}


def make_spec(name: str, config: Optional[RaftConfig] = None):
    """Compose the Raft specification for one grain.

    ``name`` is ``"raft-coarse"`` or ``"raft-fine"``; raises ``KeyError``
    for anything else."""
    if name not in GRAIN_ELECTIONS:
        raise KeyError(
            f"unknown or unmappable grain {name!r}; "
            f"options: {sorted(GRAIN_ELECTIONS)}"
        )
    config = config or RaftConfig()
    modules = [
        GRAIN_ELECTIONS[name](config),
        replication_module(config),
        faults_module(config),
    ]
    return compose(name, SCHEMA, init, modules, INVARIANTS, config)
