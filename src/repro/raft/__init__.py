"""A compact Raft system plugin: the second protocol through the harness.

The package exists to prove the campaign machinery is system-agnostic
(ISSUE 6): leader-election and log-replication spec grains, a toy
in-process implementation with three planted bugs, scenario prefixes and
fault schedules -- all plugged in behind
:class:`repro.raft.plugin.RaftPlugin` with zero changes to
:mod:`repro.checker`.
"""

from repro.raft.config import FIXED_VARIANT, RaftConfig, RaftVariant
from repro.raft.impl import CommitAheadError, RaftEnsemble, RaftImplError

__all__ = [
    "CommitAheadError",
    "FIXED_VARIANT",
    "RaftConfig",
    "RaftEnsemble",
    "RaftImplError",
    "RaftVariant",
]
