"""A deterministic toy Raft implementation (the conformance target).

:class:`RaftEnsemble` mirrors the model of :mod:`repro.raft.spec` --
same roles, terms, full-log replication, quorum commit -- except for
three planted bugs controlled by :class:`repro.raft.config.RaftVariant`:

1. ``durable_vote=False``: ``votedFor`` is not persisted, so a restarted
   server forgets its vote while the model remembers it;
2. ``reset_commit_on_restart=False``: the volatile ``commitIndex``
   survives restarts, while the model resets it to 0;
3. ``clamp_commit=False``: a follower copies the leader's commit index
   verbatim and raises :class:`CommitAheadError` when it points past its
   own log, while the model clamps.

Every step method returns ``True``/``False`` for executed/stuck, the
contract :class:`repro.remix.mapping.MappedAction` steps follow.
"""

from __future__ import annotations

import copy
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.impl.exceptions import ImplError
from repro.raft.config import RaftVariant

FOLLOWER = "follower"
CANDIDATE = "candidate"
LEADER = "leader"
DOWN = "down"
NO_VOTE = -1


class RaftImplError(ImplError):
    """Base class for toy-Raft implementation failures."""


class CommitAheadError(RaftImplError):
    """A follower's commit index was advanced past the end of its log
    (the unclamped learn-commit path)."""

    bug_id = "RAFT-103"


class RaftNode:
    """One server's state; durable and volatile fields mirror the model."""

    def __init__(self, sid: int):
        """A fresh follower at term 0 with an empty log."""
        self.sid = sid
        self.role = FOLLOWER
        self.current_term = 0
        self.voted_for = NO_VOTE
        self.log: List[Tuple[int, int]] = []
        self.commit_index = 0
        self.votes: Set[int] = set()


class RaftEnsemble:
    """A cluster of :class:`RaftNode` driven one step at a time."""

    def __init__(self, n_servers: int = 3, variant: Optional[RaftVariant] = None):
        """Fresh nodes, fully connected; ``variant`` defaults to buggy."""
        self.variant = variant or RaftVariant()
        self.nodes = [RaftNode(i) for i in range(n_servers)]
        self.disconnected: Set[frozenset] = set()
        self.entries_issued = 0

    # --- helpers -------------------------------------------------------------

    @property
    def n_servers(self) -> int:
        """Cluster size."""
        return len(self.nodes)

    @property
    def quorum_size(self) -> int:
        """Majority threshold."""
        return self.n_servers // 2 + 1

    def alive(self, i: int) -> bool:
        """True while ``i`` is not crashed."""
        return self.nodes[i].role != DOWN

    def connected(self, i: int, j: int) -> bool:
        """True unless the ``{i, j}`` link is partitioned."""
        return frozenset((i, j)) not in self.disconnected

    @staticmethod
    def _log_key(log: List[Tuple[int, int]]) -> Tuple[int, int]:
        last_term = log[-1][0] if log else 0
        return (last_term, len(log))

    def _up_to_date(self, i: int, j: int) -> bool:
        return self._log_key(self.nodes[i].log) >= self._log_key(self.nodes[j].log)

    def snapshot(self) -> Dict[str, Tuple]:
        """Per-variable tuples in the model's encodings, for comparison
        against the spec state after each mapped step."""
        return {
            "role": tuple(node.role for node in self.nodes),
            "current_term": tuple(node.current_term for node in self.nodes),
            "voted_for": tuple(node.voted_for for node in self.nodes),
            "log": tuple(tuple(node.log) for node in self.nodes),
            "commit_index": tuple(node.commit_index for node in self.nodes),
        }

    # --- election ------------------------------------------------------------

    def run_election(self, i: int, quorum: Iterable[int]) -> bool:
        """Coarse election: ``i`` wins a new term within ``quorum``."""
        members = set(quorum)
        if i not in members or len(members) < self.quorum_size:
            return False
        for j in members:
            if not self.alive(j):
                return False
            if j != i and not self.connected(i, j):
                return False
        for j in members:
            if not self._up_to_date(i, j):
                return False
        new_term = max(self.nodes[j].current_term for j in members) + 1
        for j in members:
            node = self.nodes[j]
            node.current_term = new_term
            node.voted_for = i
            node.role = LEADER if j == i else FOLLOWER
            node.votes = set(members) if j == i else set()
        return True

    def become_candidate(self, i: int) -> bool:
        """A follower (or retrying candidate) starts a new term."""
        node = self.nodes[i]
        if node.role not in (FOLLOWER, CANDIDATE):
            return False
        node.role = CANDIDATE
        node.current_term += 1
        node.voted_for = i
        node.votes = {i}
        return True

    def grant_vote(self, j: int, i: int) -> bool:
        """Voter ``j`` grants its vote to candidate ``i``."""
        voter, candidate = self.nodes[j], self.nodes[i]
        if not self.alive(i) or not self.alive(j):
            return False
        if not self.connected(i, j):
            return False
        if candidate.role != CANDIDATE or j in candidate.votes:
            return False
        if voter.current_term > candidate.current_term:
            return False
        if voter.current_term == candidate.current_term and voter.voted_for not in (
            NO_VOTE,
            i,
        ):
            return False
        if not self._up_to_date(i, j):
            return False
        voter.role = FOLLOWER
        voter.current_term = candidate.current_term
        voter.voted_for = i
        voter.votes = set()
        candidate.votes.add(j)
        return True

    def become_leader(self, i: int) -> bool:
        """A candidate with a quorum of votes takes leadership."""
        node = self.nodes[i]
        if node.role != CANDIDATE or len(node.votes) < self.quorum_size:
            return False
        node.role = LEADER
        return True

    # --- replication ---------------------------------------------------------

    def client_request(self, i: int) -> bool:
        """The leader appends a new ``(term, seq)`` entry."""
        node = self.nodes[i]
        if node.role != LEADER:
            return False
        self.entries_issued += 1
        node.log.append((node.current_term, self.entries_issued))
        return True

    def replicate_log(self, i: int, j: int) -> bool:
        """Leader ``i`` overwrites follower ``j``'s log with its own."""
        leader, follower = self.nodes[i], self.nodes[j]
        if leader.role != LEADER or not self.alive(j):
            return False
        if not self.connected(i, j):
            return False
        if follower.current_term > leader.current_term:
            return False
        if (
            follower.role == LEADER
            and follower.current_term == leader.current_term
        ):
            return False
        if (
            follower.log == leader.log
            and follower.current_term == leader.current_term
            and follower.role == FOLLOWER
        ):
            return False  # no-op: already in sync
        follower.role = FOLLOWER
        follower.current_term = leader.current_term
        follower.log = list(leader.log)
        return True

    def leader_advance_commit(self, i: int) -> bool:
        """The leader advances its commit index over quorum-replicated
        current-term entries."""
        node = self.nodes[i]
        if node.role != LEADER:
            return False
        best = None
        for k in range(node.commit_index + 1, len(node.log) + 1):
            if node.log[k - 1][0] != node.current_term:
                continue
            matched = sum(
                1
                for peer in self.nodes
                if peer.log[:k] == node.log[:k]
            )
            if matched >= self.quorum_size:
                best = k
        if best is None:
            return False
        node.commit_index = best
        return True

    def follower_learn_commit(self, j: int, i: int) -> bool:
        """Follower ``j`` adopts the leader's commit index.

        The fixed build clamps to the local log length; the buggy build
        copies the index verbatim and raises :class:`CommitAheadError`
        when it points past the end of the log."""
        leader, follower = self.nodes[i], self.nodes[j]
        if leader.role != LEADER or follower.role != FOLLOWER:
            return False
        if not self.connected(i, j):
            return False
        if follower.current_term != leader.current_term:
            return False
        clamped = min(leader.commit_index, len(follower.log))
        if follower.log[:clamped] != leader.log[:clamped]:
            return False
        if self.variant.clamp_commit:
            target = clamped
        else:
            target = leader.commit_index
        if target <= follower.commit_index:
            return False
        if target > len(follower.log):
            raise CommitAheadError(
                f"server {j} commit index {target} beyond log length "
                f"{len(follower.log)}"
            )
        follower.commit_index = target
        return True

    # --- faults --------------------------------------------------------------

    def node_crash(self, i: int) -> bool:
        """Halt a live server; volatile vote tallies are lost."""
        node = self.nodes[i]
        if node.role == DOWN:
            return False
        node.role = DOWN
        node.votes = set()
        return True

    def node_restart(self, i: int) -> bool:
        """Restart a crashed server -- where two planted bugs live."""
        node = self.nodes[i]
        if node.role != DOWN:
            return False
        node.role = FOLLOWER
        node.votes = set()
        if not self.variant.durable_vote:
            node.voted_for = NO_VOTE  # bug 1: the vote was never persisted
        if self.variant.reset_commit_on_restart:
            node.commit_index = 0
        # bug 2 (default): the stale volatile commit index survives
        return True

    def partition_start(self, i: int, j: int) -> bool:
        """Disconnect a live pair."""
        pair = frozenset((i, j))
        if pair in self.disconnected:
            return False
        if not self.alive(i) or not self.alive(j):
            return False
        self.disconnected.add(pair)
        return True

    def partition_heal(self, i: int, j: int) -> bool:
        """Reconnect a partitioned pair."""
        pair = frozenset((i, j))
        if pair not in self.disconnected:
            return False
        self.disconnected.remove(pair)
        return True

    def __deepcopy__(self, memo):
        """Snapshot clone (the explorer forks ensembles per branch)."""
        clone = RaftEnsemble.__new__(RaftEnsemble)
        clone.variant = self.variant
        clone.nodes = copy.deepcopy(self.nodes, memo)
        clone.disconnected = set(self.disconnected)
        clone.entries_issued = self.entries_issued
        return clone
