"""Random simulation over a specification's state graph.

The conformance checker (Section 3.5.2) "randomly explores the model-level
state space to obtain a set of traces under a predefined time budget"; this
module is that explorer.  Walks are seeded and therefore reproducible,
matching the deterministic-replay requirement.

Walks step through the exploration engine's incremental successor path
(:meth:`CompiledSpec.expand <repro.checker.engine.CompiledSpec.expand>`
with dedupe off): guards benefit from the compiled spec's memoized
outcomes and inherited disabled bits, and each successor's fingerprint is
delta-updated rather than recomputed.  The enumeration order and the
state-changing filter are identical to ``Specification.successors``, so
a seeded walk chooses exactly the same label sequence either way -- the
conformance campaign's finding fingerprints (and its checked-in
baselines) are invariant to the engine wiring.
"""

from __future__ import annotations

import random
import time
from typing import Callable, List, Optional

from repro.checker.engine import CompiledSpec, compiled_for
from repro.checker.trace import Trace
from repro.tla.spec import Specification
from repro.tla.state import State


class RandomWalker:
    """Generates random traces of a specification."""

    def __init__(
        self,
        spec: Specification,
        seed: int = 0,
        compiled: Optional[CompiledSpec] = None,
    ):
        self.spec = spec
        self.rng = random.Random(seed)
        self._core = compiled if compiled is not None else compiled_for(spec)

    def walk(self, max_steps: int = 30, start: Optional[State] = None) -> Trace:
        """One random walk from ``start`` (default: a random initial state).

        Stops early in deadlock states (no enabled action) or when the
        state constraint fails.  Walking from an explicit start state is
        what the conformance campaign uses to randomize the suffix of a
        scripted scenario prefix.
        """
        if start is not None:
            state = start
        else:
            initials = self.spec.initial_states()
            state = self.rng.choice(initials)
        core = self._core
        fp, digests = core.fingerprinter.of_values_with_digests(state.values)
        known = 0
        states: List[State] = [state]
        labels = []
        for _ in range(max_steps):
            if not self.spec.within_constraint(state):
                break
            chosen = core.step(state, fp, digests, known, self.rng)
            if chosen is None:
                break
            idx, nxt, fp, known, digests = chosen
            labels.append(core.labels[idx])
            states.append(nxt)
            state = nxt
        return Trace(states=states, labels=labels)

    def traces(
        self,
        count: int = 20,
        max_steps: int = 30,
        time_budget: Optional[float] = None,
        stop_when: Optional[Callable[[State], bool]] = None,
    ) -> List[Trace]:
        """A batch of random traces within an optional wall-clock budget.

        ``stop_when`` truncates a walk as soon as the predicate holds
        (used to stop at states that violate safety, which Remix then
        replays at the code level for confirmation).
        """
        start = time.monotonic()
        out: List[Trace] = []
        for _ in range(count):
            if time_budget is not None and time.monotonic() - start > time_budget:
                break
            trace = self.walk(max_steps)
            if stop_when is not None:
                trace = trace.truncated_at(stop_when)
            out.append(trace)
        return out
