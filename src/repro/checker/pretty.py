"""Human-readable rendering of states and traces.

Counterexamples are read by people; rendering every variable of every
state buries the signal.  The pretty-printer shows the initial state once
and then, per step, only the variables the action changed -- the format
TLC's error traces use.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.checker.trace import Trace
from repro.tla.state import State

#: Variables hidden by default when rendering ZooKeeper traces (ghosts
#: and the message soup dominate otherwise).
DEFAULT_HIDE_PREFIXES = ("g_",)
DEFAULT_HIDE = ("msgs",)


def _visible(name: str, hide: Sequence[str], hide_prefixes: Sequence[str]):
    if name in hide:
        return False
    return not any(name.startswith(prefix) for prefix in hide_prefixes)


def format_state(
    state: State,
    hide: Sequence[str] = DEFAULT_HIDE,
    hide_prefixes: Sequence[str] = DEFAULT_HIDE_PREFIXES,
    indent: str = "  ",
) -> str:
    lines: List[str] = []
    for name in state.schema.names:
        if _visible(name, hide, hide_prefixes):
            lines.append(f"{indent}{name} = {state[name]!r}")
    return "\n".join(lines)


def format_trace(
    trace: Trace,
    hide: Sequence[str] = DEFAULT_HIDE,
    hide_prefixes: Sequence[str] = DEFAULT_HIDE_PREFIXES,
    max_steps: Optional[int] = None,
) -> str:
    """TLC-style error trace: full initial state, then per-step diffs."""
    lines = ["State 0 (initial):", format_state(trace.initial, hide, hide_prefixes)]
    steps = list(trace.steps())
    if max_steps is not None:
        steps = steps[:max_steps]
    for index, (pre, label, post) in enumerate(steps, start=1):
        lines.append(f"\nStep {index}: {label}")
        diff = pre.diff(post)
        for name in post.schema.names:
            if name not in diff:
                continue
            if not _visible(name, hide, hide_prefixes):
                continue
            old, new = diff[name]
            lines.append(f"  {name}: {old!r} -> {new!r}")
        shown = [
            name
            for name in diff
            if _visible(name, hide, hide_prefixes)
        ]
        if not shown:
            lines.append("  (only hidden variables changed)")
    if max_steps is not None and len(trace.labels) > max_steps:
        lines.append(f"\n... {len(trace.labels) - max_steps} more steps")
    return "\n".join(lines)
