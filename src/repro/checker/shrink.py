"""Counterexample shrinking.

BFS already yields minimal-*depth* traces, but traces produced by random
walks (conformance checking) or DFS carry irrelevant steps.  The shrinker
greedily deletes steps while the trace still replays and an *oracle*
still accepts it -- the standard delta-debugging loop specialized to
action traces.

Two oracle flavours are supported:

- a state predicate (``still_fails``): the shrunk trace must end in a
  state satisfying it (model-invariant violations);
- an arbitrary trace oracle (:data:`TraceOracle`): any callable judging
  a replayed candidate trace as a whole.  The conformance campaign's
  :class:`~repro.remix.minimize.ConformanceOracle` re-runs candidates
  through the code-level coordinator and accepts them iff they reproduce
  the same finding fingerprint.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.checker.trace import Trace
from repro.tla.action import ActionLabel
from repro.tla.spec import Specification
from repro.tla.state import State

Predicate = Callable[[State], bool]

#: An oracle judging a *replayed* candidate trace: return True when the
#: candidate still reproduces the failure being minimized.
TraceOracle = Callable[[Trace], bool]


def _try_replay(
    spec: Specification, labels: List[ActionLabel], initial: State
) -> Optional[List[State]]:
    """Replay labels; None when some step is disabled."""
    states = [initial]
    current = initial
    for label in labels:
        inst = spec.instance_for(label)
        nxt = inst.apply(spec.config, current)
        if nxt is None:
            return None
        states.append(nxt)
        current = nxt
    return states


def shrink_trace_oracle(
    spec: Specification,
    trace: Trace,
    oracle: TraceOracle,
    max_rounds: int = 10,
) -> Trace:
    """Remove steps from ``trace`` while ``oracle`` still accepts the
    replayed remainder.

    Greedy loop: try deleting contiguous chunks (halving the chunk size
    each round), keeping any deletion after which the remaining labels
    still replay into an oracle-accepted trace.  The result is 1-minimal
    with respect to single-step deletion when the loop converges.
    """
    labels = list(trace.labels)
    initial = trace.initial
    states = _try_replay(spec, labels, initial)
    if states is None or not oracle(Trace(states=states, labels=labels)):
        raise ValueError("the input trace does not reproduce the failure")

    for _ in range(max_rounds):
        changed = False
        chunk = max(1, len(labels) // 2)
        while chunk >= 1:
            index = 0
            while index < len(labels):
                candidate = labels[:index] + labels[index + chunk :]
                replayed = _try_replay(spec, candidate, initial)
                if replayed is not None and oracle(
                    Trace(states=replayed, labels=candidate)
                ):
                    labels = candidate
                    states = replayed
                    changed = True
                else:
                    index += chunk
            chunk //= 2
        if not changed:
            break
    return Trace(states=states, labels=labels)


#: An oracle judging a candidate *label sequence* (no model replay): the
#: bottom-up validation shrinker drives the implementation itself, so a
#: candidate need not be model-replayable -- being model-disabled may be
#: exactly the failure under minimization.
LabelsOracle = Callable[[List[ActionLabel]], bool]


def shrink_labels_oracle(
    labels: List[ActionLabel],
    oracle: LabelsOracle,
    max_rounds: int = 10,
) -> List[ActionLabel]:
    """Remove steps from a plain label sequence while ``oracle`` still
    accepts the remainder.

    The same greedy delta-debugging loop as :func:`shrink_trace_oracle`,
    but without replaying candidates through a specification: the oracle
    owns execution entirely.  Used by the campaign's bottom-up direction,
    where candidates are implementation runs validated in lockstep and
    the minimized sequence may be *model-disabled* on purpose.
    """
    labels = list(labels)
    if not oracle(list(labels)):
        raise ValueError("the input labels do not reproduce the failure")
    for _ in range(max_rounds):
        changed = False
        chunk = max(1, len(labels) // 2)
        while chunk >= 1:
            index = 0
            while index < len(labels):
                candidate = labels[:index] + labels[index + chunk :]
                if oracle(list(candidate)):
                    labels = candidate
                    changed = True
                else:
                    index += chunk
            chunk //= 2
        if not changed:
            break
    return labels


def shrink_trace(
    spec: Specification,
    trace: Trace,
    still_fails: Predicate,
    max_rounds: int = 10,
) -> Trace:
    """Remove steps from ``trace`` while its final state still satisfies
    ``still_fails`` (e.g. "violates I-8").

    The input is first truncated at the *first* state satisfying the
    predicate: engine/DFS traces are not always ``stop_when``-truncated
    the way random-walk ones are, and the violating state can sit
    mid-trace rather than at the end.
    """
    truncated = trace.truncated_at(still_fails)
    return shrink_trace_oracle(
        spec, truncated, lambda candidate: still_fails(candidate.final),
        max_rounds=max_rounds,
    )


def violation_predicate(spec: Specification, ident: str) -> Predicate:
    """A ``still_fails`` predicate: some instance of the invariant family
    ``ident`` is violated in the state."""
    invariants = [inv for inv in spec.invariants if inv.ident == ident]
    if not invariants:
        raise KeyError(f"specification has no invariant {ident!r}")

    def predicate(state: State) -> bool:
        return any(not inv.holds(spec.config, state) for inv in invariants)

    return predicate
