"""Shared-memory visited-fingerprint table for real-time cross-worker
dedupe (``--dedupe shared``).

The round-synchronous BFS pool (``--dedupe rounds``) only lets workers
learn about each other's visited states at round barriers: within a
round, two workers can both discover (and both classify) the same
successor, and the parent's serial merge throws the duplicate away.
:class:`SharedVisitedSet` replaces that between-rounds fingerprint-set
merge with a fixed-size open-addressing table in
:mod:`multiprocessing.shared_memory`, so a fingerprint published by one
worker suppresses the duplicate in every other worker *immediately*.

Design (a TLC-style lock-free fingerprint set):

- 8-byte slots, linear probing, power-of-two capacity.  Slot value 0 is
  the *empty* sentinel; the (astronomically unlikely) fingerprint 0 is
  remapped to a fixed constant, which merely aliases it with one other
  fingerprint -- the standard collision trade-off.
- Inserts claim a slot by *compare-and-publish*: read the slot, write
  the fingerprint if it holds the sentinel, then read it back.  A lost
  race (another worker published a different fingerprint first) resumes
  probing.  Aligned 8-byte stores are atomic on every platform CPython's
  ``fork`` start method supports, so readers never observe torn slots.
- Races are *conservative*: the worst outcome of a lost or duplicated
  claim is that the same state is expanded by two workers, and the BFS
  parent's authoritative merge (keyed on the fingerprint) drops the
  duplicate.  A fingerprint is never falsely reported present, so no
  state is ever lost -- ``--dedupe shared`` reaches exactly the
  sequential visited-state count and violation set at fixed budgets.
- Load-factor growth by *generation*: the table cannot be resized in
  place, so the owner allocates a fresh, larger segment when the newest
  one passes its load ceiling.  Older generations stay attached and are
  probed for membership; inserts go to the newest.  The BFS parent grows
  between rounds and ships the updated segment list with the next round
  message, so workers always agree on the generation set.
- When even the newest generation rejects an insert (probe limit hit
  before growth lands), the fingerprint falls back to a process-local
  overflow set: dedupe degrades to per-worker for that fingerprint but
  never drops it.

Ownership: the creating process unlinks every segment on :meth:`close`;
attaching processes merely detach.  Attached segments are unregistered
from the ``resource_tracker`` (which double-counts attachments made by
forked children and would otherwise warn at shutdown).
"""

from __future__ import annotations

from multiprocessing import shared_memory
from typing import List, Optional, Tuple

#: Empty-slot sentinel.  Fingerprint 0 is remapped to _ZERO_ALIAS.
_SENTINEL = 0
_ZERO_ALIAS = 0x9E3779B97F4A7C15

#: Linear probes attempted before an insert/lookup gives up.  At the
#: 0.5 load ceiling the expected probe chain is ~2 slots; 128 makes a
#: false "table full" practically impossible before growth lands.
_PROBE_LIMIT = 128

#: Newest-generation load ceiling that triggers growth.
_LOAD_CEILING = 0.5

_MIN_CAPACITY = 1 << 12
_MAX_CAPACITY = 1 << 26  # 512 MiB of slots; growth stops here


def available() -> bool:
    """True when POSIX shared memory works on this host."""
    try:
        probe = shared_memory.SharedMemory(create=True, size=8)
    except (OSError, ValueError):  # pragma: no cover - exotic hosts
        return False
    probe.close()
    probe.unlink()
    return True


def suggest_capacity(max_states: Optional[int]) -> int:
    """Initial slot count for a run bounded by ``max_states``."""
    if max_states is None:
        return 1 << 20
    capacity = _MIN_CAPACITY
    while capacity < 4 * max_states and capacity < _MAX_CAPACITY:
        capacity <<= 1
    return capacity


def _normalize(fingerprint: int) -> int:
    fingerprint &= 0xFFFFFFFFFFFFFFFF
    return fingerprint if fingerprint != _SENTINEL else _ZERO_ALIAS


class _untracked_attach:
    """Suppress resource-tracker registration while attaching.

    Only the creating process owns the memory (and unlinks it on close);
    letting an attaching process register the same name again makes the
    tracker double-count it and complain -- or worse, unlink it -- at
    shutdown.  Python 3.13 grew ``SharedMemory(track=False)`` for
    exactly this; earlier versions need the registration hook silenced
    around the attach call.
    """

    def __enter__(self):
        from multiprocessing import resource_tracker

        self._tracker = resource_tracker
        self._register = resource_tracker.register
        resource_tracker.register = lambda name, rtype: None
        return self

    def __exit__(self, *exc_info):
        self._tracker.register = self._register
        return False


class _Segment:
    """One shared-memory generation: a flat array of 8-byte slots."""

    __slots__ = ("shm", "view", "capacity", "mask", "owner")

    def __init__(self, capacity: Optional[int] = None, name: Optional[str] = None):
        if name is None:
            if capacity is None or capacity & (capacity - 1):
                raise ValueError(f"capacity must be a power of two: {capacity}")
            self.shm = shared_memory.SharedMemory(create=True, size=capacity * 8)
            self.owner = True
        else:
            with _untracked_attach():
                self.shm = shared_memory.SharedMemory(name=name)
            capacity = len(self.shm.buf) // 8
            self.owner = False
        self.capacity = capacity
        self.mask = capacity - 1
        self.view = memoryview(self.shm.buf).cast("Q")

    @property
    def name(self) -> str:
        return self.shm.name

    def lookup(self, fingerprint: int) -> bool:
        view = self.view
        mask = self.mask
        slot = fingerprint & mask
        for _ in range(_PROBE_LIMIT):
            current = view[slot]
            if current == fingerprint:
                return True
            if current == _SENTINEL:
                return False
            slot = (slot + 1) & mask
        return False

    def insert(self, fingerprint: int) -> int:
        """1: newly published; 0: already present; -1: probe limit hit."""
        view = self.view
        mask = self.mask
        slot = fingerprint & mask
        for _ in range(_PROBE_LIMIT):
            current = view[slot]
            if current == fingerprint:
                return 0
            if current == _SENTINEL:
                view[slot] = fingerprint
                current = view[slot]  # compare-and-publish readback
                if current == fingerprint:
                    return 1
                # Lost the slot to a concurrent writer; fall through and
                # keep probing from the next slot.
            slot = (slot + 1) & mask
        return -1

    def close(self) -> None:
        self.view.release()
        self.shm.close()
        if self.owner:
            try:
                self.shm.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass


class SharedVisitedSet:
    """A growable, multi-generation shared fingerprint set.

    Implements ``fp in table`` and ``table.add(fp)`` with plain ``set``
    semantics, so :meth:`CompiledSpec.expand
    <repro.checker.engine.CompiledSpec.expand>` accepts it directly as
    its ``seen`` argument.  ``add`` returns True when this process
    published the fingerprint first (used for distinct-state accounting
    by the sharded DFS workers).
    """

    def __init__(self, initial_capacity: int = 1 << 20):
        self._segments: List[_Segment] = [_Segment(capacity=initial_capacity)]
        self._older: List[_Segment] = []
        self._overflow: set = set()
        self._base_count = 0  # owner: authoritative count at last growth
        self._last_miss: Optional[int] = None
        self.inserts = 0  # fingerprints this process published first

    @classmethod
    def attach(cls, names: Tuple[str, ...]) -> "SharedVisitedSet":
        table = cls.__new__(cls)
        table._segments = [_Segment(name=name) for name in names]
        table._older = table._segments[:-1]
        table._overflow = set()
        table._base_count = 0
        table._last_miss = None
        table.inserts = 0
        return table

    def descriptors(self) -> Tuple[str, ...]:
        """Segment names, oldest first (ship these to workers)."""
        return tuple(segment.name for segment in self._segments)

    def attach_new(self, names: Tuple[str, ...]) -> None:
        """Attach generations grown by the owner since the last round."""
        known = {segment.name for segment in self._segments}
        for name in names:
            if name not in known:
                self._segments.append(_Segment(name=name))
        self._older = self._segments[:-1]
        self._last_miss = None  # older-generation set changed

    def __contains__(self, fingerprint: int) -> bool:
        fingerprint = _normalize(fingerprint)
        for segment in self._segments:
            if segment.lookup(fingerprint):
                return True
        if fingerprint in self._overflow:
            return True
        # The engine's dedupe idiom is ``fp in seen`` followed by
        # ``seen.add(fp)``; remember the miss so the add skips the
        # membership re-probe.
        self._last_miss = fingerprint
        return False

    def add(self, fingerprint: int) -> bool:
        fingerprint = _normalize(fingerprint)
        if fingerprint == self._last_miss:
            self._last_miss = None
        else:
            for segment in self._older:
                if segment.lookup(fingerprint):
                    return False
        outcome = self._segments[-1].insert(fingerprint)
        if outcome == 1:
            self.inserts += 1
            return True
        if outcome == 0:
            return False
        if fingerprint in self._overflow:
            return False
        self._overflow.add(fingerprint)
        self.inserts += 1
        return True

    @property
    def capacity(self) -> int:
        return sum(segment.capacity for segment in self._segments)

    def should_grow(self, authoritative_count: int) -> bool:
        """Owner side: has the newest generation passed its load ceiling?

        ``authoritative_count`` is the caller's exact distinct-state
        count (the BFS parent's accepted-fingerprint total); the newest
        generation held roughly ``count - count_at_its_creation`` of
        those.
        """
        newest = self._segments[-1]
        if newest.capacity >= _MAX_CAPACITY:
            return False
        filled = authoritative_count - self._base_count
        return filled >= int(newest.capacity * _LOAD_CEILING)

    def grow(self, authoritative_count: int) -> None:
        """Owner side: allocate the next generation (2x the newest).

        Segment capacities must stay powers of two (the probe index is
        masked), so growth doubles the newest generation rather than
        the summed total.
        """
        capacity = min(2 * self._segments[-1].capacity, _MAX_CAPACITY)
        self._segments.append(_Segment(capacity=capacity))
        self._older = self._segments[:-1]
        self._base_count = authoritative_count

    def close(self) -> None:
        for segment in self._segments:
            segment.close()
        self._segments = []
        self._older = []
        self._overflow = set()
