"""Breadth-first explicit-state model checking (the TLC substitute).

:class:`BFSChecker` keeps the original seed API -- breadth-first
exploration with minimal-depth counterexamples (§4.4), invariants checked
on every distinct reachable state, state constraints, stop-at-first vs
run-to-completion modes, budgets and state masking (§3.5.2) -- but since
the engine refactor it is a thin compatibility wrapper over
:class:`repro.checker.engine.ExplorationEngine` with ``strategy="bfs"``.

The engine deduplicates by 64-bit fingerprint instead of storing full
:class:`~repro.tla.state.State` objects, evaluates invariants once per
distinct state, short-circuits guards via declared read sets, and can
shard the frontier across worker processes (``workers=N``).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.checker.engine import ExplorationEngine
from repro.checker.result import CheckResult
from repro.tla.spec import Specification
from repro.tla.state import State


class BFSChecker:
    """Breadth-first search over the state graph of a specification.

    Parameters
    ----------
    spec:
        The specification to check.
    max_states:
        Stop after this many distinct states (None = unbounded).
    max_time:
        Wall-clock budget in seconds (None = unbounded).
    max_depth:
        Do not explore beyond this BFS depth (None = unbounded).
    violation_limit:
        In run-to-completion mode, stop after this many violations.
    stop_at_first:
        Stop as soon as any invariant violation is found (Table 5a mode).
    mask:
        Optional predicate; states where it returns True are treated as
        already-known bad states: they are neither reported nor expanded.
    workers:
        Worker processes for frontier sharding (1 = in-process).
    """

    def __init__(
        self,
        spec: Specification,
        max_states: Optional[int] = None,
        max_time: Optional[float] = None,
        max_depth: Optional[int] = None,
        violation_limit: int = 10_000,
        stop_at_first: bool = True,
        mask: Optional[Callable[[State], bool]] = None,
        workers: int = 1,
    ):
        self.spec = spec
        self.max_states = max_states
        self.max_time = max_time
        self.max_depth = max_depth
        self.violation_limit = violation_limit
        self.stop_at_first = stop_at_first
        self.mask = mask
        self.workers = workers

    def run(self) -> CheckResult:
        return ExplorationEngine(
            self.spec,
            strategy="bfs",
            workers=self.workers,
            max_states=self.max_states,
            max_time=self.max_time,
            max_depth=self.max_depth,
            violation_limit=self.violation_limit,
            stop_at_first=self.stop_at_first,
            mask=self.mask,
        ).run()


def check(
    spec: Specification,
    stop_at_first: bool = True,
    **kwargs,
) -> CheckResult:
    """Convenience wrapper: run a BFS check with keyword budgets."""
    return BFSChecker(spec, stop_at_first=stop_at_first, **kwargs).run()
