"""Multiprocessing back-ends for the exploration engine.

Three cooperation patterns live here:

:class:`TaskPool`
    A generic fork-based task pool: independent tasks are dispatched
    greedily to a fixed band of workers and results are merged by task
    index, so the output list is independent of scheduling.  The
    conformance campaign (:mod:`repro.remix.campaign`) fans its
    (grain x scenario x fault x seed) matrix through it.

:class:`WorkerPool`
    Round-synchronous frontier sharding for the BFS strategy.  Each
    forked worker keeps a private copy of the visited-fingerprint set;
    every round the parent sends (a) the fingerprints accepted since the
    previous round and (b) a contiguous shard of the frontier.  Workers
    expand their shard, pre-filter successors against their fingerprint
    set, and classify the survivors (invariants, mask, constraint), so
    the parent's serial merge only performs the authoritative dedup and
    bookkeeping.  Because shards partition the frontier in order and the
    merge consumes results in that same order, the outcome is identical
    to the sequential engine on deterministic budgets.

:func:`run_portfolio`
    First-to-find racing for the portfolio strategy: one forked BFS
    contender plus ``workers - 1`` differently-seeded random walkers.

All require the ``fork`` start method (specifications and task closures
hold lambdas that cannot be pickled; forked children inherit them by
memory image).  Call :func:`available` before constructing any.
"""

from __future__ import annotations

import multiprocessing as mp
import multiprocessing.connection as mp_connection
import os
import queue as pyqueue
import time
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.checker.result import CheckResult, Violation
from repro.checker.trace import Trace
from repro.tla.state import State

if TYPE_CHECKING:  # pragma: no cover
    from repro.checker.engine import CompiledSpec, ExplorationEngine

#: Hand-off slot for fork inheritance: set immediately before starting a
#: child process, cleared right after.  Forked children read it once.
_HANDOFF: Any = None


def available() -> bool:
    """True when fork-based worker processes can be used on this host."""
    return "fork" in mp.get_all_start_methods()


def default_workers() -> int:
    """A sensible worker count: the CPU count, capped at 8."""
    return max(1, min(os.cpu_count() or 1, 8))


# ------------------------------------------------------ fork-pool base


class ForkPool:
    """A fixed band of forked worker processes with per-worker pipes.

    Subclasses choose the worker loop (``target``) and the payload the
    children inherit through the fork hand-off slot; this base owns the
    process/pipe lifecycle.
    """

    def __init__(self, target: Callable, payload: Any, workers: int):
        global _HANDOFF
        context = mp.get_context("fork")
        self.connections: list = []
        self.processes: list = []
        _HANDOFF = payload
        try:
            for _ in range(max(1, workers)):
                parent_end, child_end = context.Pipe()
                process = context.Process(
                    target=target, args=(child_end,), daemon=True
                )
                process.start()
                child_end.close()
                self.connections.append(parent_end)
                self.processes.append(process)
        finally:
            _HANDOFF = None

    def close(self) -> None:
        for connection in self.connections:
            try:
                connection.send(None)
            except (BrokenPipeError, OSError):
                pass
        for process in self.processes:
            process.join(timeout=2.0)
            if process.is_alive():  # pragma: no cover
                process.terminate()
                process.join(timeout=1.0)
        for connection in self.connections:
            connection.close()
        self.connections = []
        self.processes = []


# ------------------------------------------------------ generic task pool


def _task_worker_main(conn) -> None:
    """Worker loop: receive (index, task), apply the inherited function,
    reply (index, ok, payload)."""
    worker_fn: Callable[[Any], Any] = _HANDOFF
    try:
        while True:
            message = conn.recv()
            if message is None:
                break
            index, task = message
            try:
                conn.send((index, True, worker_fn(task)))
            except Exception as error:  # surfaced in the parent
                conn.send((index, False, repr(error)))
    except (EOFError, BrokenPipeError, KeyboardInterrupt):  # pragma: no cover
        pass
    finally:
        conn.close()


class TaskPool(ForkPool):
    """Map independent tasks over forked workers, deterministically.

    Dispatch is greedy -- each worker receives a new task as soon as it
    reports the previous one -- but results are slotted by task index,
    so :meth:`map` returns the same list whatever the scheduling or the
    worker count.  Tasks must therefore be self-contained (carry their
    own seeds) and results picklable.
    """

    def __init__(self, worker_fn: Callable[[Any], Any], workers: int):
        super().__init__(_task_worker_main, worker_fn, workers)

    def map(
        self,
        tasks: Sequence[Any],
        deadline: Optional[float] = None,
    ) -> List[Optional[Any]]:
        """Run every task; results arrive in task order.

        ``deadline`` is a ``time.monotonic()`` timestamp: tasks not yet
        dispatched when it passes are skipped and come back as ``None``
        (the caller decides how to report them).  A task that raises in
        a worker re-raises here as :class:`RuntimeError`.  A worker that
        dies mid-task (OOM kill, segfault) is dropped and its in-flight
        task requeued onto the survivors; with no survivors the
        remaining tasks come back as ``None``.
        """
        results: List[Optional[Any]] = [None] * len(tasks)
        active: Dict[Any, int] = {}
        retries: List[int] = []
        next_task = 0

        def dispatch(connection) -> None:
            nonlocal next_task
            while True:
                if retries:
                    index = retries.pop(0)
                elif next_task < len(tasks):
                    index = next_task
                    next_task += 1
                    if deadline is not None and time.monotonic() >= deadline:
                        continue  # skipped: stays None
                else:
                    return
                connection.send((index, tasks[index]))
                active[connection] = index
                return

        for connection in self.connections:
            dispatch(connection)
        while active:
            for connection in mp_connection.wait(list(active)):
                try:
                    index, ok, payload = connection.recv()
                except (EOFError, OSError):
                    # The worker died without replying: requeue its task
                    # for a surviving worker.
                    retries.append(active.pop(connection))
                    continue
                del active[connection]
                if not ok:
                    raise RuntimeError(f"task {index} failed: {payload}")
                results[index] = payload
                dispatch(connection)
        return results


# ----------------------------------------------------------- BFS pool


def _bfs_worker_main(conn) -> None:
    """Worker loop: receive (delta_fps, frontier_shard), expand, reply."""
    core: "CompiledSpec" = _HANDOFF
    schema = core.schema
    seen: set = set()
    try:
        while True:
            message = conn.recv()
            if message is None:
                break
            delta, entries = message
            seen.update(delta)
            out = []
            for entry_fp, values, known, digests in entries:
                state = State(schema, values)
                transitions, candidates = core.expand(
                    state, known, seen, entry_fp, digests
                )
                out.append(
                    (
                        entry_fp,
                        transitions,
                        [
                            (idx, nxt.values, fp, mask, viols, masked, ok, nd)
                            for idx, nxt, fp, mask, viols, masked, ok, nd in candidates
                        ],
                    )
                )
            conn.send(out)
    except (EOFError, BrokenPipeError, KeyboardInterrupt):  # pragma: no cover
        pass
    finally:
        conn.close()


class WorkerPool(ForkPool):
    """A fixed band of forked BFS workers with per-worker pipes.

    Task/worker affinity is explicit (worker *i* always receives shard
    *i*), which is what lets each worker maintain an incrementally
    synchronized visited-fingerprint set instead of receiving the full
    set every round.
    """

    def __init__(self, core: "CompiledSpec", workers: int):
        super().__init__(_bfs_worker_main, core, workers)

    def round(
        self,
        delta: List[int],
        frontier: List[Tuple[int, Tuple, int, Tuple[int, ...]]],
    ) -> List[Tuple[int, int, list]]:
        """Expand one frontier layer; results arrive in frontier order."""
        shard_count = len(self.connections)
        base, extra = divmod(len(frontier), shard_count)
        shards = []
        cursor = 0
        for index in range(shard_count):
            size = base + (1 if index < extra else 0)
            shards.append(frontier[cursor : cursor + size])
            cursor += size
        for connection, shard in zip(self.connections, shards):
            connection.send((delta, shard))
        merged: List[Tuple[int, int, list]] = []
        for connection in self.connections:
            merged.extend(connection.recv())
        return merged


# ------------------------------------------------------ portfolio race


def _encode_result(result: CheckResult) -> Dict[str, Any]:
    """Reduce a CheckResult to picklable primitives (invariant predicates
    and specs hold closures, so Violation objects cannot cross a pipe)."""
    violations = []
    for violation in result.violations:
        trace = violation.trace
        violations.append(
            (
                violation.invariant.ident,
                violation.invariant.instance,
                [label for label in trace.labels],
                trace.initial.values,
            )
        )
    return {
        "spec_name": result.spec_name,
        "states_explored": result.states_explored,
        "transitions": result.transitions,
        "max_depth": result.max_depth,
        "elapsed_seconds": result.elapsed_seconds,
        "completed": result.completed,
        "budget_exhausted": result.budget_exhausted,
        "violations": violations,
    }


def _decode_result(engine: "ExplorationEngine", payload: Dict[str, Any]) -> CheckResult:
    spec = engine.spec
    result = CheckResult(spec_name=payload["spec_name"])
    result.states_explored = payload["states_explored"]
    result.transitions = payload["transitions"]
    result.max_depth = payload["max_depth"]
    result.elapsed_seconds = payload["elapsed_seconds"]
    result.completed = payload["completed"]
    result.budget_exhausted = payload["budget_exhausted"]
    by_key = {(inv.ident, inv.instance): inv for inv in spec.invariants}
    for ident, instance, labels, init_values in payload["violations"]:
        initial = State(spec.schema, init_values)
        states = spec.replay(labels, initial)
        result.violations.append(
            Violation(
                invariant=by_key[(ident, instance)],
                trace=Trace(states=states, labels=list(labels)),
            )
        )
    return result


def _portfolio_contender_main(queue, tag: str) -> None:
    engine: "ExplorationEngine" = _HANDOFF
    try:
        result = engine.run()
        queue.put((tag, _encode_result(result)))
    except Exception as error:  # pragma: no cover - surfaced to parent
        queue.put((tag, {"error": repr(error)}))


def run_portfolio(engine: "ExplorationEngine") -> CheckResult:
    """Race one BFS contender against seeded random walkers.

    Returns the first result that carries a violation, else the BFS
    result (the only contender able to prove completion) once every
    contender has reported or the time budget lapses.
    """
    global _HANDOFF
    context = mp.get_context("fork")
    results_queue = context.Queue()
    contenders = []
    specs = [("bfs", engine._spawn("bfs", engine.seed))]
    for index in range(1, engine.workers):
        specs.append(
            (f"walk-{index}", engine._spawn("random", engine.seed + index))
        )
    start = time.monotonic()
    for tag, contender in specs:
        _HANDOFF = contender
        try:
            process = context.Process(
                target=_portfolio_contender_main,
                args=(results_queue, tag),
                daemon=True,
            )
            process.start()
        finally:
            _HANDOFF = None
        contenders.append(process)

    deadline = None if engine.max_time is None else start + engine.max_time + 5.0
    outcomes: Dict[str, CheckResult] = {}
    winner: Optional[CheckResult] = None
    try:
        while len(outcomes) < len(specs):
            if deadline is not None and time.monotonic() >= deadline:
                break
            try:
                tag, payload = results_queue.get(timeout=1.0)
            except pyqueue.Empty:
                # No result yet; if every contender died without
                # reporting (killed, OOM, ...), stop waiting instead of
                # hanging on an unbounded get.
                if not any(process.is_alive() for process in contenders):
                    break
                continue
            if "error" in payload:
                raise RuntimeError(
                    f"portfolio contender {tag} failed: {payload['error']}"
                )
            outcomes[tag] = _decode_result(engine, payload)
            if outcomes[tag].found_violation:
                winner = outcomes[tag]
                break
    finally:
        for process in contenders:
            if process.is_alive():
                process.terminate()
        for process in contenders:
            process.join(timeout=2.0)
        results_queue.close()

    if winner is None:
        winner = outcomes.get("bfs")
    if winner is None and outcomes:
        winner = next(iter(outcomes.values()))
    if winner is None:
        winner = CheckResult(spec_name=engine.spec.name)
        winner.budget_exhausted = "max_time"
    winner.elapsed_seconds = time.monotonic() - start
    return winner
