"""Multiprocessing back-ends for the exploration engine.

Three cooperation patterns live here:

:class:`TaskPool`
    A generic fork-based task pool: independent tasks are dispatched
    greedily to a fixed band of workers and results are merged by task
    index, so the output list is independent of scheduling.  The
    conformance campaign (:mod:`repro.remix.campaign`) fans its
    (grain x scenario x fault x seed) matrix through it.

:class:`WorkerPool`
    Round-synchronous frontier sharding for the BFS strategy.  Each
    forked worker keeps a private copy of the visited-fingerprint set;
    every round the parent sends (a) the fingerprints accepted since the
    previous round and (b) a contiguous shard of the frontier.  Workers
    expand their shard, pre-filter successors against their fingerprint
    set, and classify the survivors (invariants, mask, constraint), so
    the parent's serial merge only performs the authoritative dedup and
    bookkeeping.  Because shards partition the frontier in order and the
    merge consumes results in that same order, the outcome is identical
    to the sequential engine on deterministic budgets.

:func:`run_portfolio`
    First-to-find racing for the portfolio strategy: one forked BFS
    contender plus ``workers - 1`` differently-seeded random walkers.

All require the ``fork`` start method (specifications and task closures
hold lambdas that cannot be pickled; forked children inherit them by
memory image).  Call :func:`available` before constructing any.
"""

from __future__ import annotations

import multiprocessing as mp
import multiprocessing.connection as mp_connection
import os
import queue as pyqueue
import time
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.checker.result import CheckResult, Violation
from repro.checker.trace import Trace
from repro.tla.batch import FrontierBatch
from repro.tla.state import State

if TYPE_CHECKING:  # pragma: no cover
    from repro.checker.engine import CompiledSpec, ExplorationEngine

#: Hand-off slot for fork inheritance: set immediately before starting a
#: child process, cleared right after.  Forked children read it once.
_HANDOFF: Any = None


def available() -> bool:
    """True when fork-based worker processes can be used on this host."""
    return "fork" in mp.get_all_start_methods()


def default_workers() -> int:
    """A sensible worker count: the CPU count, capped at 8."""
    return max(1, min(os.cpu_count() or 1, 8))


# ------------------------------------------------------ fork-pool base


class ForkPool:
    """A fixed band of forked worker processes with per-worker pipes.

    Subclasses choose the worker loop (``target``) and the payload the
    children inherit through the fork hand-off slot; this base owns the
    process/pipe lifecycle.  The target/payload pair is retained so a
    supervised pool can fork *replacement* workers after a watchdog
    kill (:meth:`spawn_worker`).
    """

    def __init__(self, target: Callable, payload: Any, workers: int):
        self._target = target
        self._payload = payload
        self.connections: list = []
        self.processes: list = []
        self._owner: Dict[int, Any] = {}  # connection fileno -> process
        for _ in range(max(1, workers)):
            self.spawn_worker()

    def spawn_worker(self) -> Any:
        """Fork one (more) worker; returns its parent-side pipe end."""
        global _HANDOFF
        context = mp.get_context("fork")
        _HANDOFF = self._payload
        try:
            parent_end, child_end = context.Pipe()
            process = context.Process(
                target=self._target, args=(child_end,), daemon=True
            )
            process.start()
            child_end.close()
        finally:
            _HANDOFF = None
        self.connections.append(parent_end)
        self.processes.append(process)
        self._owner[parent_end.fileno()] = process
        return parent_end

    def process_of(self, connection) -> Any:
        """The worker process behind a pipe end (``None`` if reaped)."""
        try:
            return self._owner.get(connection.fileno())
        except OSError:  # pragma: no cover - closed pipe
            return None

    def reap(self, connection) -> None:
        """Kill and join one worker (watchdog path): the task it was
        running has exceeded its deadline, so a graceful shutdown frame
        would never be read."""
        process = self.process_of(connection)
        if process is not None and process.is_alive():
            process.kill()
            process.join(timeout=2.0)
        try:
            del self._owner[connection.fileno()]
        except (KeyError, OSError):  # pragma: no cover
            pass
        if connection in self.connections:
            self.connections.remove(connection)
        try:
            connection.close()
        except OSError:  # pragma: no cover
            pass

    def terminate(self) -> None:
        """Interrupt path: kill and reap every worker *now*.

        Called on SIGINT/SIGTERM (KeyboardInterrupt/SystemExit inside
        :meth:`TaskPool.map`) so a cancelled campaign leaves no orphaned
        worker processes behind; safe to call more than once and
        followed by the usual ``close()``."""
        for process in self.processes:
            if process.is_alive():
                process.terminate()
        for process in self.processes:
            process.join(timeout=2.0)
            if process.is_alive():  # pragma: no cover - stuck in a syscall
                process.kill()
                process.join(timeout=1.0)
        for connection in self.connections:
            try:
                connection.close()
            except OSError:  # pragma: no cover
                pass
        self.connections = []
        self.processes = []
        self._owner = {}

    def close(self) -> None:
        for connection in self.connections:
            try:
                connection.send(None)
            except (BrokenPipeError, OSError):
                pass
        for process in self.processes:
            process.join(timeout=2.0)
            if process.is_alive():  # pragma: no cover
                process.terminate()
                process.join(timeout=1.0)
        for connection in self.connections:
            connection.close()
        self.connections = []
        self.processes = []
        self._owner = {}


# ------------------------------------------------------ generic task pool


def _task_worker_main(conn) -> None:
    """Worker loop: receive (index, task), apply the inherited function,
    reply (index, ok, payload)."""
    worker_fn: Callable[[Any], Any] = _HANDOFF
    try:
        while True:
            message = conn.recv()
            if message is None:
                break
            index, task = message
            try:
                conn.send((index, True, worker_fn(task)))
            except Exception as error:  # surfaced in the parent
                conn.send((index, False, repr(error)))
    except (EOFError, BrokenPipeError, KeyboardInterrupt):  # pragma: no cover
        pass
    finally:
        conn.close()


class TaskPool(ForkPool):
    """Map independent tasks over forked workers, deterministically.

    Dispatch is greedy -- each worker receives a new task as soon as it
    reports the previous one -- but results are slotted by task index,
    so :meth:`map` returns the same list whatever the scheduling or the
    worker count.  Tasks must therefore be self-contained (carry their
    own seeds) and results picklable.
    """

    def __init__(
        self,
        worker_fn: Callable[[Any], Any],
        workers: int,
        supervisor: Optional[Any] = None,
    ):
        """``supervisor`` is an optional
        :class:`~repro.checker.backends.supervision.TaskSupervisor`;
        without one the pool keeps its historical semantics (no
        timeouts, unbounded immediate retries)."""
        super().__init__(_task_worker_main, worker_fn, workers)
        self.supervisor = supervisor
        self._initial_workers = max(1, workers)

    def map(
        self,
        tasks: Sequence[Any],
        deadline: Optional[float] = None,
        on_result: Optional[Callable[[int, Any, Any], None]] = None,
    ) -> List[Optional[Any]]:
        """Run every task; results arrive in task order.

        ``deadline`` is a ``time.monotonic()`` timestamp: tasks not yet
        dispatched when it passes are skipped and come back as ``None``
        (the caller decides how to report them).  A task that raises in
        a worker re-raises here as :class:`RuntimeError`.  A worker that
        dies mid-task (OOM kill, segfault) is dropped and its in-flight
        task requeued onto the survivors; with no survivors the
        remaining tasks come back as ``None``.

        With a supervisor attached, three more rules apply: a task
        running past ``policy.task_timeout`` has its worker killed by
        the watchdog and is retried after exponential backoff; retries
        are bounded; and a poison task (repeated worker kills) is
        quarantined as ``None`` instead of draining the pool.  The pool
        forks replacement workers (bounded by the policy) when failures
        would otherwise leave it empty.

        ``on_result(index, task, result)`` fires in *completion* order
        as results arrive (the streaming hook behind campaign events);
        it never affects the returned list.  On KeyboardInterrupt or
        SystemExit every worker is terminated and reaped before the
        exception propagates -- Ctrl-C never orphans workers.
        """
        try:
            return self._map(tasks, deadline, on_result)
        except (KeyboardInterrupt, SystemExit):
            self.terminate()
            raise

    def _map(
        self,
        tasks: Sequence[Any],
        deadline: Optional[float],
        on_result: Optional[Callable[[int, Any, Any], None]],
    ) -> List[Optional[Any]]:
        supervisor = self.supervisor
        if supervisor is not None:
            supervisor.begin_map()
        timeout = (
            supervisor.policy.task_timeout if supervisor is not None else None
        )
        results: List[Optional[Any]] = [None] * len(tasks)
        active: Dict[Any, int] = {}
        started: Dict[Any, float] = {}
        retries: List[Tuple[float, int]] = []  # (ready_at, index)
        next_task = 0

        def pending_work(now: float) -> bool:
            return bool(retries) or next_task < len(tasks)

        def dispatch(connection) -> None:
            nonlocal next_task
            now = time.monotonic()
            while True:
                if retries and retries[0][0] <= now:
                    index = retries.pop(0)[1]
                elif next_task < len(tasks):
                    index = next_task
                    next_task += 1
                    if deadline is not None and now >= deadline:
                        continue  # skipped: stays None
                else:
                    return
                connection.send((index, tasks[index]))
                active[connection] = index
                started[connection] = now
                return

        def ensure_capacity() -> None:
            """Fork a replacement worker when failures emptied the band
            but work remains (supervised pools only, bounded)."""
            if supervisor is None or self.connections:
                return
            if not pending_work(time.monotonic()):
                return
            if not supervisor.respawn_allowed(self._initial_workers):
                return
            supervisor.worker_respawned()
            self.spawn_worker()

        def handle_failure(connection, verdict_fn) -> None:
            """Shared death/timeout bookkeeping: retire the connection,
            then retry (with backoff) or quarantine its task."""
            index = active.pop(connection)
            started.pop(connection, None)
            if supervisor is None:
                retries.append((0.0, index))
                return
            if verdict_fn(index, tasks[index]) == "retry":
                delay = supervisor.backoff_delay(index)
                supervisor.task_retried(index, tasks[index], delay)
                retries.append((time.monotonic() + delay, index))
                retries.sort()
            # quarantine: the slot stays None, recorded by the supervisor.

        for connection in list(self.connections):
            dispatch(connection)
        while active or retries:
            if not active:
                # Only backoff-delayed retries remain: sleep until the
                # first is ready, then feed an idle (possibly respawned)
                # worker.
                ensure_capacity()
                idle = [c for c in self.connections if c not in active]
                if not idle:
                    break  # no workers and no respawn budget: stay None
                wait = max(0.0, retries[0][0] - time.monotonic())
                if wait:
                    time.sleep(min(wait, 0.2))
                for connection in idle:
                    dispatch(connection)
                continue
            tick = 0.2
            if timeout is not None:
                now = time.monotonic()
                expiries = [
                    started[c] + timeout - now for c in active
                ]
                tick = max(0.01, min(0.2, min(expiries)))
            ready = mp_connection.wait(list(active), timeout=tick)
            for connection in ready:
                try:
                    index, ok, payload = connection.recv()
                except (EOFError, OSError):
                    # The worker died without replying: requeue its task
                    # for a surviving worker (or quarantine poison).
                    self.reap(connection)
                    handle_failure(
                        connection,
                        supervisor.worker_died if supervisor else None,
                    )
                    ensure_capacity()
                    continue
                del active[connection]
                started.pop(connection, None)
                if not ok:
                    raise RuntimeError(f"task {index} failed: {payload}")
                results[index] = payload
                if on_result is not None:
                    on_result(index, tasks[index], payload)
                dispatch(connection)
            if timeout is not None:
                now = time.monotonic()
                for connection in [
                    c
                    for c, t0 in started.items()
                    if c in active and now - t0 >= timeout
                ]:
                    # Watchdog: the task ran past its hard deadline; the
                    # worker is wedged, kill it and retry the task.
                    self.reap(connection)
                    handle_failure(connection, supervisor.task_timed_out)
                    ensure_capacity()
            if not active:
                # Workers may be idle after failures: hand them work.
                for connection in [
                    c for c in self.connections if c not in active
                ]:
                    dispatch(connection)
        return results


# ----------------------------------------------------------- BFS pool


def _bfs_worker_main(conn) -> None:
    """Worker loop: receive (delta_fps, frontier_shard, segments), expand,
    reply.

    ``segments`` selects the dedupe mode per round: ``None`` keeps the
    private visited set incrementally synchronized from ``delta``
    (``--dedupe rounds``); a tuple of shared-memory segment names attaches
    the :class:`~repro.checker.visited.SharedVisitedSet` those names
    describe, so candidate fingerprints dedupe against every worker in
    real time (``--dedupe shared``; ``delta`` arrives empty).
    """
    core: "CompiledSpec" = _HANDOFF
    schema = core.schema
    seen: set = set()
    shared = None
    try:
        while True:
            message = conn.recv()
            if message is None:
                break
            delta, entries, segments = message
            if segments is not None:
                from repro.checker import visited

                if shared is None:
                    shared = visited.SharedVisitedSet.attach(segments)
                else:
                    shared.attach_new(segments)
                table = shared
            else:
                seen.update(delta)
                table = seen
            if core.kernel is not None:
                # Compiled path: the shard is already (fp, values, known,
                # digests) rows, and kernel candidates carry raw value
                # tuples -- exactly the wire format -- so the batch result
                # ships without any per-candidate conversion.  Workers
                # adapt their memo layout independently inside
                # expand_batch (fork gives each its own core copy).
                conn.send(
                    core.expand_batch(FrontierBatch.from_entries(entries), table)
                )
                continue
            out = []
            for entry_fp, values, known, digests in entries:
                state = State(schema, values)
                transitions, candidates = core.expand(
                    state, known, table, entry_fp, digests
                )
                out.append(
                    (
                        entry_fp,
                        transitions,
                        [
                            (idx, nxt.values, fp, mask, viols, masked, ok, nd)
                            for idx, nxt, fp, mask, viols, masked, ok, nd in candidates
                        ],
                    )
                )
            conn.send(out)
    except (EOFError, BrokenPipeError, KeyboardInterrupt):  # pragma: no cover
        pass
    finally:
        if shared is not None:
            shared.close()
        conn.close()


class WorkerPool(ForkPool):
    """A fixed band of forked BFS workers with per-worker pipes.

    Task/worker affinity is explicit (worker *i* always receives shard
    *i*), which is what lets each worker maintain an incrementally
    synchronized visited-fingerprint set instead of receiving the full
    set every round.
    """

    def __init__(self, core: "CompiledSpec", workers: int):
        super().__init__(_bfs_worker_main, core, workers)

    def round(
        self,
        delta: List[int],
        frontier: List[Tuple[int, Tuple, int, Tuple[int, ...]]],
        segments: Optional[Tuple[str, ...]] = None,
    ) -> List[Tuple[int, int, list]]:
        """Expand one frontier layer; results arrive in frontier order."""
        shard_count = len(self.connections)
        base, extra = divmod(len(frontier), shard_count)
        shards = []
        cursor = 0
        for index in range(shard_count):
            size = base + (1 if index < extra else 0)
            shards.append(frontier[cursor : cursor + size])
            cursor += size
        for connection, shard in zip(self.connections, shards):
            connection.send((delta, shard, segments))
        merged: List[Tuple[int, int, list]] = []
        for connection in self.connections:
            merged.extend(connection.recv())
        return merged


# ------------------------------------------------------- sharded DFS


def run_dfs_sharded(engine: "ExplorationEngine") -> CheckResult:
    """Bounded DFS sharded across forked workers (``--dedupe shared``).

    The parent claims the initial states, expands them one level, and
    deals the depth-1 subtrees round-robin across ``engine.workers``
    forked workers.  All workers share one
    :class:`~repro.checker.visited.SharedVisitedSet`: a state claimed by
    any worker prunes every other worker's subtree in real time, so the
    shards cooperate instead of re-exploring each other's territory
    (the ROADMAP's "shard the DFS visited sets" item).

    Unlike the round-synchronous BFS modes this traversal is *not*
    deterministic across runs -- subtree interleaving depends on
    scheduling -- but reported violations always carry replayable
    traces, and the merge consumes worker results in shard order.
    Like the sequential DFS, the search stops at the first violation
    (each shard stops at its own first; the merge reports the first in
    shard order).  ``max_states`` is split evenly across workers;
    distinct-state accounting sums each worker's successful table
    claims, which a lost compare-and-publish race can overcount by the
    handful of states two workers claimed simultaneously.
    """
    from repro.checker import visited

    spec = engine.spec
    core = engine._compile()
    result = CheckResult(spec_name=spec.name)
    start = time.monotonic()
    max_depth = engine.max_depth if engine.max_depth is not None else 40
    table = visited.SharedVisitedSet(visited.suggest_capacity(engine.max_states))
    try:
        roots: List[Tuple] = []
        local_seen: set = set()
        for init in spec.initial_states():
            if (
                engine.max_states is not None
                and result.states_explored >= engine.max_states
            ):
                result.budget_exhausted = "max_states"
                break
            fp, digests = core.fingerprinter.of_values_with_digests(init.values)
            if not table.add(fp):
                continue
            result.states_explored += 1
            viols, masked, ok = core.classify(init)
            if masked:
                continue
            if viols:
                result.violations.append(
                    Violation(
                        invariant=core.invariants[viols[0]],
                        trace=Trace(states=[init], labels=[]),
                    )
                )
                return result
            if not ok or max_depth < 1:
                continue
            transitions, candidates = core.expand(
                init, 0, local_seen, fp, digests, classify_candidates=False
            )
            result.transitions += transitions
            for idx, nxt, nfp, nknown, _, _, _, ndigests in candidates:
                roots.append(
                    (nxt.values, nfp, (idx,), init.values, nknown, ndigests)
                )

        workers = max(1, engine.workers)
        shards = [roots[index::workers] for index in range(workers)]
        share, rem = (None, 0)
        if engine.max_states is not None:
            budget = max(0, engine.max_states - result.states_explored)
            share, rem = divmod(budget, workers)
        time_left = None
        if engine.max_time is not None:
            time_left = max(0.05, engine.max_time - (time.monotonic() - start))
        names = table.descriptors()

        def run_shard(task):
            shard_index, shard = task
            shard_table = visited.SharedVisitedSet.attach(names)
            shard_start = time.monotonic()
            out = {
                "states": 0,
                "transitions": 0,
                "max_depth": 0,
                "violations": [],
                "budget_exhausted": None,
            }
            state_budget = None
            if share is not None:
                state_budget = share + (1 if shard_index < rem else 0)
            schema = core.schema
            throwaway: set = set()
            stack = list(reversed(shard))
            try:
                while stack:
                    if state_budget is not None and out["states"] >= state_budget:
                        out["budget_exhausted"] = "max_states"
                        break
                    if (
                        time_left is not None
                        and time.monotonic() - shard_start > time_left
                    ):
                        out["budget_exhausted"] = "max_time"
                        break
                    values, fp, chain, init_values, known, digests = stack.pop()
                    if not shard_table.add(fp):
                        continue
                    out["states"] += 1
                    depth = len(chain)
                    if depth > out["max_depth"]:
                        out["max_depth"] = depth
                    viols, masked, ok = core.classify_values(values)
                    if masked:
                        continue
                    if viols:
                        # Mirror the sequential DFS: the search stops at
                        # its first violation.
                        out["violations"].append(
                            (
                                core.invariants[viols[0]].ident,
                                core.invariants[viols[0]].instance,
                                [core.labels[i] for i in chain],
                                init_values,
                            )
                        )
                        break
                    if depth >= max_depth or not ok:
                        continue
                    throwaway.clear()
                    if core.kernel is not None:
                        ((_, transitions, kcands),) = core.expand_batch(
                            FrontierBatch.single(fp, values, known, digests),
                            throwaway,
                            classify_candidates=False,
                        )
                        out["transitions"] += transitions
                        for idx, svt, nfp, nknown, _, _, _, ndigests in kcands:
                            if nfp not in shard_table:
                                stack.append(
                                    (
                                        svt,
                                        nfp,
                                        chain + (idx,),
                                        init_values,
                                        nknown,
                                        ndigests,
                                    )
                                )
                        continue
                    transitions, candidates = core.expand(
                        State(schema, values), known, throwaway, fp, digests,
                        classify_candidates=False,
                    )
                    out["transitions"] += transitions
                    for idx, nxt, nfp, nknown, _, _, _, ndigests in candidates:
                        if nfp not in shard_table:
                            stack.append(
                                (
                                    nxt.values,
                                    nfp,
                                    chain + (idx,),
                                    init_values,
                                    nknown,
                                    ndigests,
                                )
                            )
                out["exhausted_stack"] = not stack
            finally:
                shard_table.close()
            return out

        pool = TaskPool(run_shard, workers)
        try:
            deadline = None if time_left is None else time.monotonic() + time_left + 5.0
            outcomes = pool.map(list(enumerate(shards)), deadline=deadline)
        finally:
            pool.close()

        exhausted_all = True
        by_key = {(inv.ident, inv.instance): inv for inv in spec.invariants}
        for outcome in outcomes:
            if outcome is None:
                # Deadline-skipped or lost to a worker death: the shard's
                # subtree was not searched, which must be visible in the
                # result rather than passing for a clean partial run.
                exhausted_all = False
                if result.budget_exhausted is None:
                    result.budget_exhausted = "max_time"
                continue
            result.states_explored += outcome["states"]
            result.transitions += outcome["transitions"]
            if outcome["max_depth"] > result.max_depth:
                result.max_depth = outcome["max_depth"]
            if outcome["budget_exhausted"] is not None:
                exhausted_all = False
                if result.budget_exhausted is None:
                    result.budget_exhausted = outcome["budget_exhausted"]
            if not outcome.get("exhausted_stack", False):
                exhausted_all = False
            if result.violations:
                continue  # first violation in shard order wins
            for ident, instance, labels, init_values in outcome["violations"][:1]:
                initial = State(spec.schema, init_values)
                states = spec.replay(labels, initial)
                result.violations.append(
                    Violation(
                        invariant=by_key[(ident, instance)],
                        trace=Trace(states=states, labels=list(labels)),
                    )
                )
        result.completed = (
            exhausted_all
            and not result.violations
            and result.budget_exhausted is None
        )
    finally:
        table.close()
        result.elapsed_seconds = time.monotonic() - start
    return result


# ------------------------------------------------------ portfolio race


def _encode_result(result: CheckResult) -> Dict[str, Any]:
    """Reduce a CheckResult to picklable primitives (invariant predicates
    and specs hold closures, so Violation objects cannot cross a pipe)."""
    violations = []
    for violation in result.violations:
        trace = violation.trace
        violations.append(
            (
                violation.invariant.ident,
                violation.invariant.instance,
                [label for label in trace.labels],
                trace.initial.values,
            )
        )
    return {
        "spec_name": result.spec_name,
        "states_explored": result.states_explored,
        "transitions": result.transitions,
        "max_depth": result.max_depth,
        "elapsed_seconds": result.elapsed_seconds,
        "completed": result.completed,
        "budget_exhausted": result.budget_exhausted,
        "violations": violations,
    }


def _decode_result(engine: "ExplorationEngine", payload: Dict[str, Any]) -> CheckResult:
    spec = engine.spec
    result = CheckResult(spec_name=payload["spec_name"])
    result.states_explored = payload["states_explored"]
    result.transitions = payload["transitions"]
    result.max_depth = payload["max_depth"]
    result.elapsed_seconds = payload["elapsed_seconds"]
    result.completed = payload["completed"]
    result.budget_exhausted = payload["budget_exhausted"]
    by_key = {(inv.ident, inv.instance): inv for inv in spec.invariants}
    for ident, instance, labels, init_values in payload["violations"]:
        initial = State(spec.schema, init_values)
        states = spec.replay(labels, initial)
        result.violations.append(
            Violation(
                invariant=by_key[(ident, instance)],
                trace=Trace(states=states, labels=list(labels)),
            )
        )
    return result


def _portfolio_contender_main(queue, tag: str) -> None:
    engine: "ExplorationEngine" = _HANDOFF
    try:
        result = engine.run()
        queue.put((tag, _encode_result(result)))
    except Exception as error:  # pragma: no cover - surfaced to parent
        queue.put((tag, {"error": repr(error)}))


def run_portfolio(engine: "ExplorationEngine") -> CheckResult:
    """Race one BFS contender against seeded random walkers.

    Returns the first result that carries a violation, else the BFS
    result (the only contender able to prove completion) once every
    contender has reported or the time budget lapses.

    With ``--dedupe shared`` the contenders additionally share one
    visited table: the BFS contender publishes every accepted state and
    the walkers publish every step, so a walker that strays into
    territory the band has already covered cuts its walk short and
    respins somewhere fresh instead of re-walking known states.
    """
    global _HANDOFF
    context = mp.get_context("fork")
    results_queue = context.Queue()
    contenders = []
    table = None
    if engine.dedupe == "shared":
        from repro.checker import visited

        if visited.available():
            table = visited.SharedVisitedSet(
                visited.suggest_capacity(engine.max_states)
            )
    specs = [("bfs", engine._spawn("bfs", engine.seed))]
    for index in range(1, engine.workers):
        specs.append(
            (f"walk-{index}", engine._spawn("random", engine.seed + index))
        )
    if table is not None:
        for _, contender_engine in specs:
            contender_engine._shared_visited = table.descriptors()
    start = time.monotonic()
    for tag, contender in specs:
        _HANDOFF = contender
        try:
            process = context.Process(
                target=_portfolio_contender_main,
                args=(results_queue, tag),
                daemon=True,
            )
            process.start()
        finally:
            _HANDOFF = None
        contenders.append(process)

    deadline = None if engine.max_time is None else start + engine.max_time + 5.0
    outcomes: Dict[str, CheckResult] = {}
    winner: Optional[CheckResult] = None
    try:
        while len(outcomes) < len(specs):
            if deadline is not None and time.monotonic() >= deadline:
                break
            try:
                tag, payload = results_queue.get(timeout=1.0)
            except pyqueue.Empty:
                # No result yet; if every contender died without
                # reporting (killed, OOM, ...), stop waiting instead of
                # hanging on an unbounded get.
                if not any(process.is_alive() for process in contenders):
                    break
                continue
            if "error" in payload:
                raise RuntimeError(
                    f"portfolio contender {tag} failed: {payload['error']}"
                )
            outcomes[tag] = _decode_result(engine, payload)
            if outcomes[tag].found_violation:
                winner = outcomes[tag]
                break
    finally:
        for process in contenders:
            if process.is_alive():
                process.terminate()
        for process in contenders:
            process.join(timeout=2.0)
        results_queue.close()
        if table is not None:
            table.close()

    if winner is None:
        winner = outcomes.get("bfs")
    if winner is None and outcomes:
        winner = next(iter(outcomes.values()))
    if winner is None:
        winner = CheckResult(spec_name=engine.spec.name)
        winner.budget_exhausted = "max_time"
    winner.elapsed_seconds = time.monotonic() - start
    return winner
