"""Action coverage statistics (TLC's "coverage" report).

When a specification passes, coverage tells you whether the model
actually exercised every action -- an unfired action usually means a
guard is wrong or a scenario is missing, exactly the class of
specification mistakes conformance checking hunts at the code level.
"""

from __future__ import annotations

import time
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import List, Optional, Set

from repro.tla.spec import Specification
from repro.tla.state import State


@dataclass
class CoverageReport:
    """Per-action transition counts over the explored state space."""

    spec_name: str
    fired: Counter = field(default_factory=Counter)
    declared: List[str] = field(default_factory=list)
    states_explored: int = 0
    elapsed_seconds: float = 0.0
    complete: bool = False

    def unfired(self) -> List[str]:
        """Actions that never produced a transition."""
        return [name for name in self.declared if self.fired[name] == 0]

    def coverage_fraction(self) -> float:
        if not self.declared:
            return 1.0
        hit = sum(1 for name in self.declared if self.fired[name] > 0)
        return hit / len(self.declared)

    def summary(self) -> str:
        lines = [
            f"[{self.spec_name}] action coverage over "
            f"{self.states_explored} states "
            f"({self.coverage_fraction():.0%} of "
            f"{len(self.declared)} actions fired):"
        ]
        for name in self.declared:
            lines.append(f"  {name}: {self.fired[name]}")
        missing = self.unfired()
        if missing:
            lines.append(f"  UNFIRED: {', '.join(missing)}")
        return "\n".join(lines)


def measure_coverage(
    spec: Specification,
    max_states: Optional[int] = 50_000,
    max_time: Optional[float] = 60.0,
) -> CoverageReport:
    """BFS over the state graph counting transitions per action."""
    report = CoverageReport(
        spec_name=spec.name,
        declared=[action.name for action in spec.actions],
    )
    start = time.monotonic()
    seen: Set[State] = set()
    frontier: deque = deque()
    for init in spec.initial_states():
        if init not in seen:
            seen.add(init)
            frontier.append(init)
    while frontier:
        if max_states is not None and len(seen) >= max_states:
            break
        if max_time is not None and time.monotonic() - start > max_time:
            break
        state = frontier.popleft()
        if not spec.within_constraint(state):
            continue
        for label, nxt in spec.successors(state):
            report.fired[label.name] += 1
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    report.states_explored = len(seen)
    report.elapsed_seconds = time.monotonic() - start
    report.complete = not frontier
    return report
