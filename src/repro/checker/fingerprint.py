"""64-bit state fingerprinting (the TLC fingerprint set).

The seed checker deduplicated by storing full :class:`State` objects in a
dict, which is the memory bottleneck for large state spaces.  The engine
instead stores a 64-bit fingerprint per visited state, derived from a
canonical byte encoding of the state's values.

Python's builtin ``hash()`` is intentionally NOT used: string hashing is
salted per interpreter (PYTHONHASHSEED), so hashes computed in different
worker processes would disagree and the parallel engine could never merge
visited sets.  The canonical encoding below is stable across processes,
runs and platforms.

Fingerprints are Zobrist-style: the state fingerprint is the XOR of one
digest per (slot index, slot value) pair, each digest memoized per slot.
XOR composition makes the fingerprint *incrementally updatable*: a
successor state that changes k slots costs O(k) digest lookups
(``fp' = fp ^ H(i, old) ^ H(i, new)`` per changed slot) instead of
re-encoding the whole state -- see :meth:`Fingerprinter.update`.  This
is what makes fingerprinting cheaper than the full ``State`` hashing +
equality the seed dict paid for.

The encoding mirrors :class:`State` equality semantics, because the cache
is keyed by value equality and equal values must fingerprint equally:

- ``bool`` and ``int`` encode identically (``True == 1`` in a values
  tuple, and the seed dict deduplicated them as equal); integral floats
  encode as their integer (``1.0 == 1``);
- tuple *subclasses* (``Zxid``, ``Txn`` -- NamedTuples) encode as plain
  tuples, matching tuple equality semantics;
- :class:`Rec` encodes with its own tag: a record is never equal to the
  tuple of its items.

Fingerprints are 64-bit, so a run of n states has collision probability
about n^2 / 2^65 (a 10M-state run: ~3e-6).  A colliding state is silently
treated as already visited -- the standard TLC trade-off.  The ``bits``
parameter narrows the fingerprint space to make collisions reachable in
tests.
"""

from __future__ import annotations

from hashlib import blake2b
from typing import Any, Tuple

from repro.tla.state import State
from repro.tla.values import Rec

#: Entries kept in each per-slot digest cache before it is reset.  The
#: cache is a pure memo, so clearing it only costs re-encoding.
_CACHE_LIMIT = 1 << 19


class FingerprintError(TypeError):
    """A state contained a value the canonical encoder does not know."""


def _encode(value: Any, buf: bytearray) -> None:
    """Append a canonical, self-delimiting encoding of ``value``."""
    kind = type(value)
    if kind is int or kind is bool:
        buf += b"i%d;" % value
    elif kind is str:
        raw = value.encode("utf-8")
        buf += b"s%d;" % len(raw)
        buf += raw
    elif kind is tuple:
        buf += b"t%d;" % len(value)
        for item in value:
            _encode(item, buf)
    elif value is None:
        buf += b"n;"
    elif kind is frozenset:
        parts = []
        for item in value:
            sub = bytearray()
            _encode(item, sub)
            parts.append(bytes(sub))
        parts.sort()
        buf += b"f%d;" % len(parts)
        for part in parts:
            buf += part
    elif isinstance(value, tuple):  # NamedTuple subclasses: Zxid, Txn, ...
        buf += b"t%d;" % len(value)
        for item in value:
            _encode(item, buf)
    elif kind is Rec or isinstance(value, Rec):
        items = value._items
        buf += b"r%d;" % len(items)
        for key, item in items:
            _encode(key, buf)
            _encode(item, buf)
    elif kind is float:
        # Equal values must encode equally: 1.0 == 1 in a values tuple.
        if value.is_integer():
            buf += b"i%d;" % int(value)
        elif value != value:
            raise FingerprintError("cannot fingerprint NaN")
        else:
            buf += b"d%s;" % repr(value).encode("ascii")
    elif isinstance(value, State):
        buf += b"S;"
        _encode(value.values, buf)
    elif isinstance(value, int):  # other int subclasses (IntEnum, ...)
        buf += b"i%d;" % int(value)
    elif isinstance(value, str):
        raw = str(value).encode("utf-8")
        buf += b"s%d;" % len(raw)
        buf += raw
    else:
        raise FingerprintError(
            f"cannot fingerprint value of type {kind.__name__}: {value!r}"
        )


def canonical_bytes(values: Tuple[Any, ...]) -> bytes:
    """The canonical encoding of a values tuple (exposed for tests)."""
    buf = bytearray()
    _encode(values, buf)
    return bytes(buf)


class Fingerprinter:
    """Maps states to ``bits``-wide integer fingerprints.

    The default 64 bits is what production checking uses; tests pass a
    small ``bits`` to force collisions and exercise the engine's
    collision behaviour (a colliding state is treated as visited).
    """

    __slots__ = ("bits", "_mask", "_caches")

    def __init__(self, bits: int = 64):
        if not 1 <= bits <= 64:
            raise ValueError(f"fingerprint width must be 1..64 bits, got {bits}")
        self.bits = bits
        self._mask = (1 << bits) - 1
        self._caches: list = []  # per slot index: {value: digest}

    def _cache_for(self, index: int) -> dict:
        caches = self._caches
        while len(caches) <= index:
            caches.append({})
        return caches[index]

    def slot_digest(self, index: int, value: Any) -> int:
        """The digest of one (slot index, value) pair, memoized."""
        caches = self._caches
        cache = caches[index] if index < len(caches) else self._cache_for(index)
        digest = cache.get(value)
        if digest is None:
            buf = bytearray(b"%d|" % index)
            _encode(value, buf)
            raw = blake2b(bytes(buf), digest_size=8).digest()
            digest = int.from_bytes(raw, "big") & self._mask
            if len(cache) >= _CACHE_LIMIT:
                cache.clear()
            cache[value] = digest
        return digest

    def of_values(self, values: Tuple[Any, ...]) -> int:
        acc = 0
        slot_digest = self.slot_digest
        for index, value in enumerate(values):
            acc ^= slot_digest(index, value)
        return acc

    def of_state(self, state: State) -> int:
        return self.of_values(state.values)

    def of_values_with_digests(
        self, values: Tuple[Any, ...]
    ) -> Tuple[int, Tuple[int, ...]]:
        """The fingerprint plus the per-slot digest tuple.

        The engine threads the digest tuple along the frontier so that a
        successor's fingerprint only needs digests for changed slots.
        """
        slot_digest = self.slot_digest
        digests = tuple(
            slot_digest(index, value) for index, value in enumerate(values)
        )
        acc = 0
        for digest in digests:
            acc ^= digest
        return acc, digests

    def update(
        self,
        fingerprint: int,
        values: Tuple[Any, ...],
        changes,
    ) -> int:
        """Incrementally fingerprint a successor.

        ``fingerprint``/``values`` describe the parent state; ``changes``
        iterates (slot index, new value) pairs.  A pair whose new value
        equals the old one cancels out (H ^ H == 0), so callers need not
        pre-filter no-op writes.  When most slots change, prefer
        :meth:`of_values` on the successor (two lookups per change vs one
        per slot).
        """
        slot_digest = self.slot_digest
        for index, new_value in changes:
            old_value = values[index]
            if old_value is new_value:
                continue
            fingerprint ^= slot_digest(index, old_value) ^ slot_digest(
                index, new_value
            )
        return fingerprint

    def __repr__(self) -> str:
        return f"Fingerprinter(bits={self.bits})"


class IncrementalFingerprinter(Fingerprinter):
    """A schema-aware fingerprinter with a name-keyed delta API.

    :class:`Fingerprinter` works on slot indices; the exploration engine
    (and, through it, the random walkers and campaign suffix replays)
    threads per-slot digest tuples through its frontier and pays one
    digest lookup per *changed* slot.  This subclass is the public
    name-keyed mirror of that arithmetic for external callers driving
    states by hand via :meth:`State.set_many
    <repro.tla.state.State.set_many>`:

        fp' = fp ^ H(var, old) ^ H(var, new)   over written variables only

    A delta is itself an XOR mask: ``parent_fp ^ delta(values, updates)``
    is the successor fingerprint, and deltas compose by XOR.
    """

    __slots__ = ("schema",)

    def __init__(self, schema, bits: int = 64):
        super().__init__(bits=bits)
        self.schema = schema

    def seed(self, state: State) -> Tuple[int, Tuple[int, ...]]:
        """Full fingerprint + per-slot digests of a walk's start state."""
        return self.of_values_with_digests(state.values)

    def delta(self, values: Tuple[Any, ...], updates) -> int:
        """The XOR fingerprint delta of a name-keyed update dict.

        An update that leaves a variable's value unchanged contributes
        nothing (``H ^ H == 0``), matching :class:`State` equality.
        """
        index = self.schema._index
        slot_digest = self.slot_digest
        mask = 0
        for name, new_value in updates.items():
            slot = index[name]
            old_value = values[slot]
            if old_value is new_value:
                continue
            mask ^= slot_digest(slot, old_value) ^ slot_digest(slot, new_value)
        return mask

    def successor(
        self, fingerprint: int, state: State, updates
    ) -> Tuple[State, int]:
        """Apply a name-keyed update: ``(next_state, next_fingerprint)``."""
        nxt, mask = state.set_many(updates, fingerprinter=self)
        return nxt, fingerprint ^ mask


def fingerprint_state(state: State) -> int:
    """Fingerprint one state with a default 64-bit fingerprinter.

    Fingerprints are a pure function of the state's values, so this is
    interchangeable with any :class:`Fingerprinter` instance at 64 bits.
    """
    return Fingerprinter().of_state(state)
