"""The unified state-space exploration engine.

:class:`ExplorationEngine` is the scheduler every checking strategy plugs
into; the legacy :class:`~repro.checker.bfs.BFSChecker` and
:class:`~repro.checker.dfs.DFSChecker` are thin wrappers over it.

Strategies
----------

``bfs``
    Layered (round-synchronous) breadth-first search.  The visited set
    stores 64-bit fingerprints (:mod:`repro.checker.fingerprint`) instead
    of full states; parent links are kept per fingerprint as compact
    ``fp -> (parent_fp, instance_index)`` integers and counterexamples are
    rebuilt by replaying the label chain from the initial state.  With
    ``workers > 1`` each round's frontier is sharded across forked worker
    processes (:mod:`repro.checker.parallel`) and the newly discovered
    fingerprints are merged between rounds; results are bitwise identical
    to the sequential run on deterministic budgets.
``dfs``
    Bounded depth-first search for a quick first violation.
``random``
    Seeded random walks that check invariants along the way.
``portfolio``
    Races BFS against a band of differently-seeded random walks and
    returns the first violation any of them finds (with ``workers > 1``
    the contenders run in parallel processes).

Hot-path engineering (where the >=2x over the seed checker comes from;
``incremental=False`` switches the analysis-based parts off for A/B
soundness checks):

- invariants are evaluated once per distinct state (the seed evaluated
  them at discovery *and* again at expansion), and their verdicts are
  memoized per projection of the state onto their declared read sets
  (``Invariant.reads``);
- guard memoization: each action declares the variables its enabling
  condition reads (the paper's dependency variables, Appendix B).
  Instances sharing a read set form a group whose projection is hashed
  once per state; the memo stores the disabled-instance bitmask per
  projection value.  On top of that, an instance disabled in the parent
  whose reads miss the taken action's write set is known-disabled in
  the child without any lookup (the ``affects`` interference matrix);
- successor fingerprints are updated incrementally from the parent's
  per-slot digest tuple (one digest lookup per changed slot), and
  ``State`` objects are only materialized for successors that survive
  the fingerprint dedup;
- action parameter bindings are pre-bound with ``functools.partial``
  instead of rebuilding a kwargs dict per application;
- the cyclic garbage collector is suspended during exploration (states
  are immutable; exploration allocates millions of short-lived tuples
  that the generational GC would repeatedly scan).
"""

from __future__ import annotations

import gc
import random
import time
from functools import partial
from operator import itemgetter
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.checker.fingerprint import Fingerprinter
from repro.checker.result import CheckResult, Violation
from repro.checker.trace import Trace
from repro.tla.batch import FrontierBatch
from repro.tla.spec import Specification
from repro.tla.state import State

#: Strategy names accepted by the engine (and the CLI ``--strategy`` flag).
STRATEGIES = ("bfs", "dfs", "random", "portfolio")

#: Kernel compilation modes (``--compile``).  ``auto`` compiles specs whose
#: declarations the static analyzer proves truthful (``repro lint`` rules
#: D01/D03/D05/D07 and P01-P04) and falls back to the interpreted path
#: otherwise; ``on`` forces compilation (same trust model as the PR-5
#: memo: garbage declarations in, garbage out -- pair with ``--debug-deps``
#: to cross-check); ``off`` forces the interpreted path.
COMPILE_MODES = ("auto", "on", "off")

#: BFS rounds are swept through the compiled kernel in chunks of this many
#: frontier entries.  Large enough to amortize batch setup, small enough
#: that budget checks between chunks keep truncated runs from over-expanding
#: past ``max_states`` (the sequential interpreted path stops per state).
_KERNEL_CHUNK = 512

#: Lint rules that block kernel compilation in ``auto`` mode.  The kernel
#: replays memoized update bindings keyed on the dependency closure, which
#: is sound exactly when the closure declarations are honest: D01 (reads
#: outside the closure), D03 (undeclared writes), D05/D07 (unresolvable /
#: malformed declarations) and the purity rules P01-P04 each break that
#: contract.  D02/D04 (over-declaration) and D06 (no closure at all) are
#: harmless: over-declared closures only widen memo keys, and closure-less
#: actions land in the never-memoized eager sweep.
_TRUST_BLOCKING = frozenset({"D01", "D03", "D05", "D07", "P01", "P02", "P03", "P04"})

#: Per-action lint verdict cache, keyed on the action's code object and
#: declarations (identity-free, so recomposing a spec from the same module
#: actions -- the common case for the ZooKeeper/Raft plugins -- does not
#: re-run the analyzer).
_TRUST_CACHE: Dict[tuple, bool] = {}
_TRUST_CACHE_LIMIT = 4096


def kernel_trusted(spec: Specification) -> bool:
    """Whether ``--compile auto`` may emit kernels for this spec.

    Runs the PR-8 static analyzer over every action and requires zero
    findings for the trust-critical rules (:data:`_TRUST_BLOCKING`).  The
    verdict is cached on the spec object, and per-action verdicts are
    cached globally by code object + declarations, so repeated spec
    composition stays cheap.  Any analyzer failure counts as untrusted:
    the engine then simply stays on the interpreted path.
    """
    verdict = getattr(spec, "_kernel_trusted", None)
    if verdict is not None:
        return verdict
    verdict = True
    schema_names = frozenset(spec.schema.names)
    analyzer = None
    try:
        from repro.analysis.declarations import check_action
        from repro.analysis.deps import SpecAnalyzer

        for action in spec.actions:
            sources = tuple(
                sorted((k, tuple(sorted(v))) for k, v in action.update_sources.items())
            )
            key = (action.fn.__code__, action.reads, action.writes, sources, schema_names)
            cached = _TRUST_CACHE.get(key)
            if cached is None:
                if analyzer is None:
                    analyzer = SpecAnalyzer()
                findings = check_action(spec.name, action, set(schema_names), analyzer)
                cached = not any(f.rule in _TRUST_BLOCKING for f in findings)
                if len(_TRUST_CACHE) >= _TRUST_CACHE_LIMIT:
                    _TRUST_CACHE.clear()
                _TRUST_CACHE[key] = cached
            if not cached:
                verdict = False
                break
    except Exception:
        verdict = False
    spec._kernel_trusted = verdict
    return verdict

#: Cross-worker dedupe modes for the parallel strategies (``--dedupe``).
#: ``rounds`` merges visited-fingerprint sets at round barriers and is
#: bitwise-identical to the sequential run; ``shared`` dedupes in real
#: time through a shared-memory visited table (same visited-state count
#: and violation set, order-insensitive).
DEDUPE_MODES = ("rounds", "shared")

#: Placeholder ``seen`` set for dedupe-off expansions (never read or
#: written when ``dedupe=False``).
_UNUSED_SEEN: set = set()

#: Candidate successor record produced by :meth:`CompiledSpec.expand`:
#: (instance_index, successor_state, fingerprint, child_known_disabled,
#:  violated_invariant_indices, masked, within_constraint, slot_digests)
Candidate = Tuple[int, Any, int, int, Tuple[int, ...], bool, bool, Tuple[int, ...]]


class CompiledSpec:
    """A specification pre-resolved for the exploration hot path.

    Everything the per-state inner loop needs is flattened into parallel
    lists indexed by action-instance position: the pre-bound applier
    callables, trace labels, and the read/write interference matrix
    ``affects`` (bit *i* of ``affects[j]`` is set when instance *i* reads
    a variable instance *j* writes).
    """

    __slots__ = (
        "spec",
        "config",
        "schema",
        "fingerprinter",
        "labels",
        "appliers",
        "actions",
        "affects",
        "guard_groups",
        "guard_group_slots",
        "guard_memos",
        "guard_stats",
        "outcome_groups",
        "outcome_group_slots",
        "outcome_memos",
        "outcome_stats",
        "kernel_outcome_memos",
        "direct",
        "eager",
        "ungrouped",
        "invariant_fns",
        "invariants",
        "inv_groups",
        "inv_group_slots",
        "inv_memos",
        "inv_ungrouped",
        "mask_key",
        "mask_slots",
        "mask_memo",
        "constraint_key",
        "constraint_slots",
        "constraint_memo",
        "constraint",
        "mask",
        "n_instances",
        "debug",
        "compile_mode",
        "kernel",
        "kernel_source",
        "expand_calls",
        "_last_adapt",
        "_shadowed_guards",
        "demoted_groups",
    )

    #: Disabled-guard memo entries kept per instance before reset.
    GUARD_MEMO_LIMIT = 1 << 18

    #: Outcome memo entries kept per dependency-closure group before
    #: reset (entries hold update tuples, so the cap is tighter than the
    #: bitmask-valued guard memo).
    OUTCOME_MEMO_LIMIT = 1 << 17

    #: Expansions between adaptive hit-rate sweeps; also the minimum
    #: per-group lookup window before a demotion verdict (small enough to
    #: shed a cold wide group early in a run, large enough that the early
    #: all-miss warmup phase cannot demote a group that is about to get
    #: hot).
    ADAPT_INTERVAL = 1024

    #: Window hit-rate floors.  A *wide* group (closure spanning more than
    #: half the schema -- the PR-5 static heuristic dropped these outright)
    #: must earn its near-unique projection keys with a decent hit rate; a
    #: narrow group's key is cheap, so it is only dropped when essentially
    #: nothing hits.
    ADAPT_WIDE_RATE = 0.10
    ADAPT_NARROW_RATE = 0.02

    def __init__(
        self,
        spec: Specification,
        fingerprinter: Optional[Fingerprinter] = None,
        mask: Optional[Callable[[State], bool]] = None,
        incremental: bool = True,
        debug: bool = False,
        compile_mode: str = "auto",
    ):
        if compile_mode not in COMPILE_MODES:
            raise ValueError(
                f"unknown compile mode {compile_mode!r}; options: {list(COMPILE_MODES)}"
            )
        self.spec = spec
        self.config = spec.config
        self.schema = spec.schema
        self.fingerprinter = fingerprinter or Fingerprinter()
        self.mask = mask
        self.debug = debug
        instances = spec.action_instances()
        self.n_instances = len(instances)
        self.labels = [inst.label for inst in instances]
        self.actions = [inst.action for inst in instances]
        appliers = []
        for inst in instances:
            kwargs = dict(inst.binding)
            appliers.append(partial(inst.action.fn, **kwargs) if kwargs else inst.action.fn)
        self.appliers = appliers
        if incremental:
            reads = [inst.action.reads for inst in instances]
            writes = [inst.action.writes for inst in instances]
            # An action with no declared reads has an *unknown* guard
            # dependency set (the Action API default), not an empty one:
            # it must be re-evaluated in every state, so every writer
            # "affects" it.  The guard memo below applies the same rule
            # (undeclared -> ungrouped).
            undeclared = 0
            for i in range(self.n_instances):
                if not reads[i]:
                    undeclared |= 1 << i
            affects = []
            for j in range(self.n_instances):
                bits = undeclared
                write_set = writes[j]
                for i in range(self.n_instances):
                    if reads[i] & write_set:
                        bits |= 1 << i
                affects.append(bits)
            # Guard memoization: an action's enabling condition depends
            # only on its declared read variables (the paper's dependency
            # variables), so a *disabled* verdict can be memoized per
            # projection of the state onto those variables.  Only the
            # disabled case is cached -- an enabled action's update may
            # read beyond the guard set, so it is always re-applied.
            # Instances sharing a read set are grouped so the projection
            # is built and hashed once per state, and the memo stores a
            # disabled-instance bitmask per projection value.
            # Outcome memoization, by dependency *closure* (Action.
            # dependency_closure: reads | writes | update_sources).  The
            # closure determines the function's entire outcome -- the
            # enabled/disabled verdict and every update value -- so the
            # memo stores, per projection of the state onto the closure,
            # the full per-instance outcome vector: the group's disabled
            # bitmask plus the raw (slot, new-value) update pairs of the
            # enabled members.  A state whose closure projection was
            # seen before (in particular: a child whose projection the
            # parent's action left untouched) inherits the verdict and
            # the memoized update bindings without re-evaluating
            # anything, turning the per-state guard sweep from
            # O(actions) into O(affected actions).
            by_closure: Dict[Tuple[int, ...], List[int]] = {}
            closure_of: Dict[int, Tuple[int, ...]] = {}
            ungrouped: List[int] = []
            # Every declared-closure instance starts memoized, however wide
            # the closure: the adaptive hit-rate monitor (_adapt) demotes
            # groups whose projections turn out near-unique at runtime,
            # replacing the old static closure > schema/2 cutoff with
            # measured evidence.
            for i, inst in enumerate(instances):
                closure = inst.action.dependency_closure()
                if closure is None:
                    ungrouped.append(i)  # unread guard: never memoized
                    continue
                idxs = spec.schema.positions(closure)
                closure_of[i] = idxs
                by_closure.setdefault(idxs, []).append(i)
            outcome_groups: List[Tuple[Callable[[tuple], Any], Tuple[int, ...]]] = []
            outcome_group_slots: List[Tuple[int, ...]] = []
            for idxs, members in by_closure.items():
                key_fn = itemgetter(*idxs) if len(idxs) > 1 else itemgetter(idxs[0])
                outcome_groups.append((key_fn, tuple(members)))
                outcome_group_slots.append(idxs)
            self.outcome_groups = outcome_groups
            self.outcome_group_slots = outcome_group_slots
            self.outcome_memos: List[dict] = [{} for _ in outcome_groups]
            self.direct = ()
            self.ungrouped = tuple(ungrouped)
            # Narrow disabled-verdict memos, by guard read set.  A group
            # whose members all have closure == reads is fully shadowed
            # by the outcome group keyed on the identical projection, so
            # it is skipped (same key, strictly less information) -- but
            # remembered, so demoting that outcome group can re-enable it.
            by_read_set: Dict[Tuple[int, ...], List[int]] = {}
            for i, inst in enumerate(instances):
                idxs = spec.schema.positions(inst.action.reads)
                if idxs:
                    by_read_set.setdefault(idxs, []).append(i)
            groups: List[Tuple[Callable[[tuple], Any], int]] = []
            guard_group_slots: List[Tuple[int, ...]] = []
            shadowed: Dict[Tuple[int, ...], int] = {}
            for idxs, members in by_read_set.items():
                bits = 0
                for i in members:
                    bits |= 1 << i
                if all(closure_of.get(i) == idxs for i in members):
                    shadowed[idxs] = bits
                    continue
                key_fn = itemgetter(*idxs) if len(idxs) > 1 else itemgetter(idxs[0])
                groups.append((key_fn, bits))
                guard_group_slots.append(idxs)
            self.guard_groups = groups
            self.guard_group_slots = guard_group_slots
            self.guard_memos: List[dict] = [{} for _ in groups]
            self._shadowed_guards = shadowed
        else:
            everything = (1 << self.n_instances) - 1
            affects = [everything] * self.n_instances
            self.guard_groups = []
            self.guard_group_slots = []
            self.guard_memos = []
            self.outcome_groups = []
            self.outcome_group_slots = []
            self.outcome_memos = []
            self.direct = ()
            self.ungrouped = tuple(range(self.n_instances))
            self._shadowed_guards = {}
        self.affects = affects
        # Memo telemetry (--stats): per-group [misses, base_calls] cells
        # (outcome cells carry two extra window-snapshot fields for the
        # adaptive monitor).  Lookups are derived -- every expansion looks
        # every live group up exactly once, so lookups(group) ==
        # expand_calls - base_calls and only the miss branches pay an
        # increment.
        self.expand_calls = 0
        self._last_adapt = 0
        self.guard_stats: List[List[int]] = [[0, 0] for _ in self.guard_groups]
        self.outcome_stats: List[List[int]] = [
            [0, 0, 0, 0] for _ in self.outcome_groups
        ]
        self.kernel_outcome_memos: List[dict] = [{} for _ in self.outcome_groups]
        self.demoted_groups: List[dict] = []
        # Instances evaluated on every state they are not proven
        # disabled in: wide-closure instances (skippable via inherited
        # disabled bits) plus undeclared-reads instances (never
        # skippable).
        self.eager = self.direct + self.ungrouped
        self.invariants = list(spec.invariants)
        self.invariant_fns = [inv.predicate for inv in self.invariants]
        self.constraint = spec.constraint
        # Invariant verdict memoization, by declared read set (see
        # Invariant.reads).  Verdicts are pure state predicates, so both
        # the holding and the violating outcome are cacheable per
        # projection.  Invariants without (resolvable) read declarations
        # are evaluated on every state.
        inv_groups: List[Tuple[Callable[[tuple], Any], Tuple[int, ...]]] = []
        inv_group_slots: List[Tuple[int, ...]] = []
        inv_ungrouped: List[int] = []
        if incremental:
            schema_index = spec.schema._index
            by_inv_reads: Dict[Tuple[int, ...], List[int]] = {}
            for i, inv in enumerate(self.invariants):
                if inv.reads and all(name in schema_index for name in inv.reads):
                    idxs = tuple(sorted(schema_index[name] for name in inv.reads))
                    by_inv_reads.setdefault(idxs, []).append(i)
                else:
                    inv_ungrouped.append(i)
            for idxs, group_members in by_inv_reads.items():
                key_fn = itemgetter(*idxs) if len(idxs) > 1 else itemgetter(idxs[0])
                inv_groups.append((key_fn, tuple(group_members)))
                inv_group_slots.append(idxs)
        else:
            inv_ungrouped = list(range(len(self.invariants)))
        self.inv_groups = inv_groups
        self.inv_group_slots = inv_group_slots
        self.inv_memos: List[dict] = [{} for _ in inv_groups]
        self.inv_ungrouped = tuple(inv_ungrouped)
        # Mask / constraint verdict memoization, by declared read set
        # (``fn.reads``, mirroring Invariant.reads).  Both are pure state
        # predicates; the ZK-4394 mask reads only ``errors`` and the epoch
        # constraint only ``accepted_epoch``, so their verdicts replay
        # from a one-slot projection -- without this, classification
        # builds a State and calls both predicates for *every* candidate.
        self.mask_key: Optional[Callable[[tuple], Any]] = None
        self.mask_slots: Tuple[int, ...] = ()
        self.mask_memo: dict = {}
        self.constraint_key: Optional[Callable[[tuple], Any]] = None
        self.constraint_slots: Tuple[int, ...] = ()
        self.constraint_memo: dict = {}
        if incremental:
            schema_index = spec.schema._index
            for fn, attr in ((mask, "mask"), (self.constraint, "constraint")):
                declared = getattr(fn, "reads", None)
                if declared and all(name in schema_index for name in declared):
                    idxs = tuple(sorted(schema_index[name] for name in declared))
                    setattr(self, f"{attr}_slots", idxs)
                    setattr(
                        self,
                        f"{attr}_key",
                        itemgetter(*idxs) if len(idxs) > 1 else itemgetter(idxs[0]),
                    )
        # Kernel compilation (the compile-then-batch pipeline).  Only the
        # incremental path compiles: the kernel *is* the memoized path, so
        # incremental=False (the A/B soundness arm) stays interpreted.
        self.compile_mode = compile_mode
        self.kernel: Optional[Callable] = None
        self.kernel_source: Optional[str] = None
        if incremental and compile_mode != "off":
            if compile_mode == "on" or kernel_trusted(spec):
                self._emit_kernel()

    def _emit_kernel(self) -> None:
        """(Re-)emit the batch kernel for the current group layout.

        Called at compose time and again after adaptive demotion; the
        emitted code binds the *current* memo dicts and stats cells, so
        surviving groups keep their warm memos across re-emission.
        """
        from repro.tla.codegen import emit_kernel

        self.kernel_source, self.kernel = emit_kernel(self)

    def _masked(self, state: State) -> bool:
        """Mask verdict for a state, memoized per declared-reads
        projection when the mask declares one."""
        mask_key = self.mask_key
        if mask_key is None:
            return bool(self.mask(state))
        memo = self.mask_memo
        key = mask_key(state.values)
        hit = memo.get(key)
        if hit is None:
            hit = bool(self.mask(state))
            if len(memo) >= self.GUARD_MEMO_LIMIT:
                memo.clear()
            memo[key] = hit
        return hit

    def _within_constraint(self, state: State) -> bool:
        """Constraint verdict, memoized like :meth:`_masked`."""
        ckey = self.constraint_key
        if ckey is None:
            return bool(self.constraint(self.config, state))
        memo = self.constraint_memo
        key = ckey(state.values)
        hit = memo.get(key)
        if hit is None:
            hit = bool(self.constraint(self.config, state))
            if len(memo) >= self.GUARD_MEMO_LIMIT:
                memo.clear()
            memo[key] = hit
        return hit

    def classify(self, state: State) -> Tuple[Tuple[int, ...], bool, bool]:
        """(violated invariant indices, masked, within constraint)."""
        if self.mask is not None and self._masked(state):
            return (), True, True
        config = self.config
        values = state.values
        invariant_fns = self.invariant_fns
        memo_limit = self.GUARD_MEMO_LIMIT
        viol_bits = 0
        for group_index, (key_fn, group_members) in enumerate(self.inv_groups):
            memo = self.inv_memos[group_index]
            key = key_fn(values)
            hit = memo.get(key)
            if hit is None:
                hit = 0
                for i in group_members:
                    if not invariant_fns[i](config, state):
                        hit |= 1 << i
                if len(memo) >= memo_limit:
                    memo.clear()
                memo[key] = hit
            viol_bits |= hit
        for i in self.inv_ungrouped:
            if not invariant_fns[i](config, state):
                viol_bits |= 1 << i
        if viol_bits:
            viols = tuple(
                i for i in range(len(invariant_fns)) if (viol_bits >> i) & 1
            )
        else:
            viols = ()
        ok = self.constraint is None or self._within_constraint(state)
        return viols, False, ok

    def classify_values(self, values: Tuple[Any, ...]) -> Tuple[Tuple[int, ...], bool, bool]:
        """:meth:`classify` over a raw values tuple, materializing the
        ``State`` lazily -- only when a mask, a memo miss, an ungrouped
        invariant or a constraint actually needs attribute access.  The
        batch kernels classify through this, so a fully memo-hit candidate
        never allocates a ``State`` at all."""
        state: Optional[State] = None
        if self.mask is not None:
            mask_key = self.mask_key
            if mask_key is not None:
                memo = self.mask_memo
                key = mask_key(values)
                hit = memo.get(key)
                if hit is None:
                    state = State(self.schema, values)
                    hit = bool(self.mask(state))
                    if len(memo) >= self.GUARD_MEMO_LIMIT:
                        memo.clear()
                    memo[key] = hit
                if hit:
                    return (), True, True
            else:
                state = State(self.schema, values)
                if self.mask(state):
                    return (), True, True
        config = self.config
        invariant_fns = self.invariant_fns
        memo_limit = self.GUARD_MEMO_LIMIT
        viol_bits = 0
        for group_index, (key_fn, group_members) in enumerate(self.inv_groups):
            memo = self.inv_memos[group_index]
            key = key_fn(values)
            hit = memo.get(key)
            if hit is None:
                if state is None:
                    state = State(self.schema, values)
                hit = 0
                for i in group_members:
                    if not invariant_fns[i](config, state):
                        hit |= 1 << i
                if len(memo) >= memo_limit:
                    memo.clear()
                memo[key] = hit
            viol_bits |= hit
        if self.inv_ungrouped and state is None:
            state = State(self.schema, values)
        for i in self.inv_ungrouped:
            if not invariant_fns[i](config, state):
                viol_bits |= 1 << i
        if viol_bits:
            viols = tuple(
                i for i in range(len(invariant_fns)) if (viol_bits >> i) & 1
            )
        else:
            viols = ()
        if self.constraint is None:
            ok = True
        else:
            ckey = self.constraint_key
            if ckey is not None:
                memo = self.constraint_memo
                key = ckey(values)
                ok = memo.get(key)
                if ok is None:
                    if state is None:
                        state = State(self.schema, values)
                    ok = bool(self.constraint(config, state))
                    if len(memo) >= self.GUARD_MEMO_LIMIT:
                        memo.clear()
                    memo[key] = ok
            else:
                if state is None:
                    state = State(self.schema, values)
                ok = bool(self.constraint(config, state))
        return viols, False, ok

    def step(
        self,
        state: State,
        state_fp: int,
        state_digests: Tuple[int, ...],
        known_disabled: int,
        rng: random.Random,
    ):
        """One random-walk step through the incremental successor path.

        Expands with dedupe off -- every state-changing successor, in
        instance order, exactly the distribution
        ``Specification.successors`` enumerates (and one ``rng.choice``
        consuming the same entropy) -- and returns
        ``(instance_index, state, fp, known_disabled, digests)`` for the
        chosen successor, or ``None`` in a dead end.  Shared by
        :class:`~repro.checker.random_walk.RandomWalker` and the
        engine's ``random``/``portfolio`` strategies.
        """
        if self.kernel is not None:
            batch = FrontierBatch.single(
                state_fp, state.values, known_disabled, state_digests
            )
            ((_, _, candidates),) = self.expand_batch(
                batch, _UNUSED_SEEN, classify_candidates=False, dedupe=False
            )
            if not candidates:
                return None
            # Same candidate list length and order as the interpreted path,
            # so the rng.choice consumes identical entropy -- and only the
            # *chosen* successor is materialized as a State.
            idx, svt, fp, known, _, _, _, digests = rng.choice(candidates)
            return idx, State(self.schema, svt), fp, known, digests
        _, candidates = self.expand(
            state, known_disabled, _UNUSED_SEEN, state_fp, state_digests,
            classify_candidates=False, dedupe=False,
        )
        if not candidates:
            return None
        idx, nxt, fp, known, _, _, _, digests = rng.choice(candidates)
        return idx, nxt, fp, known, digests

    def _check_outcome(self, idx: int, outcome, state: State) -> None:
        """Debug mode: re-evaluate one instance and compare against a
        memoized/inherited outcome (catches untruthful ``reads`` /
        ``writes`` / ``update_sources`` declarations)."""
        updates = self.appliers[idx](self.config, state)
        schema_index = self.schema._index
        fresh = (
            None
            if updates is None
            else tuple(sorted((schema_index[n], v) for n, v in updates.items()))
        )
        stored = None if outcome is None else tuple(sorted(outcome))
        if fresh != stored:
            action = self.actions[idx]
            sources = {k: sorted(v) for k, v in action.update_sources.items()}
            raise AssertionError(
                f"action {self.labels[idx]} violated its dependency "
                f"declaration (reads={sorted(action.reads)}, "
                f"writes={sorted(action.writes)}, update_sources={sources}): "
                f"memoized outcome {stored!r} != fresh outcome {fresh!r}"
            )

    def expand(
        self,
        state: State,
        known_disabled: int,
        seen: set,
        state_fp: int,
        state_digests: Tuple[int, ...],
        classify_candidates: bool = True,
        dedupe: bool = True,
    ) -> Tuple[int, List[Candidate]]:
        """Expand one frontier state.

        ``known_disabled`` carries the instances proven disabled by the
        parent's dependency analysis.  ``seen`` is the caller's
        fingerprint set; candidate fingerprints are added to it so the
        same successor is emitted at most once per expansion context (the
        merge step performs the authoritative cross-context dedup).
        ``dedupe=False`` skips that filter and emits every state-changing
        successor exactly in instance order -- the random walkers use it
        to draw from the full successor distribution.
        ``state_fp``/``state_digests`` are the parent's fingerprint and
        per-slot digests: each successor fingerprint costs one digest
        lookup per *changed* slot (``fp ^ old_digest ^ new_digest``), and
        successor ``State`` objects are only materialized for candidates
        that survive the fingerprint dedup.

        Returns ``(transitions, candidates)`` where ``transitions``
        counts every state-changing successor (including already-seen
        ones, matching the seed checker's transition count).
        """
        self.expand_calls += 1
        if self.expand_calls - self._last_adapt >= self.ADAPT_INTERVAL:
            self._adapt()
        config = self.config
        appliers = self.appliers
        debug = self.debug
        memo_limit = self.GUARD_MEMO_LIMIT
        outcome_limit = self.OUTCOME_MEMO_LIMIT
        values = state.values
        schema = self.schema
        schema_index = schema._index
        slot_digest = self.fingerprinter.slot_digest
        transitions = 0
        disabled = known_disabled
        raw: List[Tuple[int, List[Tuple[int, Any]]]] = []
        pending: List[Tuple[dict, Any, int]] = []
        # Tier 1: disabled-verdict memos keyed on the narrow guard read
        # set.  Cheap, high hit rate; lets the outcome tier below skip
        # function calls for members already proven disabled.
        for group_index, (key_fn, bits) in enumerate(self.guard_groups):
            memo = self.guard_memos[group_index]
            key = key_fn(values)
            hit = memo.get(key)
            if hit is not None:
                disabled |= hit
            else:
                self.guard_stats[group_index][0] += 1
                pending.append((memo, key, bits))
        # Tier 2: full-outcome memos keyed on the dependency closure
        # (reads | writes | update_sources).  A hit replays the stored
        # verdicts and update bindings without calling any action
        # function; a miss evaluates the not-yet-disabled members once
        # and records the complete per-instance outcome vector (sound
        # because every disabled bit above is itself a function of the
        # guard reads, a subset of the closure this entry is keyed on).
        for group_index, (key_fn, members) in enumerate(self.outcome_groups):
            memo = self.outcome_memos[group_index]
            key = key_fn(values)
            entry = memo.get(key)
            if entry is not None:
                group_disabled, enabled = entry
                disabled |= group_disabled
                for idx, outcome in enabled:
                    if debug:
                        self._check_outcome(idx, outcome, state)
                    changes = [
                        (slot, value)
                        for slot, value in outcome
                        if values[slot] is not value and values[slot] != value
                    ]
                    if changes:
                        raw.append((idx, changes))
                if debug:
                    todo = group_disabled
                    while todo:
                        low = todo & -todo
                        todo ^= low
                        self._check_outcome(low.bit_length() - 1, None, state)
                continue
            self.outcome_stats[group_index][0] += 1
            group_disabled = 0
            enabled = []
            for idx in members:
                bit = 1 << idx
                if disabled & bit:
                    group_disabled |= bit
                    continue
                updates = appliers[idx](config, state)
                if updates is None:
                    disabled |= bit
                    group_disabled |= bit
                    continue
                if debug:
                    self.actions[idx].validate_updates(updates)
                outcome = tuple(
                    (schema_index[name], value) for name, value in updates.items()
                )
                enabled.append((idx, outcome))
                changes = [
                    (slot, value)
                    for slot, value in outcome
                    if values[slot] is not value and values[slot] != value
                ]
                if changes:
                    raw.append((idx, changes))
            if len(memo) >= outcome_limit:
                memo.clear()
            memo[key] = (group_disabled, tuple(enabled))
        for idx in self.eager:
            if (disabled >> idx) & 1:
                continue
            updates = appliers[idx](config, state)
            if updates is None:
                disabled |= 1 << idx
                continue
            if debug:
                self.actions[idx].validate_updates(updates)
            changes = [
                (slot, value)
                for slot, value in (
                    (schema_index[name], value) for name, value in updates.items()
                )
                if values[slot] is not value and values[slot] != value
            ]
            if changes:
                raw.append((idx, changes))
        for memo, key, bits in pending:
            if len(memo) >= memo_limit:
                memo.clear()
            memo[key] = disabled & bits
        raw.sort(key=itemgetter(0))  # successor order = instance order
        candidates: List[Candidate] = []
        affects = self.affects
        for idx, changes in raw:
            transitions += 1
            fp = state_fp
            new_digests = []
            for slot, value in changes:
                digest = slot_digest(slot, value)
                fp ^= state_digests[slot] ^ digest
                new_digests.append(digest)
            if dedupe:
                if fp in seen:
                    continue
                seen.add(fp)
            successor_values = list(values)
            digests = list(state_digests)
            for (slot, value), digest in zip(changes, new_digests):
                successor_values[slot] = value
                digests[slot] = digest
            nxt = State(schema, tuple(successor_values))
            if classify_candidates:
                viols, masked, ok = self.classify(nxt)
            else:
                viols, masked, ok = (), False, True
            candidates.append(
                (
                    idx,
                    nxt,
                    fp,
                    disabled & ~affects[idx],
                    viols,
                    masked,
                    ok,
                    tuple(digests),
                )
            )
        return transitions, candidates

    # ---------------------------------------------------- batch kernels

    def expand_batch(
        self,
        batch: FrontierBatch,
        seen: set,
        classify_candidates: bool = True,
        dedupe: bool = True,
    ) -> List[Tuple[int, int, list]]:
        """Expand a whole frontier batch through the compiled kernel.

        Returns ``[(entry_fp, transitions, candidates), ...]`` in entry
        order, with candidates shaped like :meth:`expand`'s except that
        the successor is a raw values tuple (``State`` materialization is
        the caller's choice).  Falls back to per-entry interpreted
        expansion when no kernel is compiled, so callers can stay
        path-agnostic.
        """
        kernel = self.kernel
        if kernel is not None:
            self.expand_calls += len(batch)
            if self.expand_calls - self._last_adapt >= self.ADAPT_INTERVAL:
                self._adapt()
                kernel = self.kernel  # demotion re-emits
            if self.debug:
                self._debug_check_batch(batch)
            return kernel(
                batch.fps, batch.values, batch.knowns,
                seen, dedupe, classify_candidates,
            )
        schema = self.schema
        results: List[Tuple[int, int, list]] = []
        for fp, values, known, digests in batch.entries():
            transitions, cands = self.expand(
                State(schema, values), known, seen, fp, digests,
                classify_candidates, dedupe,
            )
            results.append(
                (
                    fp,
                    transitions,
                    [(c[0], c[1].values) + c[2:] for c in cands],
                )
            )
        return results

    def _debug_check_batch(self, batch: FrontierBatch) -> None:
        """Debug mode: cross-check kernel outcomes against a *fresh*
        interpreted evaluation of every instance (no memos, no inherited
        disabled bits), so a lying declaration that poisons a kernel memo
        entry -- or wrongly inherits a known-disabled bit -- is caught at
        the first state it mis-expands."""
        assert self.kernel is not None
        out = self.kernel(
            batch.fps, batch.values, batch.knowns,
            _UNUSED_SEEN, False, False,
        )
        schema = self.schema
        schema_index = schema._index
        slot_digest = self.fingerprinter.slot_digest
        config = self.config
        for i in range(len(batch)):
            values = batch.values[i]
            state = State(schema, values)
            entry_fp = batch.fps[i]
            fresh: List[Tuple[int, Tuple[Any, ...], int]] = []
            for idx, applier in enumerate(self.appliers):
                updates = applier(config, state)
                if updates is None:
                    continue
                self.actions[idx].validate_updates(updates)
                changes = [
                    (schema_index[name], value)
                    for name, value in updates.items()
                ]
                changes = [
                    (slot, value)
                    for slot, value in changes
                    if values[slot] is not value and values[slot] != value
                ]
                if not changes:
                    continue
                fp = entry_fp
                successor = list(values)
                for slot, value in changes:
                    fp ^= slot_digest(slot, values[slot]) ^ slot_digest(slot, value)
                    successor[slot] = value
                fresh.append((idx, tuple(successor), fp))
            fresh.sort(key=itemgetter(0))
            got = [(c[0], c[1], c[2]) for c in out[i][2]]
            if got != fresh:
                raise AssertionError(
                    f"compiled kernel diverged from fresh evaluation on "
                    f"state {state!r}: kernel produced "
                    f"{[(self.labels[idx], fp) for idx, _, fp in got]!r}, "
                    f"fresh evaluation produced "
                    f"{[(self.labels[idx], fp) for idx, _, fp in fresh]!r} "
                    f"(an action's reads/writes/update_sources declaration "
                    f"is untruthful)"
                )

    # ------------------------------------------------ adaptive memoing

    def _adapt(self) -> None:
        """Demote outcome groups whose memo went cold over the last
        window.  Purely a performance decision: demoted members move to
        the eager sweep, whose per-state evaluation produces identical
        results -- so adaptation can never change what is explored."""
        self._last_adapt = self.expand_calls
        if not self.outcome_groups:
            return
        calls = self.expand_calls
        wide = len(self.schema) // 2
        demote: List[int] = []
        for gi, cell in enumerate(self.outcome_stats):
            misses, base, last_lookups, last_misses = cell
            lookups = calls - base
            window = lookups - last_lookups
            if window < self.ADAPT_INTERVAL:
                continue
            window_hits = window - (misses - last_misses)
            rate = window_hits / window
            slots = self.outcome_group_slots[gi]
            floor = self.ADAPT_WIDE_RATE if len(slots) > wide else self.ADAPT_NARROW_RATE
            if rate < floor:
                demote.append(gi)
            else:
                cell[2] = lookups
                cell[3] = misses
        if demote:
            self._demote(demote)

    def _demote(self, group_indices: List[int]) -> None:
        """Move cold outcome groups to the eager sweep, re-enabling any
        guard group their closure projection was shadowing."""
        drop = set(group_indices)
        calls = self.expand_calls
        names = self.schema.names
        keep_groups, keep_slots = [], []
        keep_memos, keep_kmemos, keep_stats = [], [], []
        demoted_members: List[int] = []
        for gi in range(len(self.outcome_groups)):
            if gi not in drop:
                keep_groups.append(self.outcome_groups[gi])
                keep_slots.append(self.outcome_group_slots[gi])
                keep_memos.append(self.outcome_memos[gi])
                keep_kmemos.append(self.kernel_outcome_memos[gi])
                keep_stats.append(self.outcome_stats[gi])
                continue
            slots = self.outcome_group_slots[gi]
            members = self.outcome_groups[gi][1]
            misses, base = self.outcome_stats[gi][0], self.outcome_stats[gi][1]
            lookups = calls - base
            self.demoted_groups.append(
                {
                    "vars": [names[s] for s in slots],
                    "members": len(members),
                    "lookups": lookups,
                    "hits": lookups - misses,
                }
            )
            demoted_members.extend(members)
            shadow_bits = self._shadowed_guards.pop(slots, None)
            if shadow_bits is not None:
                key_fn = itemgetter(*slots) if len(slots) > 1 else itemgetter(slots[0])
                self.guard_groups.append((key_fn, shadow_bits))
                self.guard_group_slots.append(slots)
                self.guard_memos.append({})
                self.guard_stats.append([0, calls])
        self.outcome_groups = keep_groups
        self.outcome_group_slots = keep_slots
        self.outcome_memos = keep_memos
        self.kernel_outcome_memos = keep_kmemos
        self.outcome_stats = keep_stats
        self.direct = self.direct + tuple(sorted(demoted_members))
        self.eager = self.direct + self.ungrouped
        if self.kernel is not None:
            self._emit_kernel()

    def memo_stats(self) -> dict:
        """Per-action-group memo telemetry for ``--stats``."""
        calls = self.expand_calls
        names = self.schema.names
        compiled = self.kernel is not None

        def row(slots, members, cell, entries):
            lookups = max(0, calls - cell[1])
            hits = lookups - cell[0]
            return {
                "vars": [names[s] for s in slots],
                "members": members,
                "lookups": lookups,
                "hits": hits,
                "hit_rate": round(hits / lookups, 4) if lookups else None,
                "entries": entries,
            }

        outcome_rows = [
            row(
                self.outcome_group_slots[gi],
                len(group[1]),
                self.outcome_stats[gi],
                len(
                    self.kernel_outcome_memos[gi]
                    if compiled
                    else self.outcome_memos[gi]
                ),
            )
            for gi, group in enumerate(self.outcome_groups)
        ]
        guard_rows = [
            row(
                self.guard_group_slots[gi],
                bin(group[1]).count("1"),
                self.guard_stats[gi],
                len(self.guard_memos[gi]),
            )
            for gi, group in enumerate(self.guard_groups)
        ]
        stats = {
            "mode": "compiled" if compiled else "interpreted",
            "expand_calls": calls,
            "eager_instances": len(self.eager),
            "outcome_groups": outcome_rows,
            "guard_groups": guard_rows,
            "demoted_groups": list(self.demoted_groups),
            "mask_memo_entries": (
                len(self.mask_memo) if self.mask_key is not None else None
            ),
            "constraint_memo_entries": (
                len(self.constraint_memo)
                if self.constraint_key is not None
                else None
            ),
        }
        if compiled:
            from repro.tla.codegen import CODEGEN_VERSION

            stats["codegen_version"] = CODEGEN_VERSION
        return stats


def compiled_for(
    spec: Specification,
    fingerprinter: Optional[Fingerprinter] = None,
    mask: Optional[Callable[[State], bool]] = None,
    incremental: bool = True,
    debug: bool = False,
    compile_mode: str = "auto",
) -> CompiledSpec:
    """The compiled form of a specification, cached on the spec.

    The default configuration (64-bit fingerprints, no mask, incremental
    analysis, ``compile auto``) is compiled once per
    :class:`Specification` instance and shared by every consumer --
    engine runs, random walkers, the conformance campaign's suffix
    replays -- so the interference matrix and any generated kernels are
    built once and the guard/outcome memos stay warm across calls.
    Campaign workers fork after the parent pre-warms the cache and
    inherit the compiled core (kernels included) by memory image.
    Explicit ``compile_mode`` overrides bypass the cache: they are A/B
    measurement arms that must not leak their layout into shared state.
    """
    if (
        fingerprinter is None
        and mask is None
        and incremental
        and not debug
        and compile_mode == "auto"
    ):
        core = getattr(spec, "_compiled_core", None)
        if core is None:
            core = CompiledSpec(spec)
            spec._compiled_core = core
        return core
    return CompiledSpec(
        spec,
        fingerprinter=fingerprinter,
        mask=mask,
        incremental=incremental,
        debug=debug,
        compile_mode=compile_mode,
    )


class ExplorationEngine:
    """Scheduler for explicit-state exploration strategies.

    Parameters
    ----------
    spec:
        The specification to check.
    strategy:
        One of ``"bfs"``, ``"dfs"``, ``"random"``, ``"portfolio"``.
    workers:
        Number of worker processes for the parallel BFS / portfolio
        modes.  ``1`` runs in-process; higher values require the
        ``fork`` start method (engine falls back to 1 otherwise).
    max_states / max_time / max_depth / violation_limit / stop_at_first /
    mask:
        The familiar budgets, with the seed checker's semantics.
    seed:
        Seed for the random and portfolio strategies.
    fingerprinter:
        Override the 64-bit default (tests use narrow widths to force
        collisions).
    incremental:
        Enable the declared-reads guard short-circuiting (on by default;
        switch off to force full guard re-evaluation on every state).
    dedupe:
        Cross-worker visited-set mode for the parallel strategies.
        ``"rounds"`` (default) merges fingerprint sets at round barriers
        and is bitwise-identical to the sequential run; ``"shared"``
        dedupes through a shared-memory visited table in real time --
        the same visited-state count at fixed budgets and the same
        violation set on any run the budget does not truncate mid-round
        (at an exact mid-round ``max_states`` cut, which of the round's
        equal-count candidates fall inside the budget is race-dependent,
        as is the reported counterexample's parent chain).  ``"shared"``
        also unlocks sharded parallel DFS and the portfolio's shared
        visited accounting.
    debug:
        Cross-check every memoized/inherited action outcome against a
        fresh evaluation and validate update dicts against the declared
        write sets (slow; catches untruthful dependency declarations).
        With a compiled kernel, every batch is additionally cross-checked
        against a fresh interpreted evaluation of all instances.
    compile_mode:
        Kernel compilation (``--compile``): ``"auto"`` (default) compiles
        specs the static analyzer proves truthful and falls back to the
        interpreted path otherwise; ``"on"`` forces compilation;
        ``"off"`` forces interpretation.  Enumeration order is bitwise
        identical either way.
    """

    def __init__(
        self,
        spec: Specification,
        strategy: str = "bfs",
        workers: int = 1,
        max_states: Optional[int] = None,
        max_time: Optional[float] = None,
        max_depth: Optional[int] = None,
        violation_limit: int = 10_000,
        stop_at_first: bool = True,
        mask: Optional[Callable[[State], bool]] = None,
        seed: int = 0,
        fingerprinter: Optional[Fingerprinter] = None,
        incremental: bool = True,
        dedupe: str = "rounds",
        debug: bool = False,
        compile_mode: str = "auto",
    ):
        if strategy not in STRATEGIES:
            raise ValueError(
                f"unknown strategy {strategy!r}; options: {list(STRATEGIES)}"
            )
        if dedupe not in DEDUPE_MODES:
            raise ValueError(
                f"unknown dedupe mode {dedupe!r}; options: {list(DEDUPE_MODES)}"
            )
        if compile_mode not in COMPILE_MODES:
            raise ValueError(
                f"unknown compile mode {compile_mode!r}; options: {list(COMPILE_MODES)}"
            )
        self.spec = spec
        self.strategy = strategy
        self.workers = max(1, int(workers))
        self.max_states = max_states
        self.max_time = max_time
        self.max_depth = max_depth
        self.violation_limit = violation_limit
        self.stop_at_first = stop_at_first
        self.mask = mask
        self.seed = seed
        self.fingerprinter = fingerprinter
        self.incremental = incremental
        self.dedupe = dedupe
        self.debug = debug
        self.compile_mode = compile_mode
        #: The compiled core of the last run (memo/kernel telemetry for
        #: ``--stats``); ``None`` until a strategy has run in-process.
        self.core: Optional[CompiledSpec] = None

    def run(self) -> CheckResult:
        was_collecting = gc.isenabled()
        gc.disable()
        table = None
        names = getattr(self, "_shared_visited", None)
        if names:
            # A portfolio parent handed this contender a shared visited
            # table; attach it for the duration of the run.
            from repro.checker import visited

            table = visited.SharedVisitedSet.attach(names)
        self._visited_table = table
        try:
            if self.strategy == "bfs":
                return self._run_bfs()
            if self.strategy == "dfs":
                return self._run_dfs()
            if self.strategy == "random":
                return self._run_random()
            return self._run_portfolio()
        finally:
            if table is not None:
                table.close()
            self._visited_table = None
            if was_collecting:
                gc.enable()

    def _compile(self) -> CompiledSpec:
        core = compiled_for(
            self.spec,
            fingerprinter=self.fingerprinter,
            mask=self.mask,
            incremental=self.incremental,
            debug=self.debug,
            compile_mode=self.compile_mode,
        )
        self.core = core
        return core

    # ------------------------------------------------------------- BFS

    def _run_bfs(self) -> CheckResult:
        core = self._compile()
        spec = self.spec
        result = CheckResult(spec_name=spec.name)
        start = time.monotonic()

        parent_link: Dict[int, Optional[Tuple[int, int]]] = {}
        init_by_fp: Dict[int, State] = {}
        seen: set = set()  # expansion-side fingerprint set (sequential)
        stop = False

        def trace_to(fp: int) -> Trace:
            chain: List[int] = []
            cursor = fp
            while True:
                link = parent_link[cursor]
                if link is None:
                    break
                cursor, idx = link
                chain.append(idx)
            chain.reverse()
            labels = [core.labels[i] for i in chain]
            states = spec.replay(labels, init_by_fp[cursor])
            return Trace(states=states, labels=labels)

        def record(fp: int, viols: Sequence[int]) -> bool:
            for i in viols:
                result.violations.append(
                    Violation(invariant=core.invariants[i], trace=trace_to(fp))
                )
                if self.stop_at_first:
                    return True
                if len(result.violations) >= self.violation_limit:
                    result.budget_exhausted = "violation_limit"
                    return True
            return False

        # A portfolio parent's shared table (publish accepted states so
        # the walker band steers away from BFS-covered territory).
        publish = getattr(self, "_visited_table", None)

        # Round 0: the initial states.
        # Frontier entries: (fp, payload, known_disabled, slot_digests).
        frontier: List[Tuple[int, Any, int, Tuple[int, ...]]] = []
        delta: List[int] = []
        for init in spec.initial_states():
            fp, digests = core.fingerprinter.of_values_with_digests(init.values)
            if fp in parent_link:
                continue
            parent_link[fp] = None
            init_by_fp[fp] = init
            seen.add(fp)
            if publish is not None:
                publish.add(fp)
            delta.append(fp)
            viols, masked, ok = core.classify(init)
            if masked:
                continue
            if viols and record(fp, viols):
                stop = True
                break
            if viols or not ok:
                continue
            frontier.append((fp, init, 0, digests))
        if (
            not stop
            and self.max_states is not None
            and len(parent_link) >= self.max_states
        ):
            result.budget_exhausted = "max_states"
            stop = True

        pool = None
        shared_table = None
        if self.workers > 1 and frontier and not stop:
            from repro.checker import parallel

            if parallel.available():
                if self.dedupe == "shared":
                    from repro.checker import visited

                    if visited.available():
                        shared_table = visited.SharedVisitedSet(
                            visited.suggest_capacity(self.max_states)
                        )
                        for known_fp in parent_link:
                            shared_table.add(known_fp)
                pool = parallel.WorkerPool(core, self.workers)

        depth = 0
        try:
            while frontier and not stop and result.budget_exhausted is None:
                if (
                    self.max_time is not None
                    and time.monotonic() - start >= self.max_time
                ):
                    result.budget_exhausted = "max_time"
                    break

                if pool is not None:
                    # Frontier payloads are State objects in round 1
                    # (the initial states) and raw value tuples after.
                    payload_frontier = [
                        (
                            fp,
                            payload.values if isinstance(payload, State) else payload,
                            known,
                            digests,
                        )
                        for fp, payload, known, digests in frontier
                    ]
                    if shared_table is not None:
                        # Real-time dedupe: workers consult the shared
                        # table instead of replaying the delta, and the
                        # parent grows it between rounds.
                        if shared_table.should_grow(len(parent_link)):
                            shared_table.grow(len(parent_link))
                        rounds = pool.round(
                            [], payload_frontier, shared_table.descriptors()
                        )
                    else:
                        rounds = pool.round(delta, payload_frontier)
                    results_iter = iter(rounds)
                elif core.kernel is not None:
                    # Compiled path: sweep the round in fixed-size batches.
                    # Candidate payloads come back as raw value tuples;
                    # the merge loop below is payload-agnostic and traces
                    # replay from labels, so States are never built for
                    # states that only transit the frontier.  Chunking keeps
                    # the lazy budget semantics of the sequential path: when
                    # the merge loop stops mid-round (max_states, max_time,
                    # violation), unexpanded chunks are never swept, so
                    # compiled and interpreted runs do the same amount of
                    # work at truncated budgets.
                    def _batched(round_frontier=frontier):
                        for lo in range(0, len(round_frontier), _KERNEL_CHUNK):
                            yield from core.expand_batch(
                                FrontierBatch.from_entries(
                                    round_frontier[lo : lo + _KERNEL_CHUNK]
                                ),
                                seen,
                            )

                    results_iter = _batched()
                else:
                    def _sequential():
                        for fp, state, known, digests in frontier:
                            transitions, cands = core.expand(
                                state, known, seen, fp, digests
                            )
                            yield fp, transitions, cands

                    results_iter = _sequential()

                delta = []
                next_frontier: List[Tuple[int, Any, int, Tuple[int, ...]]] = []
                child_depth = depth + 1
                expandable_depth = (
                    self.max_depth is None or child_depth < self.max_depth
                )
                for entry_fp, transitions, candidates in results_iter:
                    if stop or result.budget_exhausted is not None:
                        break
                    if (
                        self.max_time is not None
                        and time.monotonic() - start >= self.max_time
                    ):
                        result.budget_exhausted = "max_time"
                        break
                    result.transitions += transitions
                    for idx, payload, fp, known, viols, masked, ok, digests in candidates:
                        if fp in parent_link:
                            continue
                        parent_link[fp] = (entry_fp, idx)
                        if publish is not None:
                            publish.add(fp)
                        if child_depth > result.max_depth:
                            result.max_depth = child_depth
                        delta.append(fp)
                        if not masked:
                            if viols:
                                if record(fp, viols):
                                    stop = True
                                    break
                            elif ok and expandable_depth:
                                next_frontier.append((fp, payload, known, digests))
                        if (
                            self.max_states is not None
                            and len(parent_link) >= self.max_states
                        ):
                            result.budget_exhausted = "max_states"
                            break
                frontier = next_frontier
                depth += 1
        finally:
            if pool is not None:
                pool.close()
            if shared_table is not None:
                shared_table.close()

        result.states_explored = len(parent_link)
        result.elapsed_seconds = time.monotonic() - start
        result.completed = (
            not frontier and not stop and result.budget_exhausted is None
        )
        return result

    # ------------------------------------------------------------- DFS

    def _run_dfs(self) -> CheckResult:
        if self.workers > 1 and self.dedupe == "shared":
            from repro.checker import parallel, visited

            if parallel.available() and visited.available():
                return parallel.run_dfs_sharded(self)
        core = self._compile()
        spec = self.spec
        result = CheckResult(spec_name=spec.name)
        start = time.monotonic()
        max_depth = self.max_depth if self.max_depth is not None else 40
        visited: set = set()
        throwaway: set = set()

        kernel = core.kernel is not None
        schema = spec.schema

        # Stack entries:
        # (values, fp, labels-so-far, initial state, known_disabled, digests)
        # -- raw value tuples, so pushed-but-pruned candidates never
        # materialize a State (classification on pop is lazy too).
        stack: List[
            Tuple[Tuple[Any, ...], int, Tuple[int, ...], State, int, Tuple[int, ...]]
        ] = []
        for init in spec.initial_states():
            fp, digests = core.fingerprinter.of_values_with_digests(init.values)
            stack.append((init.values, fp, (), init, 0, digests))

        while stack:
            if self.max_states is not None and len(visited) >= self.max_states:
                result.budget_exhausted = "max_states"
                break
            if (
                self.max_time is not None
                and time.monotonic() - start > self.max_time
            ):
                result.budget_exhausted = "max_time"
                break
            values, fp, chain, init, known, digests = stack.pop()
            if fp in visited:
                continue
            visited.add(fp)
            depth = len(chain)
            if depth > result.max_depth:
                result.max_depth = depth
            viols, masked, ok = core.classify_values(values)
            if masked:
                continue
            if viols:
                labels = [core.labels[i] for i in chain]
                states = spec.replay(labels, init)
                result.violations.append(
                    Violation(
                        invariant=core.invariants[viols[0]],
                        trace=Trace(states=states, labels=labels),
                    )
                )
                break
            if depth >= max_depth or not ok:
                continue
            throwaway.clear()
            if kernel:
                ((_, transitions, candidates),) = core.expand_batch(
                    FrontierBatch.single(fp, values, known, digests),
                    throwaway,
                    classify_candidates=False,
                )
                result.transitions += transitions
                for idx, svt, nfp, nknown, _, _, _, ndigests in candidates:
                    if nfp not in visited:
                        stack.append(
                            (svt, nfp, chain + (idx,), init, nknown, ndigests)
                        )
            else:
                transitions, candidates = core.expand(
                    State(schema, values), known, throwaway, fp, digests,
                    classify_candidates=False,
                )
                result.transitions += transitions
                for idx, nxt, nfp, nknown, _, _, _, ndigests in candidates:
                    if nfp not in visited:
                        stack.append(
                            (nxt.values, nfp, chain + (idx,), init, nknown, ndigests)
                        )

        result.states_explored = len(visited)
        result.elapsed_seconds = time.monotonic() - start
        result.completed = (
            not stack
            and not result.violations
            and result.budget_exhausted is None
        )
        return result

    # ---------------------------------------------------------- random

    #: Consecutive globally-visited steps before a shared-dedupe walker
    #: abandons a walk as covered territory (portfolio ``--dedupe
    #: shared``).
    WALK_STALE_LIMIT = 8

    def _run_random(self, rng: Optional[random.Random] = None) -> CheckResult:
        core = self._compile()
        spec = self.spec
        result = CheckResult(spec_name=spec.name)
        start = time.monotonic()
        rng = rng or random.Random(self.seed)
        max_steps = self.max_depth if self.max_depth is not None else 60
        # Without any budget a random search would never terminate; cap
        # the number of walks as a final backstop.
        max_walks = None
        if self.max_states is None and self.max_time is None:
            max_walks = 1_000
        seen: set = set()
        table = getattr(self, "_visited_table", None)
        stale_limit = self.WALK_STALE_LIMIT
        seed_fp = core.fingerprinter.of_values_with_digests
        initials = spec.initial_states()
        walks = 0
        stop = False

        while not stop:
            if max_walks is not None and walks >= max_walks:
                result.budget_exhausted = "max_walks"
                break
            if self.max_states is not None and len(seen) >= self.max_states:
                result.budget_exhausted = "max_states"
                break
            if (
                self.max_time is not None
                and time.monotonic() - start >= self.max_time
            ):
                result.budget_exhausted = "max_time"
                break
            walks += 1
            state = rng.choice(initials)
            fp, digests = seed_fp(state.values)
            known = 0
            states = [state]
            labels: List[Any] = []
            seen.add(fp)
            stale = 0 if table is None or table.add(fp) else 1
            for _ in range(max_steps):
                viols, masked, ok = core.classify(state)
                if masked:
                    break
                if viols:
                    for i in viols:
                        result.violations.append(
                            Violation(
                                invariant=core.invariants[i],
                                trace=Trace(states=list(states), labels=list(labels)),
                            )
                        )
                        if self.stop_at_first:
                            stop = True
                            break
                        if len(result.violations) >= self.violation_limit:
                            result.budget_exhausted = "violation_limit"
                            stop = True
                            break
                    break
                if not ok:
                    break
                chosen = core.step(state, fp, digests, known, rng)
                if chosen is None:
                    break
                idx, nxt, fp, known, digests = chosen
                result.transitions += 1
                labels.append(core.labels[idx])
                states.append(nxt)
                state = nxt
                seen.add(fp)
                if len(states) - 1 > result.max_depth:
                    result.max_depth = len(states) - 1
                if table is not None:
                    if table.add(fp):
                        stale = 0
                    else:
                        stale += 1
                        if stale >= stale_limit:
                            break  # the band already covered this region

        result.states_explored = len(seen)
        result.elapsed_seconds = time.monotonic() - start
        return result

    # ------------------------------------------------------- portfolio

    def _spawn(self, strategy: str, seed: int, **overrides: Any) -> "ExplorationEngine":
        """A contender engine sharing this engine's spec and budgets."""
        kwargs = dict(
            strategy=strategy,
            workers=1,
            max_states=self.max_states,
            max_time=self.max_time,
            max_depth=self.max_depth,
            violation_limit=self.violation_limit,
            stop_at_first=self.stop_at_first,
            mask=self.mask,
            seed=seed,
            fingerprinter=self.fingerprinter,
            incremental=self.incremental,
            dedupe=self.dedupe,
            debug=self.debug,
            compile_mode=self.compile_mode,
        )
        kwargs.update(overrides)
        return ExplorationEngine(self.spec, **kwargs)

    def _run_portfolio(self) -> CheckResult:
        """Race BFS against seeded random walks; first violation wins.

        With ``workers >= 2`` the contenders run as forked processes and
        the parent returns as soon as any of them reports a violation.
        With one worker the contenders are time-sliced in-process:
        alternate one BFS round with a batch of random walks.
        """
        if self.workers > 1:
            from repro.checker import parallel

            if parallel.available():
                return parallel.run_portfolio(self)
        return self._run_portfolio_interleaved()

    def _run_portfolio_interleaved(self) -> CheckResult:
        """Time-sliced in-process race: a batch of random walks, then a
        BFS slice with a geometrically growing state budget (each slice
        restarts BFS, so doubling bounds total re-exploration at 2x)."""
        start = time.monotonic()
        core = self._compile()
        rng = random.Random(self.seed + 1)

        def time_left() -> Optional[float]:
            if self.max_time is None:
                return None
            return max(0.05, self.max_time - (time.monotonic() - start))

        slice_states = 2_000
        walk_seen: set = set()  # distinct walk fingerprints across batches
        while True:
            walk_result = self._walk_batch(core, rng, 16, time_left(), walk_seen)
            if walk_result.found_violation:
                walk_result.elapsed_seconds = time.monotonic() - start
                return walk_result
            budget = (
                slice_states
                if self.max_states is None
                else min(slice_states, self.max_states)
            )
            bfs = self._spawn(
                "bfs", self.seed, max_states=budget, max_time=time_left()
            )
            bfs_result = bfs.run()
            bfs_result.elapsed_seconds = time.monotonic() - start
            exhausted = (
                self.max_states is not None
                and bfs_result.states_explored >= self.max_states
            )
            if (
                bfs_result.found_violation
                or bfs_result.completed
                or bfs_result.budget_exhausted in ("max_time", "violation_limit")
                or exhausted
            ):
                return bfs_result
            slice_states *= 2

    def _walk_batch(
        self,
        core: CompiledSpec,
        rng: random.Random,
        count: int,
        time_budget: Optional[float],
        seen: set,
    ) -> CheckResult:
        """Run ``count`` random walks, reusing the caller's RNG stream.

        ``seen`` accumulates distinct state fingerprints across batches
        so ``states_explored`` means the same thing as in the ``random``
        strategy (distinct states, not steps taken).
        """
        spec = self.spec
        result = CheckResult(spec_name=spec.name)
        start = time.monotonic()
        max_steps = self.max_depth if self.max_depth is not None else 60
        seed_fp = core.fingerprinter.of_values_with_digests
        initials = spec.initial_states()
        for _ in range(count):
            if time_budget is not None and time.monotonic() - start >= time_budget:
                break
            state = rng.choice(initials)
            fp, digests = seed_fp(state.values)
            known = 0
            states = [state]
            labels: List[Any] = []
            seen.add(fp)
            for _ in range(max_steps):
                viols, masked, ok = core.classify(state)
                if masked:
                    break
                if viols:
                    result.violations.append(
                        Violation(
                            invariant=core.invariants[viols[0]],
                            trace=Trace(states=list(states), labels=list(labels)),
                        )
                    )
                    result.states_explored = len(seen)
                    return result
                if not ok:
                    break
                chosen = core.step(state, fp, digests, known, rng)
                if chosen is None:
                    break
                idx, nxt, fp, known, digests = chosen
                result.transitions += 1
                labels.append(core.labels[idx])
                states.append(nxt)
                state = nxt
                seen.add(fp)
                if len(states) - 1 > result.max_depth:
                    result.max_depth = len(states) - 1
        result.states_explored = len(seen)
        return result


def explore(spec: Specification, **kwargs: Any) -> CheckResult:
    """Convenience wrapper: ``explore(spec, strategy=..., workers=...)``."""
    return ExplorationEngine(spec, **kwargs).run()
