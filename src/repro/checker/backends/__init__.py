"""Pluggable execution backends for campaign-style task fan-out.

A backend maps a list of self-describing, JSON-able task messages over
workers and returns results slotted by task index (so the output is
independent of scheduling, worker count, or transport).  Three live
here:

- ``inline`` -- no workers, tasks run in the calling process (the
  implicit fallback when one worker is requested or fork is
  unavailable).
- ``fork`` -- the historical :class:`~repro.checker.parallel.TaskPool`:
  forked worker processes that inherit the parent's memory image
  (warmed spec caches included).
- ``socket`` -- worker *subprocesses* (or external joiners) connected
  over TCP, executing newline-delimited JSON task frames.  The first
  backend that can leave the host.

All backends execute the same handler on the same task messages, which
is what makes a campaign's report bitwise-identical across backends.
"""

from repro.checker.backends.base import (
    BACKENDS,
    ExecutionBackend,
    InlineBackend,
    create_backend,
    resolve_handler,
)

__all__ = [
    "BACKENDS",
    "ExecutionBackend",
    "InlineBackend",
    "create_backend",
    "resolve_handler",
]
