"""Handlers for exercising backends in the test-suite, and the chaos
backend that fault-injects the harness itself.

The handlers live in-package (rather than under ``tests/``) because
socket workers run in fresh interpreters that import handlers by
``module:function`` spec -- the test directory is not importable there,
the installed package is.
"""

from __future__ import annotations

import os
import random
import signal
import time
from typing import Any, Dict, Optional

from repro.checker.backends.sockets import JsonLineConnection, SocketBackend
from repro.checker.backends.supervision import SupervisionPolicy, TaskSupervisor


def echo(task: Any) -> Any:
    """Return the task unchanged."""
    return task


def add_one(task: Dict[str, Any]) -> Dict[str, Any]:
    """Return ``{"value": task["value"] + 1}``."""
    return {"value": task["value"] + 1}


def sleepy(task: Dict[str, Any]) -> Dict[str, Any]:
    """Sleep ``task["sleep"]`` seconds, then echo ``task["value"]``."""
    time.sleep(task.get("sleep", 0.0))
    return {"value": task.get("value")}


def boom(task: Dict[str, Any]) -> Dict[str, Any]:
    """Raise ``ValueError`` when asked to, else echo.

    Exercises the task-failure path (``RuntimeError`` in the parent)."""
    if task.get("raise"):
        raise ValueError(f"boom: {task.get('value')}")
    return {"value": task.get("value")}


def die_once(task: Dict[str, Any]) -> Dict[str, Any]:
    """Kill the executing worker the *first* time a marked task runs.

    ``task["marker"]`` is a filesystem path used as a has-this-task-run
    flag: the first worker to execute the task creates the marker and
    hard-exits without replying; the retry (on a surviving worker) sees
    the marker and succeeds.  Exercises worker-loss reassignment."""
    marker = task.get("marker")
    if marker and not os.path.exists(marker):
        with open(marker, "w") as fh:
            fh.write(str(os.getpid()))
        os._exit(17)
    return {"value": task.get("value"), "retried": bool(marker)}


def die_always(task: Dict[str, Any]) -> Dict[str, Any]:
    """Hard-exit the executing worker, every time.

    The poison task: without supervision it kills the whole band one
    worker at a time; with supervision it must be quarantined after
    ``quarantine_after`` deaths."""
    if task.get("poison", True):
        os._exit(23)
    return {"value": task.get("value")}


def hold(task: Dict[str, Any]) -> Dict[str, Any]:
    """Announce (via ``task["marker"]``) then sleep a long time.

    Exercises the watchdog (supervised timeout kill) and the
    ``close()`` escalation on a busy worker: the worker never reads the
    shutdown frame while stuck in here, so the backend must SIGTERM it.
    The optional marker file makes "the worker is inside the handler"
    observable, removing the race from escalation tests."""
    marker = task.get("marker")
    if marker:
        with open(marker, "w") as fh:
            fh.write(str(os.getpid()))
    time.sleep(task.get("sleep", 60.0))
    return {"value": task.get("value")}


def hold_ignoring_sigterm(task: Dict[str, Any]) -> Dict[str, Any]:
    """Like :func:`hold`, but the worker first shields itself from
    SIGTERM -- forcing ``close()`` all the way to the SIGKILL rung."""
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    marker = task.get("marker")
    if marker:
        with open(marker, "w") as fh:
            fh.write(str(os.getpid()))
    time.sleep(task.get("sleep", 60.0))
    return {"value": task.get("value")}


class ChaosSocketBackend(SocketBackend):
    """The socket backend under seeded fault injection.

    Every perturbation targets the *harness*, never the task: workers
    are SIGKILLed after a dispatch, connections are torn down before
    one, task frames are delayed, duplicated, or (opt-in) swallowed.
    Task handlers stay pure functions, so a correct backend must
    produce results -- and a campaign a report -- identical to a clean
    run; only the ``degraded`` section may differ, and it must tell the
    truth about what was injected.

    Faults draw from ``random.Random(chaos_seed)``, so a failing run is
    rerunnable.  (The *sequence* of draws also depends on dispatch
    order, i.e. scheduling; the seed pins the distribution, the report
    identity is what must be invariant.)

    ``hang_rate`` swallows the task frame after recording the dispatch:
    the task looks in-flight forever.  Rescuing it requires the
    watchdog, so a positive ``hang_rate`` demands a supervisor with a
    ``task_timeout``; it defaults to 0 and is rejected otherwise.

    Without an explicit ``supervisor`` a deliberately generous one is
    attached (effectively unbounded retries/respawns): the chaos lane
    asserts fault *transparency*, and quarantine would turn injected
    faults into missing cells."""

    name = "chaos"

    def __init__(
        self,
        handler: Any,
        workers: int = 1,
        chaos_seed: int = 0,
        kill_rate: float = 0.05,
        drop_rate: float = 0.05,
        delay_rate: float = 0.1,
        delay: float = 0.02,
        dup_rate: float = 0.05,
        hang_rate: float = 0.0,
        supervisor: Optional[TaskSupervisor] = None,
        **options: Any,
    ):
        if supervisor is None:
            supervisor = TaskSupervisor(
                SupervisionPolicy(
                    max_retries=10_000,
                    quarantine_after=10_000,
                    max_respawns=10_000,
                )
            )
        if hang_rate > 0 and supervisor.policy.task_timeout is None:
            raise ValueError(
                "chaos hang_rate needs a supervisor with a task_timeout: "
                "a swallowed frame is only ever rescued by the watchdog"
            )
        self._rng = random.Random(chaos_seed)
        self.kill_rate = kill_rate
        self.drop_rate = drop_rate
        self.delay_rate = delay_rate
        self.delay = delay
        self.dup_rate = dup_rate
        self.hang_rate = hang_rate
        #: What was actually injected, for truthful-degradation asserts.
        self.injected: Dict[str, int] = {
            "kills": 0,
            "drops": 0,
            "delays": 0,
            "dups": 0,
            "hangs": 0,
        }
        super().__init__(handler, workers, supervisor=supervisor, **options)

    def _send_task(self, conn: JsonLineConnection, frame: Dict[str, Any]) -> None:
        rng = self._rng
        if rng.random() < self.drop_rate:
            # Tear the connection down *before* the frame leaves: the
            # task is provably undelivered, the worker sees EOF and
            # reconnects, the dispatcher requeues without penalty.
            self.injected["drops"] += 1
            conn.sock.close()
            raise OSError("chaos: dropped connection")
        if rng.random() < self.delay_rate:
            self.injected["delays"] += 1
            time.sleep(self.delay)
        if rng.random() < self.hang_rate:
            # Swallow the frame: the task is in-flight bookkeeping-wise
            # but no worker ever got it -- a perfect hang.
            self.injected["hangs"] += 1
            return
        conn.send(frame)
        if rng.random() < self.dup_rate:
            # The worker executes twice and answers twice; the second
            # result frame must be ignored by the duplicate guard.
            self.injected["dups"] += 1
            conn.send(frame)

    def _on_dispatched(self, conn: JsonLineConnection, index: int) -> None:
        if self._rng.random() < self.kill_rate:
            proc = self._process_for(conn)
            if proc is not None and proc.poll() is None:
                self.injected["kills"] += 1
                proc.kill()
