"""Handlers for exercising backends in the test-suite.

They live in-package (rather than under ``tests/``) because socket
workers run in fresh interpreters that import handlers by
``module:function`` spec -- the test directory is not importable there,
the installed package is.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict


def echo(task: Any) -> Any:
    """Return the task unchanged."""
    return task


def add_one(task: Dict[str, Any]) -> Dict[str, Any]:
    """Return ``{"value": task["value"] + 1}``."""
    return {"value": task["value"] + 1}


def sleepy(task: Dict[str, Any]) -> Dict[str, Any]:
    """Sleep ``task["sleep"]`` seconds, then echo ``task["value"]``."""
    time.sleep(task.get("sleep", 0.0))
    return {"value": task.get("value")}


def boom(task: Dict[str, Any]) -> Dict[str, Any]:
    """Raise ``ValueError`` when asked to, else echo.

    Exercises the task-failure path (``RuntimeError`` in the parent)."""
    if task.get("raise"):
        raise ValueError(f"boom: {task.get('value')}")
    return {"value": task.get("value")}


def die_once(task: Dict[str, Any]) -> Dict[str, Any]:
    """Kill the executing worker the *first* time a marked task runs.

    ``task["marker"]`` is a filesystem path used as a has-this-task-run
    flag: the first worker to execute the task creates the marker and
    hard-exits without replying; the retry (on a surviving worker) sees
    the marker and succeeds.  Exercises worker-loss reassignment."""
    marker = task.get("marker")
    if marker and not os.path.exists(marker):
        with open(marker, "w") as fh:
            fh.write(str(os.getpid()))
        os._exit(17)
    return {"value": task.get("value"), "retried": bool(marker)}
