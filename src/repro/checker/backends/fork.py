"""The fork backend: :class:`~repro.checker.parallel.TaskPool` behind
the :class:`~repro.checker.backends.base.ExecutionBackend` contract.

Forked workers inherit the parent's memory image, so anything the
campaign pre-warmed (composed specs, scripted prefixes) is free in
every worker.  This is the default backend and the throughput baseline
the socket backend must match bit-for-bit.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from repro.checker.backends.base import ExecutionBackend, ResultHook, resolve_handler
from repro.checker.backends.supervision import TaskSupervisor
from repro.checker.parallel import TaskPool


class ForkBackend(ExecutionBackend):
    """A :class:`TaskPool` of forked workers executing the handler.

    ``supervisor`` (optional) bounds failures: per-task watchdog
    timeout, retry backoff, and poison-task quarantine -- see
    :mod:`repro.checker.backends.supervision`.  On KeyboardInterrupt the
    pool terminates and reaps every forked worker before the exception
    propagates (no orphans on Ctrl-C)."""

    name = "fork"

    def __init__(
        self,
        handler: Any,
        workers: int,
        supervisor: Optional[TaskSupervisor] = None,
    ):
        self._pool = TaskPool(
            resolve_handler(handler), workers, supervisor=supervisor
        )
        self.supervisor = supervisor
        self.workers = max(1, workers)

    def map(
        self,
        tasks: Sequence[Any],
        deadline: Optional[float] = None,
        on_result: Optional[ResultHook] = None,
    ) -> List[Optional[Any]]:
        return self._pool.map(tasks, deadline=deadline, on_result=on_result)

    def close(self) -> None:
        self._pool.close()
