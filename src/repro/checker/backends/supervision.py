"""Task supervision shared by the fork and socket backends.

A campaign cell is supposed to be a pure function of its task message,
but the *process* running it is not pure: workers get OOM-killed, hang
on a pathological walk, or lose their connection.  Before this module
the backends had exactly one answer -- requeue forever -- which turns a
poison task (one that reliably kills its worker) into a campaign that
never finishes, and leaves a hung worker stalling the whole matrix.

:class:`SupervisionPolicy` bounds every failure mode:

- ``task_timeout``: a hard per-task wall clock.  The backend watchdog
  kills the worker running an expired task and retries the task
  elsewhere (``None`` disables the watchdog, the historical behaviour).
- ``max_retries`` + ``backoff``/``backoff_factor``: transient worker
  failures (death, timeout) retry with exponential backoff; once a
  task's failure count passes ``max_retries`` it is quarantined.
- ``quarantine_after``: a task whose execution killed this many workers
  is *poison* -- it is marked degraded instead of being fed to yet
  another worker (and instead of taking the campaign down).

:class:`TaskSupervisor` is the bookkeeper one backend instance shares
across its ``map`` calls: it decides retry-vs-quarantine, computes
backoff delays, and accumulates a degradation log the campaign folds
into the report's ``degraded`` section (every degradation is recorded,
none is silent).  Backends call it; they never interpret policy
themselves.

The supervisor is intentionally transport-agnostic: the fork pool and
the socket backend report the same three verbs (``worker_died``,
``task_timed_out``, ``task_retried``) and read back the same verdicts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

#: Verdicts :class:`TaskSupervisor` hands back to a backend.
RETRY = "retry"
QUARANTINE = "quarantine"


@dataclass(frozen=True)
class SupervisionPolicy:
    """Bounds for one backend's failure handling (see module docstring)."""

    #: Hard per-task wall clock in seconds; ``None`` disables the
    #: watchdog (a task may then run forever).
    task_timeout: Optional[float] = None
    #: Transient failures (worker death, timeout) a single task may
    #: accumulate before quarantine.
    max_retries: int = 2
    #: First retry delay in seconds; successive retries of the same
    #: task multiply by ``backoff_factor``.
    backoff: float = 0.05
    backoff_factor: float = 2.0
    #: Worker deaths a single task may cause before it is poison.
    quarantine_after: int = 2
    #: Replacement workers a backend may spawn over its lifetime
    #: (``None``: twice the initial band).
    max_respawns: Optional[int] = None


DEFAULT_POLICY = SupervisionPolicy()


class TaskSupervisor:
    """Per-backend supervision bookkeeping.

    One supervisor serves every ``map`` call of its backend, so counters
    and the degradation log accumulate campaign-wide.  Task identity
    inside one ``map`` call is the task *index*; because indices repeat
    across calls, per-task failure counts reset at :meth:`begin_map`
    while the totals and the event log persist.

    ``describe`` renders a task message into a stable label for the log
    (the campaign maps cell tasks to their ``cell_id``); ``on_event``
    streams every recorded degradation as it happens (the campaign turns
    these into ``retry`` events on the service stream).
    """

    def __init__(
        self,
        policy: SupervisionPolicy = DEFAULT_POLICY,
        on_event: Optional[Callable[[Dict[str, Any]], None]] = None,
        describe: Optional[Callable[[Any], str]] = None,
    ):
        self.policy = policy
        self.on_event = on_event
        self.describe = describe
        #: Campaign-wide counters, reported verbatim in ``degraded``.
        self.retries = 0
        self.timeouts = 0
        self.worker_deaths = 0
        self.respawns = 0
        #: Quarantined task labels -> reason (insertion-ordered).
        self.quarantined: Dict[str, str] = {}
        #: Every degradation, in occurrence order.
        self.events: List[Dict[str, Any]] = []
        # Per-map state (reset by begin_map):
        self._deaths: Dict[int, int] = {}
        self._failures: Dict[int, int] = {}

    # ------------------------------------------------------------ helpers

    def _label(self, index: int, task: Any) -> str:
        if self.describe is not None:
            try:
                return self.describe(task)
            except Exception:  # pragma: no cover - describe is best-effort
                pass
        return f"task-{index}"

    def _record(self, kind: str, index: int, task: Any, **extra: Any) -> None:
        event = {"kind": kind, "task": self._label(index, task), **extra}
        self.events.append(event)
        if self.on_event is not None:
            self.on_event(event)

    def _verdict(self, index: int, task: Any, reason: str) -> str:
        deaths = self._deaths.get(index, 0)
        failures = self._failures.get(index, 0)
        if deaths >= self.policy.quarantine_after:
            why = f"killed {deaths} workers ({reason})"
        elif failures > self.policy.max_retries:
            why = f"failed {failures} times ({reason})"
        else:
            return RETRY
        self.quarantined[self._label(index, task)] = why
        self._record("quarantine", index, task, reason=why)
        return QUARANTINE

    # ------------------------------------------------------------- verbs

    def begin_map(self) -> None:
        """Reset per-task counts for a fresh ``map`` call (totals and
        the event log persist across calls)."""
        self._deaths = {}
        self._failures = {}

    def worker_died(self, index: int, task: Any) -> str:
        """A worker died executing ``index``; returns RETRY/QUARANTINE."""
        self.worker_deaths += 1
        self._deaths[index] = self._deaths.get(index, 0) + 1
        self._failures[index] = self._failures.get(index, 0) + 1
        self._record(
            "worker_death", index, task, deaths=self._deaths[index]
        )
        return self._verdict(index, task, "worker death")

    def task_timed_out(self, index: int, task: Any) -> str:
        """``index`` exceeded the task timeout; its worker was killed."""
        self.timeouts += 1
        self._failures[index] = self._failures.get(index, 0) + 1
        self._record(
            "timeout",
            index,
            task,
            timeout=self.policy.task_timeout,
            failures=self._failures[index],
        )
        return self._verdict(index, task, "timeout")

    def task_retried(self, index: int, task: Any, delay: float) -> None:
        """The backend scheduled a retry ``delay`` seconds from now."""
        self.retries += 1
        self._record("retry", index, task, delay=round(delay, 3))

    def worker_respawned(self) -> None:
        self.respawns += 1

    # ----------------------------------------------------------- queries

    def backoff_delay(self, index: int) -> float:
        """Exponential backoff for the next retry of ``index``."""
        failures = max(1, self._failures.get(index, 1))
        return self.policy.backoff * (
            self.policy.backoff_factor ** (failures - 1)
        )

    def respawn_allowed(self, initial_workers: int) -> bool:
        """May the backend spawn one more replacement worker?"""
        limit = self.policy.max_respawns
        if limit is None:
            limit = 2 * max(1, initial_workers)
        return self.respawns < limit

    def snapshot(self) -> Dict[str, Any]:
        """The degradation log in report form (the ``degraded`` section's
        supervision half).  Deterministically empty for a clean run."""
        return {
            "retries": self.retries,
            "timeouts": self.timeouts,
            "worker_deaths": self.worker_deaths,
            "respawns": self.respawns,
            "quarantined": [
                {"task": label, "reason": reason}
                for label, reason in self.quarantined.items()
            ],
        }

    @property
    def clean(self) -> bool:
        """True when no degradation of any kind was recorded."""
        return not self.events
