"""The :class:`ExecutionBackend` interface and the inline reference
implementation.

A backend's contract is deliberately small:

- ``map(tasks, deadline=None, on_result=None)`` runs every task through
  the backend's *handler* and returns the results slotted by task
  index.  Tasks not yet dispatched when the ``time.monotonic()``
  ``deadline`` passes are skipped and come back as ``None``; a task
  that raises surfaces as :class:`RuntimeError`.  ``on_result(index,
  task, result)`` fires in *completion* order as results arrive --
  that's the streaming hook the campaign service turns into
  ``cell_done`` events.  It must never change the returned list.
- ``close()`` releases workers/connections; ``map`` may be called any
  number of times before it.

Handlers are named by an importable ``"module:function"`` spec rather
than passed as callables, so a backend whose workers live in fresh
processes (the socket backend) can resolve the same function on the
other side of the wire.  Tasks and results must be JSON-able for the
same reason.
"""

from __future__ import annotations

import importlib
import time
from typing import Any, Callable, List, Optional, Sequence

#: The backend names ``create_backend`` accepts (``--backend`` on the
#: CLI).  ``inline`` is deliberately absent: it is the implicit
#: fallback, not a user-facing choice.  ``chaos`` is the socket backend
#: wrapped in seeded fault injection (worker kills, dropped
#: connections, delayed/duplicated frames) -- the harness testing
#: itself; reports stay bitwise-identical to a clean run.
BACKENDS = ("fork", "socket", "chaos")

#: Signature of the streaming hook: ``(index, task, result)``.
ResultHook = Callable[[int, Any, Any], None]


def resolve_handler(spec: Any) -> Callable[[Any], Any]:
    """Resolve a ``"module:function"`` handler spec to the callable.

    Already-callable specs pass through untouched (handy for tests and
    for the in-process backends)."""
    if callable(spec):
        return spec
    module_name, _, attr = str(spec).partition(":")
    if not module_name or not attr:
        raise ValueError(
            f"handler spec must look like 'module:function', got {spec!r}"
        )
    handler = getattr(importlib.import_module(module_name), attr)
    if not callable(handler):
        raise ValueError(f"handler {spec!r} resolved to a non-callable")
    return handler


class ExecutionBackend:
    """Abstract base: map self-contained tasks over workers, slot the
    results by index."""

    #: Human-readable backend name (``"inline"``/``"fork"``/``"socket"``).
    name = "abstract"

    def map(
        self,
        tasks: Sequence[Any],
        deadline: Optional[float] = None,
        on_result: Optional[ResultHook] = None,
    ) -> List[Optional[Any]]:
        """Run every task; return results in task order (see module
        docstring for the deadline/error/streaming contract)."""
        raise NotImplementedError

    def close(self) -> None:
        """Release workers and transport resources (idempotent)."""


class InlineBackend(ExecutionBackend):
    """Run tasks in the calling process, one at a time.

    The reference implementation of the contract, and the fallback when
    parallelism is unavailable or pointless (``workers <= 1``)."""

    name = "inline"

    def __init__(self, handler: Any):
        self._handler = resolve_handler(handler)

    def map(
        self,
        tasks: Sequence[Any],
        deadline: Optional[float] = None,
        on_result: Optional[ResultHook] = None,
    ) -> List[Optional[Any]]:
        results: List[Optional[Any]] = []
        for index, task in enumerate(tasks):
            if deadline is not None and time.monotonic() >= deadline:
                results.append(None)  # skipped: mirrors the pools
                continue
            result = self._handler(task)
            results.append(result)
            if on_result is not None:
                on_result(index, task, result)
        return results


def create_backend(
    name: str, handler: Any, workers: int, **options: Any
) -> ExecutionBackend:
    """Construct the named backend, falling back to inline where the
    named one cannot help.

    ``fork`` degrades to :class:`InlineBackend` when a single worker is
    requested or the platform lacks the ``fork`` start method (the
    historical campaign behaviour).  ``socket`` always builds the real
    thing -- even one worker exercises the wire, which is the point of
    asking for it.  ``chaos`` is the socket backend under seeded fault
    injection (:class:`~repro.checker.backends.testing.ChaosSocketBackend`).

    ``options`` are forwarded to the backend constructor; a
    ``supervisor`` option (a :class:`~repro.checker.backends
    .supervision.TaskSupervisor`) attaches failure supervision to the
    fork and socket backends.  Options a backend cannot use (e.g.
    ``auth_token`` for fork, any of them for inline) are dropped, so
    one caller can configure every backend uniformly."""
    if name == "fork":
        from repro.checker import parallel
        from repro.checker.backends.fork import ForkBackend

        if workers > 1 and parallel.available():
            return ForkBackend(
                handler, workers, supervisor=options.get("supervisor")
            )
        return InlineBackend(handler)
    if name == "socket":
        from repro.checker.backends.sockets import SocketBackend

        return SocketBackend(handler, workers, **options)
    if name == "chaos":
        from repro.checker.backends.testing import ChaosSocketBackend

        return ChaosSocketBackend(handler, workers, **options)
    raise ValueError(
        f"unknown execution backend {name!r}; options: {list(BACKENDS)}"
    )
