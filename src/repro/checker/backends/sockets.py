"""The socket backend: task fan-out to worker processes over TCP.

The parent binds a listener (``127.0.0.1:0`` by default), spawns
``workers`` subprocesses running ``python -m repro worker HOST:PORT``,
and ships them self-describing task frames as newline-delimited JSON:

    {"type": "hello", "protocol": "repro.backend.wire/1", "pid": 4711, "token": "..."}
    {"type": "task", "id": 3, "handler": "repro.remix.campaign:execute_campaign_task", "task": {...}}
    {"type": "result", "id": 3, "ok": true, "result": {...}}

Each frame names its handler by importable ``module:function`` spec and
carries the complete task payload, so a worker needs nothing but the
``repro`` package on its path -- no fork inheritance, no pickling, no
shared filesystem.  External workers (another host, a container) can
join the same listener with ``python -m repro worker``; the parent
accepts late joiners mid-map and feeds them like any other.

A connection becomes eligible for tasks only after its hello frame is
verified: the protocol tag must match and, when the backend was built
with an ``auth_token``, the hello must carry the same shared secret
(spawned workers inherit it through ``REPRO_WORKER_TOKEN``; external
ones pass ``--auth-token``).  Unauthorized peers get one ``error``
frame and are dropped.  The hello's ``pid`` is what lets the watchdog
kill a *specific* wedged spawned worker rather than the whole band.

Determinism: dispatch is greedy (a worker gets a new task as soon as it
replies) but results are slotted by task index, exactly like the fork
:class:`~repro.checker.parallel.TaskPool` -- so a campaign over sockets
merges bit-identically to the same campaign over fork.  At most
``pipeline`` tasks are in flight per worker (default 1): backpressure,
so a slow worker queues work for the fast ones instead of hoarding it.

Failure semantics mirror the fork pool:

- a task that *raises* in a worker re-raises here as ``RuntimeError``;
- a worker that *dies* mid-task (crash, OOM kill, unplugged host) has
  its in-flight tasks requeued for a surviving worker -- cells are
  reassigned, not lost;
- duplicate result frames (a retried task whose first worker answered
  late, or a chaos-duplicated frame) are ignored: a result slot is
  written, and ``on_result`` fired, exactly once per task;
- with no survivors (and none able to join), remaining tasks come back
  as ``None``.

With a :class:`~repro.checker.backends.supervision.TaskSupervisor`
attached, failures are additionally *bounded*: a per-task watchdog
timeout kills the wedged worker and retries the task with exponential
backoff, retries are capped, a poison task is quarantined instead of
draining the band, and dead spawned workers are respawned (bounded by
the policy) to keep capacity.
"""

from __future__ import annotations

import bisect
import json
import os
import selectors
import socket
import subprocess
import sys
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.checker.backends.base import ExecutionBackend, ResultHook, resolve_handler
from repro.checker.backends.supervision import RETRY, TaskSupervisor

#: Version tag every worker announces in its hello frame.
PROTOCOL = "repro.backend.wire/1"

#: Environment variable spawned workers read their shared secret from
#: (kept out of the command line, which is visible in ``ps``).
TOKEN_ENV = "REPRO_WORKER_TOKEN"

_JSON_SEPARATORS = (",", ":")


def _encode(message: Dict[str, Any]) -> bytes:
    return json.dumps(message, separators=_JSON_SEPARATORS).encode("utf-8") + b"\n"


class JsonLineConnection:
    """One newline-delimited-JSON peer over a connected socket."""

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self._buffer = b""
        #: Worker pid from the hello frame (``None`` until verified).
        self.pid: Optional[int] = None
        #: True once the hello frame passed protocol/token checks.
        self.ready = False

    def fileno(self) -> int:
        return self.sock.fileno()

    def send(self, message: Dict[str, Any]) -> None:
        self.sock.sendall(_encode(message))

    def recv(self) -> Optional[Dict[str, Any]]:
        """Block until one complete frame arrives; ``None`` on EOF."""
        while b"\n" not in self._buffer:
            chunk = self.sock.recv(65536)
            if not chunk:
                return None
            self._buffer += chunk
        line, _, self._buffer = self._buffer.partition(b"\n")
        return json.loads(line)

    def read_ready(self) -> Optional[List[Dict[str, Any]]]:
        """One non-blocking-ish read (call only when selectable):
        returns every complete frame received so far, or ``None`` on
        EOF/reset (the peer is gone)."""
        try:
            chunk = self.sock.recv(65536)
        except OSError:
            return None
        if not chunk:
            return None
        self._buffer += chunk
        frames: List[Dict[str, Any]] = []
        while b"\n" in self._buffer:
            line, _, self._buffer = self._buffer.partition(b"\n")
            frames.append(json.loads(line))
        return frames

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:  # pragma: no cover
            pass


def _serve_connection(
    conn: JsonLineConnection, handlers: Dict[str, Any], token: Optional[str]
) -> str:
    """One worker session on an established connection.

    Returns why it ended: ``"shutdown"`` (clean frame), ``"rejected"``
    (the parent refused our hello), or ``"eof"`` (the connection
    dropped mid-session -- the reconnect-worthy case)."""
    try:
        hello: Dict[str, Any] = {
            "type": "hello",
            "protocol": PROTOCOL,
            "pid": os.getpid(),
        }
        if token is not None:
            hello["token"] = token
        conn.send(hello)
        while True:
            message = conn.recv()
            if message is None:
                return "eof"
            if message.get("type") == "shutdown":
                return "shutdown"
            if message.get("type") == "error":
                # The parent refused us (bad token, bad protocol);
                # reconnecting with the same credentials cannot help.
                return "rejected"
            if message.get("type") != "task":
                continue  # unknown frame types are ignored, not fatal
            spec = message["handler"]
            handler = handlers.get(spec)
            if handler is None:
                handler = handlers[spec] = resolve_handler(spec)
            reply: Dict[str, Any] = {"type": "result", "id": message["id"]}
            try:
                reply["ok"] = True
                reply["result"] = handler(message["task"])
            except Exception as error:  # surfaced in the parent
                reply = {
                    "type": "result",
                    "id": message["id"],
                    "ok": False,
                    "error": repr(error),
                }
            conn.send(reply)
    except (BrokenPipeError, ConnectionResetError, OSError):
        return "eof"
    except KeyboardInterrupt:
        return "shutdown"
    finally:
        conn.close()


def worker_main(
    host: str,
    port: int,
    token: Optional[str] = None,
    reconnect: bool = True,
    max_attempts: int = 5,
    backoff: float = 0.25,
) -> None:
    """The worker loop behind ``python -m repro worker HOST:PORT``.

    Connects to the backend's listener, announces itself (protocol,
    pid, and the shared-secret ``token`` when one is set), then
    executes task frames until a shutdown frame.  Handlers are resolved
    from their ``module:function`` spec on first use and memoized
    across reconnects, so a long-lived worker pays the import (and any
    module-level cache warming) once.

    ``reconnect=True`` (the default) makes the worker resilient to a
    dropped connection: failed connects and mid-session drops retry
    with exponential backoff, up to ``max_attempts`` consecutive
    failures -- so a worker outlives a parent's brief restart, but a
    worker whose parent is truly gone exits instead of spinning.  A
    clean shutdown frame, or a rejected hello, always ends the loop."""
    handlers: Dict[str, Any] = {}
    attempts = 0
    while True:
        try:
            sock = socket.create_connection((host, port))
        except OSError:
            attempts += 1
            if not reconnect or attempts >= max_attempts:
                return
            time.sleep(min(backoff * (2 ** (attempts - 1)), 5.0))
            continue
        attempts = 0
        reason = _serve_connection(JsonLineConnection(sock), handlers, token)
        if reason in ("shutdown", "rejected") or not reconnect:
            return
        attempts += 1
        if attempts >= max_attempts:
            return
        time.sleep(min(backoff * (2 ** (attempts - 1)), 5.0))


def _worker_env(token: Optional[str] = None) -> Dict[str, str]:
    """Environment for spawned workers: make sure the ``repro`` package
    the *parent* runs is importable in the child, even when the parent
    got it from a pytest/pyproject ``pythonpath`` the child would not
    inherit -- and hand over the shared secret out of band."""
    import repro

    package_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        package_root + os.pathsep + existing if existing else package_root
    )
    if token is not None:
        env[TOKEN_ENV] = token
    else:
        env.pop(TOKEN_ENV, None)
    return env


class SocketBackend(ExecutionBackend):
    """Fan tasks out to TCP-connected worker processes.

    ``spawn=True`` (the default) launches ``workers`` local
    subprocesses via ``python -m repro worker``; ``spawn=False`` binds
    the listener and waits for external workers to join (print the
    address from :attr:`address` and start them by hand).

    ``auth_token`` arms the shared-secret handshake; ``supervisor``
    attaches bounded failure handling (timeouts, retry backoff,
    quarantine, respawn); ``pipeline`` bounds in-flight tasks per
    worker; ``shutdown_grace``/``term_grace`` are the seconds
    :meth:`close` waits before escalating exit -> SIGTERM -> SIGKILL on
    spawned workers."""

    name = "socket"

    def __init__(
        self,
        handler: Any,
        workers: int = 1,
        host: str = "127.0.0.1",
        port: int = 0,
        spawn: bool = True,
        connect_timeout: float = 30.0,
        auth_token: Optional[str] = None,
        supervisor: Optional[TaskSupervisor] = None,
        pipeline: int = 1,
        shutdown_grace: float = 2.0,
        term_grace: float = 1.0,
    ):
        if callable(handler):
            raise ValueError(
                "socket backend needs an importable 'module:function' "
                "handler spec (workers run in fresh processes)"
            )
        self.handler_spec = str(handler)
        resolve_handler(self.handler_spec)  # fail fast on typos, locally
        self.workers = max(1, workers)
        self.connect_timeout = connect_timeout
        self.auth_token = auth_token
        self.supervisor = supervisor
        self.pipeline = max(1, pipeline)
        self.shutdown_grace = shutdown_grace
        self.term_grace = term_grace
        self._spawn = spawn
        self._ever_connected = False
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(128)
        #: The ``(host, port)`` external workers should join.
        self.address: Tuple[str, int] = self._listener.getsockname()[:2]
        self._selector = selectors.DefaultSelector()
        self._selector.register(self._listener, selectors.EVENT_READ, "listener")
        #: Hello-verified connections, eligible for tasks.
        self._connections: List[JsonLineConnection] = []
        #: Accepted connections awaiting a valid hello.
        self._pending: List[JsonLineConnection] = []
        self._processes: List[subprocess.Popen] = []
        if spawn:
            for _ in range(self.workers):
                self._spawn_worker()

    # ------------------------------------------------------ processes

    def _spawn_worker(self) -> None:
        self._processes.append(
            subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro",
                    "worker",
                    f"{self.address[0]}:{self.address[1]}",
                ],
                env=_worker_env(self.auth_token),
                stdout=subprocess.DEVNULL,  # parent stdout may be a JSON report
            )
        )

    def _process_for(self, conn: JsonLineConnection) -> Optional[subprocess.Popen]:
        """The spawned process behind a connection (via the hello pid);
        ``None`` for external workers."""
        if conn.pid is None:
            return None
        for proc in self._processes:
            if proc.pid == conn.pid:
                return proc
        return None

    def _live_processes(self) -> int:
        return sum(1 for proc in self._processes if proc.poll() is None)

    def _ensure_capacity(self) -> None:
        """Respawn dead spawned workers to restore the band, bounded by
        the supervision policy (supervised spawn-mode backends only)."""
        if not self._spawn or self.supervisor is None:
            return
        while self._live_processes() < self.workers and (
            self.supervisor.respawn_allowed(self.workers)
        ):
            self.supervisor.worker_respawned()
            self._spawn_worker()

    # ------------------------------------------------------ connections

    def _accept(self) -> None:
        try:
            sock, _ = self._listener.accept()
        except OSError:  # pragma: no cover
            return
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        conn = self._wrap_connection(JsonLineConnection(sock))
        self._selector.register(sock, selectors.EVENT_READ, conn)
        self._pending.append(conn)

    def _wrap_connection(self, conn: JsonLineConnection) -> JsonLineConnection:
        """Hook for the chaos backend: wrap a fresh connection before it
        enters the event loop.  The default is the identity."""
        return conn

    def _verify_hello(self, conn: JsonLineConnection, message: Dict[str, Any]) -> bool:
        """Promote a pending connection on a valid hello frame; reject
        (one error frame, then drop) on protocol or token mismatch."""
        ok = message.get("type") == "hello" and message.get("protocol") == PROTOCOL
        if ok and self.auth_token is not None:
            ok = message.get("token") == self.auth_token
        if not ok:
            try:
                conn.send({"type": "error", "error": "unauthorized"})
            except OSError:  # pragma: no cover - peer already gone
                pass
            self._drop(conn)
            return False
        pid = message.get("pid")
        conn.pid = int(pid) if isinstance(pid, int) else None
        conn.ready = True
        self._pending.remove(conn)
        self._connections.append(conn)
        self._ever_connected = True
        return True

    def _pump_pending(self, conn: JsonLineConnection) -> None:
        """Read from a not-yet-verified connection: the only acceptable
        first frame is a valid hello."""
        frames = conn.read_ready()
        if frames is None:
            self._drop(conn)
            return
        for message in frames:
            if not conn.ready:
                if not self._verify_hello(conn, message):
                    return
            # frames after a valid hello (none in practice) are ignored

    def _drop(self, conn: JsonLineConnection) -> None:
        try:
            self._selector.unregister(conn.sock)
        except (KeyError, ValueError):  # pragma: no cover
            pass
        if conn in self._connections:
            self._connections.remove(conn)
        if conn in self._pending:
            self._pending.remove(conn)
        conn.close()

    def _workers_possible(self) -> bool:
        """Could another worker still join?  In spawn mode that means a
        spawned process is alive; with external workers we can never be
        sure, so assume yes (bounded by the connect timeout)."""
        if self._spawn:
            return any(proc.poll() is None for proc in self._processes)
        return True

    def _wait_for_connection(self) -> None:
        """Block until at least one worker is hello-verified, a connect
        timeout elapses, or no worker can ever join again.

        Raises ``RuntimeError`` only when *no worker ever connected* --
        once real work has been done, total worker loss degrades to
        ``None`` results, mirroring the fork pool."""
        deadline = time.monotonic() + self.connect_timeout
        while not self._connections:
            self._ensure_capacity()
            if not self._pending and not self._workers_possible():
                if self._ever_connected:
                    return
                raise RuntimeError(
                    "socket backend: all spawned workers exited before "
                    "connecting (is the repro package importable in the "
                    "worker interpreter?)"
                )
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                if self._ever_connected:
                    return
                raise RuntimeError(
                    f"socket backend: no worker connected to "
                    f"{self.address[0]}:{self.address[1]} within "
                    f"{self.connect_timeout:.0f}s"
                )
            for key, _ in self._selector.select(min(remaining, 0.2)):
                if key.data == "listener":
                    self._accept()
                elif not key.data.ready:
                    self._pump_pending(key.data)

    # --------------------------------------------------- dispatch hooks

    def _send_task(self, conn: JsonLineConnection, frame: Dict[str, Any]) -> None:
        """Ship one task frame (the chaos backend perturbs this)."""
        conn.send(frame)

    def _on_dispatched(self, conn: JsonLineConnection, index: int) -> None:
        """Hook fired after a successful dispatch (chaos kills here)."""

    # ------------------------------------------------------------- map

    def map(
        self,
        tasks: Sequence[Any],
        deadline: Optional[float] = None,
        on_result: Optional[ResultHook] = None,
    ) -> List[Optional[Any]]:
        try:
            return self._map(tasks, deadline, on_result)
        except (KeyboardInterrupt, SystemExit):
            # A cancelled campaign must not orphan spawned workers.
            self.close()
            raise

    def _map(
        self,
        tasks: Sequence[Any],
        deadline: Optional[float],
        on_result: Optional[ResultHook],
    ) -> List[Optional[Any]]:
        supervisor = self.supervisor
        if supervisor is not None:
            supervisor.begin_map()
        timeout = (
            supervisor.policy.task_timeout if supervisor is not None else None
        )
        results: List[Optional[Any]] = [None] * len(tasks)
        unresolved = set(range(len(tasks)))
        queue: List[int] = list(range(len(tasks)))
        retries: List[Tuple[float, int]] = []  # (ready_at, index), sorted
        active: Dict[JsonLineConnection, List[int]] = {}
        started: Dict[JsonLineConnection, float] = {}  # oldest in-flight

        def next_index() -> Optional[int]:
            now = time.monotonic()
            while True:
                if retries and retries[0][0] <= now:
                    return retries.pop(0)[1]
                if queue:
                    index = queue.pop(0)
                    if deadline is not None and now >= deadline:
                        unresolved.discard(index)  # skipped
                        continue
                    return index
                return None

        def dispatch(conn: JsonLineConnection) -> None:
            """Feed tasks to a verified connection up to the pipeline
            bound (skipping deadline-expired ones, which stay ``None``)."""
            while len(active.get(conn, ())) < self.pipeline:
                index = next_index()
                if index is None:
                    return
                try:
                    self._send_task(
                        conn,
                        {
                            "type": "task",
                            "id": index,
                            "handler": self.handler_spec,
                            "task": tasks[index],
                        },
                    )
                except OSError:
                    # Died between reply and redispatch: requeue and let
                    # the event loop retire the connection.
                    queue.insert(0, index)
                    fail_conn(conn, None)
                    return
                active.setdefault(conn, []).append(index)
                started.setdefault(conn, time.monotonic())
                self._on_dispatched(conn, index)

        def fail_conn(conn: JsonLineConnection, reason: Optional[str]) -> None:
            """Retire a connection; requeue/quarantine its in-flight
            tasks.  The oldest in-flight task is the one charged with
            the failure (it was executing); younger ones requeue free."""
            indices = active.pop(conn, [])
            started.pop(conn, None)
            self._drop(conn)
            if not indices:
                return
            culprit, innocent = indices[0], indices[1:]
            for index in reversed(innocent):
                queue.insert(0, index)
            if supervisor is None or reason is None:
                queue.insert(0, culprit)
                return
            if reason == "timeout":
                verdict = supervisor.task_timed_out(culprit, tasks[culprit])
            else:
                verdict = supervisor.worker_died(culprit, tasks[culprit])
            if verdict == RETRY:
                delay = supervisor.backoff_delay(culprit)
                supervisor.task_retried(culprit, tasks[culprit], delay)
                bisect.insort(retries, (time.monotonic() + delay, culprit))
            else:
                unresolved.discard(culprit)  # quarantined: stays None

        def settle(conn: JsonLineConnection, message: Dict[str, Any]) -> None:
            index = message["id"]
            in_flight = active.get(conn)
            if in_flight is not None and index in in_flight:
                in_flight.remove(index)
                if in_flight:
                    started[conn] = time.monotonic()  # next task starts now
                else:
                    del active[conn]
                    started.pop(conn, None)
            if index not in unresolved:
                return  # duplicate result (late retry, chaos dup): once only
            if not message.get("ok"):
                raise RuntimeError(
                    f"task {index} failed: {message.get('error')}"
                )
            results[index] = message.get("result")
            unresolved.discard(index)
            # A slot freed on this worker and possibly a backoff expired:
            # refill before the next select tick.
            if on_result is not None:
                on_result(index, tasks[index], results[index])

        while unresolved:
            self._ensure_capacity()
            if not self._connections:
                self._wait_for_connection()
                if not self._connections:
                    # Permanent starvation: remaining tasks stay None,
                    # exactly like the fork pool with no survivors.
                    break
            for conn in list(self._connections):
                dispatch(conn)
            if not active and not queue and not retries:
                break  # everything left was skipped or quarantined
            tick = 0.2
            now = time.monotonic()
            if retries:
                tick = min(tick, max(0.01, retries[0][0] - now))
            if timeout is not None and started:
                tick = min(
                    tick,
                    max(0.01, min(t0 + timeout - now for t0 in started.values())),
                )
            for key, _ in self._selector.select(tick):
                if key.data == "listener":
                    self._accept()  # late joiner: verified next turn
                    continue
                conn = key.data
                if not conn.ready:
                    self._pump_pending(conn)
                    continue
                frames = conn.read_ready()
                if frames is None:
                    # Worker died: reassign its in-flight tasks (the
                    # graceful-loss path; cells are requeued, not lost).
                    fail_conn(conn, "death")
                    continue
                for message in frames:
                    if message.get("type") == "result":
                        settle(conn, message)
            if timeout is not None:
                now = time.monotonic()
                for conn in [
                    c for c, t0 in list(started.items()) if now - t0 >= timeout
                ]:
                    # Watchdog: the oldest in-flight task ran past its
                    # hard deadline.  Kill the wedged spawned worker (we
                    # know its pid from the hello) and retire the
                    # connection; external workers just lose the link.
                    proc = self._process_for(conn)
                    if proc is not None and proc.poll() is None:
                        proc.kill()
                    fail_conn(conn, "timeout")
        return results

    def close(self) -> None:
        for conn in list(self._connections) + list(self._pending):
            try:
                conn.send({"type": "shutdown"})
            except OSError:
                pass
            self._drop(conn)
        for proc in self._processes:
            # Escalate deterministically: grace for a clean exit after
            # the shutdown frame, SIGTERM grace next, SIGKILL last.
            try:
                proc.wait(timeout=self.shutdown_grace)
                continue
            except subprocess.TimeoutExpired:
                pass
            proc.terminate()
            try:
                proc.wait(timeout=self.term_grace)
                continue
            except subprocess.TimeoutExpired:
                pass
            proc.kill()
            try:
                proc.wait(timeout=2.0)
            except subprocess.TimeoutExpired:  # pragma: no cover
                pass
        self._processes = []
        try:
            self._selector.unregister(self._listener)
        except (KeyError, ValueError):
            pass
        self._selector.close()
        self._listener.close()
