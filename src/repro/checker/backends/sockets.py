"""The socket backend: task fan-out to worker processes over TCP.

The parent binds a listener (``127.0.0.1:0`` by default), spawns
``workers`` subprocesses running ``python -m repro worker HOST:PORT``,
and ships them self-describing task frames as newline-delimited JSON:

    {"type": "task", "id": 3, "handler": "repro.remix.campaign:execute_campaign_task", "task": {...}}
    {"type": "result", "id": 3, "ok": true, "result": {...}}

Each frame names its handler by importable ``module:function`` spec and
carries the complete task payload, so a worker needs nothing but the
``repro`` package on its path -- no fork inheritance, no pickling, no
shared filesystem.  External workers (another host, a container) can
join the same listener with ``python -m repro worker``; the parent
accepts late joiners mid-map and feeds them like any other.

Determinism: dispatch is greedy (a worker gets a new task as soon as it
replies) but results are slotted by task index, exactly like the fork
:class:`~repro.checker.parallel.TaskPool` -- so a campaign over sockets
merges bit-identically to the same campaign over fork.

Failure semantics mirror the fork pool:

- a task that *raises* in a worker re-raises here as ``RuntimeError``;
- a worker that *dies* mid-task (crash, OOM kill, unplugged host) has
  its in-flight task requeued at the front of the queue for a
  surviving worker -- cells are reassigned, not lost;
- with no survivors (and none able to join), remaining tasks come back
  as ``None``.
"""

from __future__ import annotations

import json
import os
import selectors
import socket
import subprocess
import sys
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.checker.backends.base import ExecutionBackend, ResultHook, resolve_handler

#: Version tag every worker announces in its hello frame.
PROTOCOL = "repro.backend.wire/1"

_JSON_SEPARATORS = (",", ":")


def _encode(message: Dict[str, Any]) -> bytes:
    return json.dumps(message, separators=_JSON_SEPARATORS).encode("utf-8") + b"\n"


class JsonLineConnection:
    """One newline-delimited-JSON peer over a connected socket."""

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self._buffer = b""

    def fileno(self) -> int:
        return self.sock.fileno()

    def send(self, message: Dict[str, Any]) -> None:
        self.sock.sendall(_encode(message))

    def recv(self) -> Optional[Dict[str, Any]]:
        """Block until one complete frame arrives; ``None`` on EOF."""
        while b"\n" not in self._buffer:
            chunk = self.sock.recv(65536)
            if not chunk:
                return None
            self._buffer += chunk
        line, _, self._buffer = self._buffer.partition(b"\n")
        return json.loads(line)

    def read_ready(self) -> Optional[List[Dict[str, Any]]]:
        """One non-blocking-ish read (call only when selectable):
        returns every complete frame received so far, or ``None`` on
        EOF/reset (the peer is gone)."""
        try:
            chunk = self.sock.recv(65536)
        except OSError:
            return None
        if not chunk:
            return None
        self._buffer += chunk
        frames: List[Dict[str, Any]] = []
        while b"\n" in self._buffer:
            line, _, self._buffer = self._buffer.partition(b"\n")
            frames.append(json.loads(line))
        return frames

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:  # pragma: no cover
            pass


def worker_main(host: str, port: int) -> None:
    """The worker loop behind ``python -m repro worker HOST:PORT``.

    Connects to the backend's listener, announces itself, then executes
    task frames until a shutdown frame or EOF.  Handlers are resolved
    from their ``module:function`` spec on first use and memoized, so a
    long-lived worker pays the import (and any module-level cache
    warming) once."""
    conn = JsonLineConnection(socket.create_connection((host, port)))
    handlers: Dict[str, Any] = {}
    try:
        conn.send({"type": "hello", "protocol": PROTOCOL, "pid": os.getpid()})
        while True:
            message = conn.recv()
            if message is None or message.get("type") == "shutdown":
                break
            if message.get("type") != "task":
                continue  # unknown frame types are ignored, not fatal
            spec = message["handler"]
            handler = handlers.get(spec)
            if handler is None:
                handler = handlers[spec] = resolve_handler(spec)
            reply: Dict[str, Any] = {"type": "result", "id": message["id"]}
            try:
                reply["ok"] = True
                reply["result"] = handler(message["task"])
            except Exception as error:  # surfaced in the parent
                reply = {
                    "type": "result",
                    "id": message["id"],
                    "ok": False,
                    "error": repr(error),
                }
            conn.send(reply)
    except (BrokenPipeError, ConnectionResetError, KeyboardInterrupt):
        pass  # the parent went away; nothing useful left to do
    finally:
        conn.close()


def _worker_env() -> Dict[str, str]:
    """Environment for spawned workers: make sure the ``repro`` package
    the *parent* runs is importable in the child, even when the parent
    got it from a pytest/pyproject ``pythonpath`` the child would not
    inherit."""
    import repro

    package_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        package_root + os.pathsep + existing if existing else package_root
    )
    return env


class SocketBackend(ExecutionBackend):
    """Fan tasks out to TCP-connected worker processes.

    ``spawn=True`` (the default) launches ``workers`` local
    subprocesses via ``python -m repro worker``; ``spawn=False`` binds
    the listener and waits for external workers to join (print the
    address from :attr:`address` and start them by hand)."""

    name = "socket"

    def __init__(
        self,
        handler: Any,
        workers: int = 1,
        host: str = "127.0.0.1",
        port: int = 0,
        spawn: bool = True,
        connect_timeout: float = 30.0,
    ):
        if callable(handler):
            raise ValueError(
                "socket backend needs an importable 'module:function' "
                "handler spec (workers run in fresh processes)"
            )
        self.handler_spec = str(handler)
        resolve_handler(self.handler_spec)  # fail fast on typos, locally
        self.workers = max(1, workers)
        self.connect_timeout = connect_timeout
        self._spawn = spawn
        self._ever_connected = False
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(128)
        #: The ``(host, port)`` external workers should join.
        self.address: Tuple[str, int] = self._listener.getsockname()[:2]
        self._selector = selectors.DefaultSelector()
        self._selector.register(self._listener, selectors.EVENT_READ, "listener")
        self._connections: List[JsonLineConnection] = []
        self._processes: List[subprocess.Popen] = []
        if spawn:
            env = _worker_env()
            for _ in range(self.workers):
                self._processes.append(
                    subprocess.Popen(
                        [
                            sys.executable,
                            "-m",
                            "repro",
                            "worker",
                            f"{self.address[0]}:{self.address[1]}",
                        ],
                        env=env,
                        stdout=subprocess.DEVNULL,  # parent stdout may be a JSON report
                    )
                )

    # ------------------------------------------------------ connections

    def _accept(self) -> None:
        try:
            sock, _ = self._listener.accept()
        except OSError:  # pragma: no cover
            return
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        conn = JsonLineConnection(sock)
        self._selector.register(sock, selectors.EVENT_READ, conn)
        self._connections.append(conn)
        self._ever_connected = True

    def _drop(self, conn: JsonLineConnection) -> None:
        try:
            self._selector.unregister(conn.sock)
        except (KeyError, ValueError):  # pragma: no cover
            pass
        if conn in self._connections:
            self._connections.remove(conn)
        conn.close()

    def _workers_possible(self) -> bool:
        """Could another worker still join?  In spawn mode that means a
        spawned process is alive; with external workers we can never be
        sure, so assume yes (bounded by the connect timeout)."""
        if self._spawn:
            return any(proc.poll() is None for proc in self._processes)
        return True

    def _wait_for_connection(self) -> None:
        """Block until at least one worker is connected, a connect
        timeout elapses, or no worker can ever join again.

        Raises ``RuntimeError`` only when *no worker ever connected* --
        once real work has been done, total worker loss degrades to
        ``None`` results, mirroring the fork pool."""
        deadline = time.monotonic() + self.connect_timeout
        while not self._connections:
            if not self._workers_possible():
                if self._ever_connected:
                    return
                raise RuntimeError(
                    "socket backend: all spawned workers exited before "
                    "connecting (is the repro package importable in the "
                    "worker interpreter?)"
                )
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                if self._ever_connected:
                    return
                raise RuntimeError(
                    f"socket backend: no worker connected to "
                    f"{self.address[0]}:{self.address[1]} within "
                    f"{self.connect_timeout:.0f}s"
                )
            for key, _ in self._selector.select(min(remaining, 0.2)):
                if key.data == "listener":
                    self._accept()

    # ------------------------------------------------------------- map

    def map(
        self,
        tasks: Sequence[Any],
        deadline: Optional[float] = None,
        on_result: Optional[ResultHook] = None,
    ) -> List[Optional[Any]]:
        results: List[Optional[Any]] = [None] * len(tasks)
        unresolved = set(range(len(tasks)))
        queue: List[int] = list(range(len(tasks)))
        active: Dict[JsonLineConnection, int] = {}

        def dispatch(conn: JsonLineConnection) -> None:
            """Feed one queued task to an idle connection (skipping
            deadline-expired ones, which stay ``None``)."""
            while queue:
                index = queue.pop(0)
                if deadline is not None and time.monotonic() >= deadline:
                    unresolved.discard(index)  # skipped
                    continue
                try:
                    conn.send(
                        {
                            "type": "task",
                            "id": index,
                            "handler": self.handler_spec,
                            "task": tasks[index],
                        }
                    )
                except OSError:
                    # Died between reply and redispatch: requeue and let
                    # the event loop retire the connection.
                    queue.insert(0, index)
                    self._drop(conn)
                    return
                active[conn] = index
                return

        while unresolved:
            if not self._connections:
                self._wait_for_connection()
                if not self._connections:
                    # Permanent starvation: remaining tasks stay None,
                    # exactly like the fork pool with no survivors.
                    break
            for conn in list(self._connections):
                if conn not in active and queue:
                    dispatch(conn)
            if not active:
                if not queue:
                    break  # everything left was deadline-skipped
                continue  # dispatch lost its connections; reconnect loop
            for key, _ in self._selector.select(0.2):
                if key.data == "listener":
                    self._accept()  # late joiner: picks up work next turn
                    continue
                conn = key.data
                frames = conn.read_ready()
                if frames is None:
                    # Worker died: reassign its in-flight task (the
                    # graceful-loss path; the cell is requeued, not lost).
                    self._drop(conn)
                    if conn in active:
                        queue.insert(0, active.pop(conn))
                    continue
                for message in frames:
                    if message.get("type") != "result":
                        continue  # hello and friends
                    index = message["id"]
                    if active.get(conn) == index:
                        del active[conn]
                    if not message.get("ok"):
                        raise RuntimeError(
                            f"task {index} failed: {message.get('error')}"
                        )
                    results[index] = message.get("result")
                    unresolved.discard(index)
                    if on_result is not None:
                        on_result(index, tasks[index], results[index])
        return results

    def close(self) -> None:
        for conn in list(self._connections):
            try:
                conn.send({"type": "shutdown"})
            except OSError:
                pass
            self._drop(conn)
        for proc in self._processes:
            try:
                proc.wait(timeout=2.0)
            except subprocess.TimeoutExpired:  # pragma: no cover
                proc.terminate()
                try:
                    proc.wait(timeout=1.0)
                except subprocess.TimeoutExpired:
                    proc.kill()
        self._processes = []
        try:
            self._selector.unregister(self._listener)
        except (KeyError, ValueError):
            pass
        self._selector.close()
        self._listener.close()
