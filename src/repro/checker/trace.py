"""Traces: label/state sequences produced by the checkers.

A :class:`Trace` records the action labels from an initial state plus the
resulting state sequence.  Traces are what the conformance checker replays
against the implementation (Section 3.5.2) and what a safety violation is
reported as (the TLC counterexample).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Sequence, Tuple

from repro.tla.action import ActionLabel
from repro.tla.state import State


@dataclass
class Trace:
    """A finite behaviour: states[0] -label[0]-> states[1] -> ..."""

    states: List[State]
    labels: List[ActionLabel]

    def __post_init__(self):
        if len(self.states) != len(self.labels) + 1:
            raise ValueError(
                f"{len(self.states)} states need {len(self.states) - 1} labels, "
                f"got {len(self.labels)}"
            )

    def __len__(self) -> int:
        """Number of steps (state transitions)."""
        return len(self.labels)

    @property
    def initial(self) -> State:
        return self.states[0]

    @property
    def final(self) -> State:
        return self.states[-1]

    def steps(self):
        """Iterate (pre-state, label, post-state) triples."""
        for i, label in enumerate(self.labels):
            yield self.states[i], label, self.states[i + 1]

    def project(self, variables: FrozenSet[str]) -> Tuple[Tuple, ...]:
        """Project onto a variable set with stutter condensation
        (Appendix B.3): consecutive equal projections merge."""
        out: List[Tuple] = []
        for state in self.states:
            projected = state.project(variables)
            if not out or out[-1] != projected:
                out.append(projected)
        return tuple(out)

    def truncated_at(self, predicate) -> "Trace":
        """The prefix ending at the *first* state satisfying ``predicate``
        (the whole trace when no state does).

        Random walks truncate at violating states before replay, and the
        shrinker truncates before delta debugging: engine/DFS traces may
        pass through the target state mid-trace rather than end on it.
        """
        for index, state in enumerate(self.states):
            if predicate(state):
                return Trace(
                    states=self.states[: index + 1],
                    labels=self.labels[:index],
                )
        return self

    def describe(self, max_steps: int = 50) -> str:
        """Human-readable rendering (for violation reports)."""
        lines = [f"Trace with {len(self)} steps:"]
        for i, label in enumerate(self.labels[:max_steps]):
            lines.append(f"  {i + 1:3d}. {label}")
        if len(self.labels) > max_steps:
            lines.append(f"  ... ({len(self.labels) - max_steps} more)")
        return "\n".join(lines)


def traces_project_equal(
    left: Sequence[Trace], right: Sequence[Trace], variables: FrozenSet[str]
) -> bool:
    """Set-equality of projected, condensed traces (the paper's T_S|M_i ==
    T_S_i|M_i), used in property tests of the coarsening theorem."""
    left_set = {trace.project(variables) for trace in left}
    right_set = {trace.project(variables) for trace in right}
    return left_set == right_set
