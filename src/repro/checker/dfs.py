"""Depth-first and iterative-deepening checkers.

BFS gives minimal counterexamples but holds the whole frontier in memory;
DFS reaches deep states cheaply (useful for quick bug smoke-tests before
an expensive BFS run) at the cost of non-minimal traces.  TLC offers the
same trade-off via its ``-dfid`` mode, which the iterative-deepening
variant mirrors.

Since the engine refactor, :class:`DFSChecker` is a thin compatibility
wrapper over :class:`repro.checker.engine.ExplorationEngine` with
``strategy="dfs"`` (fingerprinted visited set, replay-based traces).
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from repro.checker.engine import ExplorationEngine
from repro.checker.result import CheckResult
from repro.tla.spec import Specification
from repro.tla.state import State


class DFSChecker:
    """Bounded depth-first search for a first violation."""

    def __init__(
        self,
        spec: Specification,
        max_depth: int = 40,
        max_states: Optional[int] = None,
        max_time: Optional[float] = None,
        mask: Optional[Callable[[State], bool]] = None,
    ):
        self.spec = spec
        self.max_depth = max_depth
        self.max_states = max_states
        self.max_time = max_time
        self.mask = mask

    def run(self) -> CheckResult:
        return ExplorationEngine(
            self.spec,
            strategy="dfs",
            max_states=self.max_states,
            max_time=self.max_time,
            max_depth=self.max_depth,
            mask=self.mask,
        ).run()


class IterativeDeepeningChecker:
    """TLC's -dfid: DFS with increasing depth bounds, which restores the
    minimal-depth property of counterexamples."""

    def __init__(
        self,
        spec: Specification,
        max_depth: int = 40,
        step: int = 2,
        max_time: Optional[float] = None,
        mask: Optional[Callable[[State], bool]] = None,
    ):
        self.spec = spec
        self.max_depth = max_depth
        self.step = step
        self.max_time = max_time
        self.mask = mask

    def run(self) -> CheckResult:
        start = time.monotonic()
        last = CheckResult(spec_name=self.spec.name)
        for depth in range(self.step, self.max_depth + 1, self.step):
            remaining = (
                None
                if self.max_time is None
                else max(0.5, self.max_time - (time.monotonic() - start))
            )
            result = DFSChecker(
                self.spec,
                max_depth=depth,
                max_time=remaining,
                mask=self.mask,
            ).run()
            result.elapsed_seconds = time.monotonic() - start
            if result.found_violation or result.budget_exhausted == "max_time":
                return result
            last = result
        return last
