"""Depth-first and iterative-deepening checkers.

BFS gives minimal counterexamples but holds the whole frontier in memory;
DFS reaches deep states cheaply (useful for quick bug smoke-tests before
an expensive BFS run) at the cost of non-minimal traces.  TLC offers the
same trade-off via its ``-dfid`` mode, which the iterative-deepening
variant mirrors.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.checker.result import CheckResult, Violation
from repro.checker.trace import Trace
from repro.tla.action import ActionLabel
from repro.tla.spec import Specification
from repro.tla.state import State


class DFSChecker:
    """Bounded depth-first search for a first violation."""

    def __init__(
        self,
        spec: Specification,
        max_depth: int = 40,
        max_states: Optional[int] = None,
        max_time: Optional[float] = None,
        mask: Optional[Callable[[State], bool]] = None,
    ):
        self.spec = spec
        self.max_depth = max_depth
        self.max_states = max_states
        self.max_time = max_time
        self.mask = mask

    def run(self) -> CheckResult:
        spec = self.spec
        result = CheckResult(spec_name=spec.name)
        start = time.monotonic()
        visited: Set[State] = set()

        # Iterative DFS with an explicit stack of (state, path) where the
        # path carries (label, state) pairs for trace reconstruction.
        stack: List[Tuple[State, List[Tuple[ActionLabel, State]]]] = []
        for init in spec.initial_states():
            stack.append((init, []))

        while stack:
            if self.max_states is not None and len(visited) >= self.max_states:
                result.budget_exhausted = "max_states"
                break
            if self.max_time is not None and (
                time.monotonic() - start > self.max_time
            ):
                result.budget_exhausted = "max_time"
                break
            state, path = stack.pop()
            if state in visited:
                continue
            visited.add(state)
            result.max_depth = max(result.max_depth, len(path))
            if self.mask is not None and self.mask(state):
                continue
            violated = spec.violated_invariants(state)
            if violated:
                states = [p for _, p in path]
                initial = path[0][1] if path else state
                # rebuild the full state list from the recorded path
                trace_states: List[State] = []
                labels: List[ActionLabel] = []
                if path:
                    # path[k] = (label into state_k, state_k); prepend init
                    first_label, _ = path[0]
                    # find the originating initial state by replay
                    trace_states = [self._initial_of(path)]
                    for label, st in path:
                        labels.append(label)
                        trace_states.append(st)
                else:
                    trace_states = [state]
                result.violations.append(
                    Violation(
                        invariant=violated[0],
                        trace=Trace(states=trace_states, labels=labels),
                    )
                )
                break
            if len(path) >= self.max_depth:
                continue
            if not spec.within_constraint(state):
                continue
            for label, nxt in spec.successors(state):
                result.transitions += 1
                if nxt not in visited:
                    stack.append((nxt, path + [(label, nxt)]))

        result.states_explored = len(visited)
        result.elapsed_seconds = time.monotonic() - start
        result.completed = (
            not stack
            and not result.violations
            and result.budget_exhausted is None
        )
        return result

    def _initial_of(self, path) -> State:
        """Recover the initial state a DFS path started from by replaying
        backwards: the first path entry's pre-state is an initial state of
        the spec (we track only one initial state per stack entry)."""
        # Replay forward from each initial state until the first step of
        # the path matches; specs here have a single initial state, so
        # this is cheap.
        first_label, first_state = path[0]
        for init in self.spec.initial_states():
            inst = self.spec.instance_for(first_label)
            if inst.apply(self.spec.config, init) == first_state:
                return init
        raise ValueError("could not reconstruct the DFS trace origin")


class IterativeDeepeningChecker:
    """TLC's -dfid: DFS with increasing depth bounds, which restores the
    minimal-depth property of counterexamples."""

    def __init__(
        self,
        spec: Specification,
        max_depth: int = 40,
        step: int = 2,
        max_time: Optional[float] = None,
        mask: Optional[Callable[[State], bool]] = None,
    ):
        self.spec = spec
        self.max_depth = max_depth
        self.step = step
        self.max_time = max_time
        self.mask = mask

    def run(self) -> CheckResult:
        start = time.monotonic()
        last = CheckResult(spec_name=self.spec.name)
        for depth in range(self.step, self.max_depth + 1, self.step):
            remaining = (
                None
                if self.max_time is None
                else max(0.5, self.max_time - (time.monotonic() - start))
            )
            result = DFSChecker(
                self.spec,
                max_depth=depth,
                max_time=remaining,
                mask=self.mask,
            ).run()
            result.elapsed_seconds = time.monotonic() - start
            if result.found_violation or result.budget_exhausted == "max_time":
                return result
            last = result
        return last
