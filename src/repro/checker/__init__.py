"""Explicit-state model checkers built on the unified exploration engine:
BFS (the TLC substitute), DFS and iterative deepening, random walk,
portfolio racing, coverage, shrinking and rendering."""

from repro.checker.bfs import BFSChecker, check
from repro.checker.coverage import CoverageReport, measure_coverage
from repro.checker.dfs import DFSChecker, IterativeDeepeningChecker
from repro.checker.engine import (
    DEDUPE_MODES,
    STRATEGIES,
    CompiledSpec,
    ExplorationEngine,
    compiled_for,
    explore,
)
from repro.checker.fingerprint import (
    Fingerprinter,
    IncrementalFingerprinter,
    fingerprint_state,
)
from repro.checker.visited import SharedVisitedSet
from repro.checker.pretty import format_state, format_trace
from repro.checker.random_walk import RandomWalker
from repro.checker.result import CheckResult, Violation
from repro.checker.shrink import (
    TraceOracle,
    shrink_trace,
    shrink_trace_oracle,
    violation_predicate,
)
from repro.checker.trace import Trace, traces_project_equal

__all__ = [
    "BFSChecker",
    "CheckResult",
    "CompiledSpec",
    "CoverageReport",
    "DEDUPE_MODES",
    "DFSChecker",
    "ExplorationEngine",
    "Fingerprinter",
    "IncrementalFingerprinter",
    "IterativeDeepeningChecker",
    "RandomWalker",
    "STRATEGIES",
    "SharedVisitedSet",
    "compiled_for",
    "Trace",
    "TraceOracle",
    "Violation",
    "check",
    "explore",
    "fingerprint_state",
    "format_state",
    "format_trace",
    "measure_coverage",
    "shrink_trace",
    "shrink_trace_oracle",
    "traces_project_equal",
    "violation_predicate",
]
