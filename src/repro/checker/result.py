"""Check results and violation records (the TLC run report)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.checker.trace import Trace
from repro.tla.spec import Invariant


@dataclass
class Violation:
    """One invariant violation with its minimal-depth counterexample."""

    invariant: Invariant
    trace: Trace

    @property
    def depth(self) -> int:
        return len(self.trace)

    def __str__(self) -> str:
        return (
            f"Violation of {self.invariant.full_name} ({self.invariant.name}) "
            f"at depth {self.depth}"
        )


@dataclass
class CheckResult:
    """Statistics of one model-checking run (one row of Tables 4-6)."""

    spec_name: str
    states_explored: int = 0
    transitions: int = 0
    max_depth: int = 0
    elapsed_seconds: float = 0.0
    violations: List[Violation] = field(default_factory=list)
    completed: bool = False  # state space exhausted within budgets
    budget_exhausted: Optional[str] = None  # which budget stopped us, if any

    @property
    def found_violation(self) -> bool:
        return bool(self.violations)

    @property
    def first_violation(self) -> Optional[Violation]:
        return self.violations[0] if self.violations else None

    def violated_invariant_ids(self) -> List[str]:
        """Distinct invariant family ids, in first-seen order."""
        seen: Dict[str, None] = {}
        for violation in self.violations:
            seen.setdefault(violation.invariant.ident, None)
        return list(seen)

    def summary(self) -> str:
        status = "completed" if self.completed else (
            f"stopped ({self.budget_exhausted})" if self.budget_exhausted else "stopped"
        )
        vio = (
            f"{len(self.violations)} violation(s) of "
            f"{', '.join(self.violated_invariant_ids())}"
            if self.violations
            else "no violation"
        )
        return (
            f"[{self.spec_name}] {status}: {self.states_explored} states, "
            f"{self.transitions} transitions, depth {self.max_depth}, "
            f"{self.elapsed_seconds:.2f}s, {vio}"
        )
