"""The seed breadth-first checker, kept verbatim as a benchmark baseline.

This is the pre-engine implementation: full ``State`` objects stored in
the visited dict, invariants evaluated at discovery *and* again at
expansion, a kwargs dict rebuilt per action application.  It exists so
the benchmarks can report the engine's speedup against a fixed baseline
(``benchmarks/bench_table5_efficiency.py --compare-legacy``) instead of
against a number in a commit message.  Do not use it for new checking
code -- use :class:`repro.checker.engine.ExplorationEngine`.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, Dict, List, Optional, Tuple

from repro.checker.result import CheckResult, Violation
from repro.checker.trace import Trace
from repro.tla.action import ActionLabel
from repro.tla.spec import Specification
from repro.tla.state import State


class LegacyBFSChecker:
    """The seed repository's BFS checker (see module docstring)."""

    def __init__(
        self,
        spec: Specification,
        max_states: Optional[int] = None,
        max_time: Optional[float] = None,
        max_depth: Optional[int] = None,
        violation_limit: int = 10_000,
        stop_at_first: bool = True,
        mask: Optional[Callable[[State], bool]] = None,
    ):
        self.spec = spec
        self.max_states = max_states
        self.max_time = max_time
        self.max_depth = max_depth
        self.violation_limit = violation_limit
        self.stop_at_first = stop_at_first
        self.mask = mask

    def run(self) -> CheckResult:
        spec = self.spec
        result = CheckResult(spec_name=spec.name)
        start = time.monotonic()

        # parent[state] = (parent_state, label); None marks initial states.
        parent: Dict[State, Optional[Tuple[State, ActionLabel]]] = {}
        depth_of: Dict[State, int] = {}
        frontier: deque = deque()

        def over_budget() -> Optional[str]:
            if self.max_states is not None and len(parent) >= self.max_states:
                return "max_states"
            if self.max_time is not None and (
                time.monotonic() - start
            ) >= self.max_time:
                return "max_time"
            return None

        def record_violations(state: State) -> bool:
            """Check invariants; return True when exploration should stop."""
            for inv in spec.violated_invariants(state):
                result.violations.append(
                    Violation(invariant=inv, trace=self._trace_to(state, parent))
                )
                if self.stop_at_first:
                    return True
                if len(result.violations) >= self.violation_limit:
                    result.budget_exhausted = "violation_limit"
                    return True
            return False

        stop = False
        for init in spec.initial_states():
            if init in parent:
                continue
            parent[init] = None
            depth_of[init] = 0
            if self.mask is not None and self.mask(init):
                continue
            if record_violations(init):
                stop = True
                break
            frontier.append(init)

        while frontier and not stop:
            budget = over_budget()
            if budget:
                result.budget_exhausted = budget
                break
            state = frontier.popleft()
            depth = depth_of[state]
            if self.max_depth is not None and depth >= self.max_depth:
                continue
            if not spec.within_constraint(state):
                continue
            if spec.violated_invariants(state):
                # Error states are terminal: do not explore past them.
                continue
            for label, nxt in spec.successors(state):
                result.transitions += 1
                if nxt in parent:
                    continue
                parent[nxt] = (state, label)
                depth_of[nxt] = depth + 1
                if depth + 1 > result.max_depth:
                    result.max_depth = depth + 1
                if self.mask is not None and self.mask(nxt):
                    continue
                if record_violations(nxt):
                    stop = True
                    break
                frontier.append(nxt)

        result.states_explored = len(parent)
        result.elapsed_seconds = time.monotonic() - start
        result.completed = not frontier and not stop and result.budget_exhausted is None
        return result

    @staticmethod
    def _trace_to(
        state: State,
        parent: Dict[State, Optional[Tuple[State, ActionLabel]]],
    ) -> Trace:
        """Reconstruct the minimal-depth trace to ``state`` from parents."""
        states: List[State] = [state]
        labels: List[ActionLabel] = []
        current = state
        while True:
            link = parent[current]
            if link is None:
                break
            prev, label = link
            states.append(prev)
            labels.append(label)
            current = prev
        states.reverse()
        labels.reverse()
        return Trace(states=states, labels=labels)
