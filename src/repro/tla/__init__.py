"""A pure-Python, TLA+-style specification framework.

States are immutable assignments over a fixed schema; actions are guarded
functions with declared reads/writes; modules group actions; compositions
of modules form checkable specifications.  See DESIGN.md section 3.
"""

from repro.tla.values import (
    Rec,
    Txn,
    Zxid,
    ZXID_ZERO,
    comparable,
    is_prefix,
    last_zxid,
    seq,
    seq_append,
    seq_concat,
    seq_head,
    seq_tail,
    updated,
)
from repro.tla.state import Schema, State
from repro.tla.action import Action, ActionInstance, ActionLabel, action
from repro.tla.module import (
    Module,
    interaction_variables,
    preserved_variables,
)
from repro.tla.spec import Invariant, Specification
from repro.tla.composition import (
    CompositionError,
    check_interaction_preservation,
    compose,
    traces_equivalent_for,
)

__all__ = [
    "Action",
    "ActionInstance",
    "ActionLabel",
    "CompositionError",
    "Invariant",
    "Module",
    "Rec",
    "Schema",
    "Specification",
    "State",
    "Txn",
    "Zxid",
    "ZXID_ZERO",
    "action",
    "check_interaction_preservation",
    "comparable",
    "compose",
    "interaction_variables",
    "is_prefix",
    "last_zxid",
    "preserved_variables",
    "seq",
    "seq_append",
    "seq_concat",
    "seq_head",
    "seq_tail",
    "traces_equivalent_for",
    "updated",
]
