"""Specifications: Init /\\ [][Next]_vars plus invariants.

A :class:`Specification` bundles:

- a :class:`~repro.tla.state.Schema` of variables,
- an initial-states function (TLA+ ``Init``; may yield several states),
- the modules whose actions, disjoined, form ``Next``,
- the invariants to check (protocol-level and code-level, Table 2).

``Next`` is the nondeterministic disjunction of every action instance of
every module: in each step any enabled action with any parameter binding
may fire (Figure 7 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.tla.action import Action, ActionInstance, ActionLabel, function_location
from repro.tla.module import Module
from repro.tla.state import Schema, State


@dataclass(frozen=True)
class Invariant:
    """A named state predicate checked on every reachable state.

    ``ident`` is the paper's invariant id (e.g. ``"I-8"``); ``instance``
    distinguishes instances within a family (e.g. the four I-11 bad-state
    instances).

    ``reads`` optionally declares the state variables the predicate
    depends on (its dependency variables, mirroring
    :class:`~repro.tla.action.Action` reads).  When declared, the
    exploration engine memoizes verdicts per projection of the state
    onto those variables; an empty set means "unknown" and the predicate
    is evaluated on every state.
    """

    ident: str
    name: str
    predicate: Callable[[Any, State], bool]
    instance: str = ""
    source: str = "protocol"  # "protocol" or "code"
    reads: frozenset = frozenset()

    def holds(self, config: Any, state: State) -> bool:
        return bool(self.predicate(config, state))

    def source_location(self) -> Optional[Tuple[str, int]]:
        """``(filename, line)`` of the predicate, or ``None``.

        Analysis-friendly metadata for the static spec analyzer
        (``python -m repro lint``), mirroring
        :meth:`repro.tla.action.Action.source_location`.
        """
        return function_location(self.predicate)

    @property
    def full_name(self) -> str:
        if self.instance:
            return f"{self.ident}/{self.instance}"
        return self.ident


class Specification:
    """A complete checkable specification."""

    # Set lazily by repro.checker.engine: the shared default compiled
    # core (kernels included) and the cached static-analyzer trust
    # verdict for ``--compile auto``.
    _compiled_core: Any
    _kernel_trusted: Optional[bool]

    def __init__(
        self,
        name: str,
        schema: Schema,
        init: Callable[[Any], Iterable[State]],
        modules: Sequence[Module],
        invariants: Sequence[Invariant],
        config: Any,
        constraint: Optional[Callable[[Any, State], bool]] = None,
    ):
        self.name = name
        self.schema = schema
        self.init = init
        self.modules: List[Module] = list(modules)
        self.invariants: List[Invariant] = list(invariants)
        self.config = config
        # A state constraint (TLC CONSTRAINT): successors of states where it
        # fails are not explored.  Used to bound the model (txn budgets etc).
        self.constraint = constraint
        self._instances: Optional[List[ActionInstance]] = None
        self._by_label: Optional[Dict[ActionLabel, ActionInstance]] = None
        self._by_name_args: Optional[Dict[Tuple, ActionInstance]] = None

    def __repr__(self) -> str:
        return (
            f"Specification({self.name}, modules="
            f"{[m.name for m in self.modules]})"
        )

    @property
    def actions(self) -> List[Action]:
        return [act for module in self.modules for act in module.actions]

    def action_instances(self) -> List[ActionInstance]:
        """All (action, binding) pairs, enumerated once per configuration."""
        if self._instances is None:
            instances: List[ActionInstance] = []
            for module in self.modules:
                for act in module.actions:
                    for binding in act.bindings(self.config):
                        instances.append(ActionInstance(act, binding))
            self._instances = instances
        return self._instances

    def instance_for(self, label: ActionLabel) -> ActionInstance:
        """Look up the instance for a trace label (used for replay)."""
        if self._by_label is None:
            self._by_label = {inst.label: inst for inst in self.action_instances()}
        return self._by_label[label]

    def instance_named(
        self, name: str, args: Optional[Dict[str, Any]] = None
    ) -> Optional[ActionInstance]:
        """Look up an instance by action name and argument dict.

        The ``(name, frozenset(args))`` index is built once per
        specification, so scripted drivers (scenario prefixes, fault
        schedules) stay O(1) per applied step instead of scanning every
        instance."""
        if self._by_name_args is None:
            self._by_name_args = {
                (inst.label.name, frozenset(inst.label.binding)): inst
                for inst in self.action_instances()
            }
        return self._by_name_args.get((name, frozenset((args or {}).items())))

    def initial_states(self) -> List[State]:
        return list(self.init(self.config))

    def successors(self, state: State) -> Iterator[Tuple[ActionLabel, State]]:
        """All (label, next-state) pairs enabled in ``state``."""
        config = self.config
        for inst in self.action_instances():
            nxt = inst.apply(config, state)
            if nxt is not None and nxt.values != state.values:
                yield inst.label, nxt

    def enabled_labels(self, state: State) -> List[ActionLabel]:
        return [label for label, _ in self.successors(state)]

    def within_constraint(self, state: State) -> bool:
        if self.constraint is None:
            return True
        return bool(self.constraint(self.config, state))

    def violated_invariants(self, state: State) -> List[Invariant]:
        return [
            inv for inv in self.invariants if not inv.holds(self.config, state)
        ]

    def replay(self, labels: Iterable[ActionLabel], initial: State) -> List[State]:
        """Deterministically re-execute a trace of labels from an initial
        state, returning the full state sequence (initial included)."""
        states = [initial]
        current = initial
        for label in labels:
            inst = self.instance_for(label)
            nxt = inst.apply(self.config, current)
            if nxt is None:
                raise ValueError(
                    f"replay failed: {label} not enabled at step {len(states) - 1}"
                )
            states.append(nxt)
            current = nxt
        return states
