"""Immutable states over a fixed variable schema.

A TLA+ state is an assignment to the specification's variables.  For
explicit-state checking in Python we want states to be small, hashable and
fast to copy, so a :class:`State` stores its values in a tuple ordered by a
shared :class:`Schema`.  Functional update (:meth:`State.set`) copies the
tuple; structural sharing of the (immutable) values keeps that cheap.
"""

from __future__ import annotations

import weakref
from typing import Any, Dict, Iterator, Mapping, NamedTuple, Optional, Tuple


class Slot(NamedTuple):
    """Stable metadata of one schema slot (a variable's tuple position).

    Slots are the unit the compiled successor kernels are generated
    against: a kernel addresses variables by ``index`` (a direct tuple
    subscript) and only uses ``name`` for diagnostics, so the emitted
    code stays valid for exactly as long as the schema object itself.
    """

    index: int
    name: str


class Schema:
    """An ordered, immutable list of variable names shared by states.

    Schemas are interned by name tuple: ``Schema(names)`` returns the
    same object for the same names, so the identity comparison in
    :meth:`State.__eq__` keeps working for states rebuilt in another
    process (the parallel checker) or restored from a pickle.

    The intern table holds its entries *weakly*: a schema stays interned
    for exactly as long as something (a state, a spec) still references
    it.  Long-lived campaign processes compose many throwaway specs, and
    a strong table would keep every schema those specs ever built alive
    for the life of the process.
    """

    __slots__ = ("names", "_index", "slots", "__weakref__")

    _interned: "weakref.WeakValueDictionary[Tuple[str, ...], Schema]" = (
        weakref.WeakValueDictionary()
    )

    def __new__(cls, names: Tuple[str, ...]):
        key = tuple(names)
        cached = cls._interned.get(key)
        if cached is not None and type(cached) is cls:
            return cached
        instance = super().__new__(cls)
        if cls is Schema:
            cls._interned[key] = instance
        return instance

    def __init__(self, names: Tuple[str, ...]):
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate variable names in schema: {names}")
        self.names: Tuple[str, ...] = tuple(names)
        self._index: Dict[str, int] = {name: i for i, name in enumerate(self.names)}
        self.slots: Tuple[Slot, ...] = tuple(
            Slot(i, name) for i, name in enumerate(self.names)
        )

    def __reduce__(self):
        return (Schema, (self.names,))

    def index(self, name: str) -> int:
        return self._index[name]

    def positions(self, names) -> Tuple[int, ...]:
        """Sorted slot indices of a set of variable names.

        This is the canonical projection order shared by the outcome/guard
        memo keys and the compiled kernels, so both address the same
        ``(values[i], values[j], ...)`` tuples.
        """
        index = self._index
        return tuple(sorted(index[name] for name in names))

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __len__(self) -> int:
        return len(self.names)

    def __repr__(self) -> str:
        return f"Schema({', '.join(self.names)})"


class State(Mapping):
    """An immutable assignment of values to the variables of a schema.

    Values must be hashable (tuples, ints, strings, :class:`Rec`, ...).
    States hash and compare by value, so they can be used directly as
    fingerprints in the checker's visited set.
    """

    __slots__ = ("schema", "values", "_hash")

    def __init__(self, schema: Schema, values: Tuple[Any, ...]):
        if len(values) != len(schema):
            raise ValueError(
                f"schema has {len(schema)} variables but got {len(values)} values"
            )
        object.__setattr__(self, "schema", schema)
        object.__setattr__(self, "values", values)
        # The hash is computed lazily: the engine fingerprints states
        # instead of dict-keying them, so most successor states are
        # never hashed at all.
        object.__setattr__(self, "_hash", None)

    @classmethod
    def make(cls, schema: Schema, **assignments: Any) -> "State":
        """Build a state by keyword; every schema variable must be given."""
        missing = [name for name in schema.names if name not in assignments]
        if missing:
            raise ValueError(f"missing variables: {missing}")
        extra = [name for name in assignments if name not in schema]
        if extra:
            raise ValueError(f"unknown variables: {extra}")
        return cls(schema, tuple(assignments[name] for name in schema.names))

    def __getitem__(self, name: str) -> Any:
        # Inlined self.schema.index(name): this accessor dominates the
        # checker's hot path (millions of guard evaluations per run).
        return self.values[self.schema._index[name]]

    def __getattr__(self, name: str) -> Any:
        try:
            return self.values[self.schema._index[name]]
        except KeyError:
            raise AttributeError(name)

    def __setattr__(self, name: str, value: Any):
        raise TypeError("State is immutable; use .set()")

    def __iter__(self) -> Iterator[str]:
        return iter(self.schema.names)

    def __len__(self) -> int:
        return len(self.schema)

    def __hash__(self) -> int:
        digest = self._hash
        if digest is None:
            digest = hash(self.values)
            object.__setattr__(self, "_hash", digest)
        return digest

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, State):
            return self.values == other.values and self.schema is other.schema
        return NotImplemented

    def __reduce__(self):
        # Default pickling would setattr through the immutability guard;
        # rebuild through the constructor (schemas are interned, so the
        # restored state compares equal to the original).
        return (State, (self.schema, self.values))

    def set(self, **updates: Any) -> "State":
        """Functional update: a new state with some variables replaced."""
        values = list(self.values)
        index = self.schema._index
        for name, value in updates.items():
            values[index[name]] = value
        return State(self.schema, tuple(values))

    def set_many(
        self, updates: Mapping[str, Any], fingerprinter: Optional[Any] = None
    ):
        """Functional update from a mapping, optionally with a
        fingerprint delta.

        Without ``fingerprinter`` this is ``self.set(**updates)`` minus
        the kwargs repacking.  With a schema-bound
        :class:`~repro.checker.fingerprint.IncrementalFingerprinter` it
        returns ``(state, fp_delta)`` where ``fp_delta`` is the XOR mask
        over the *changed* variables: the successor's fingerprint is
        ``parent_fp ^ fp_delta``, so callers never re-fingerprint the
        whole state.
        """
        values = list(self.values)
        index = self.schema._index
        for name, value in updates.items():
            values[index[name]] = value
        nxt = State(self.schema, tuple(values))
        if fingerprinter is None:
            return nxt
        return nxt, fingerprinter.delta(self.values, updates)

    def project(self, variables) -> Tuple[Any, ...]:
        """Project the state onto a set of variables (Appendix B: s|M).

        Returns a canonical tuple of the values of ``variables`` in schema
        order, so projected states can be compared and hashed.
        """
        return tuple(
            self.values[i]
            for i, name in enumerate(self.schema.names)
            if name in variables
        )

    def diff(self, other: "State") -> Dict[str, Tuple[Any, Any]]:
        """Variables whose values differ between two states (for debugging
        and for conformance-discrepancy reports)."""
        out: Dict[str, Tuple[Any, Any]] = {}
        for i, name in enumerate(self.schema.names):
            if self.values[i] != other.values[i]:
                out[name] = (self.values[i], other.values[i])
        return out

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{name}={value!r}" for name, value in zip(self.schema.names, self.values)
        )
        return f"State({inner})"
