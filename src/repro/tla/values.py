"""Immutable value helpers used by specifications.

TLA+ values are immutable; the checker fingerprints whole states, so every
value stored in a :class:`repro.tla.state.State` must be hashable.  This
module provides the small vocabulary of values the ZooKeeper and Zab
specifications use:

- :class:`Rec` -- an immutable record with attribute access (the analogue
  of a TLA+ record ``[field |-> value]``).
- :class:`Zxid` -- a ZooKeeper transaction id ``(epoch, counter)`` with the
  total order used by the protocol.
- :class:`Txn` -- a transaction: a zxid plus an opaque value.
- sequence helpers mirroring the TLA+ ``Sequences`` module
  (:func:`seq_append`, :func:`seq_tail`, :func:`is_prefix`, ...).
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, NamedTuple, Tuple


class Rec(Mapping):
    """An immutable, hashable record with attribute access.

    >>> m = Rec(mtype="ACK", zxid=(1, 2))
    >>> m.mtype
    'ACK'
    >>> m.replace(mtype="COMMIT").mtype
    'COMMIT'
    """

    __slots__ = ("_items", "_hash")

    def __init__(self, **fields: Any):
        object.__setattr__(self, "_items", tuple(sorted(fields.items())))
        object.__setattr__(self, "_hash", hash(self._items))

    def __getattr__(self, name: str) -> Any:
        if name.startswith("_"):
            # never resolve dunder/private probes through the fields
            # (deepcopy and pickle probe for __deepcopy__, __getstate__
            # and friends before __init__ has run on reconstruction)
            raise AttributeError(name)
        for key, value in object.__getattribute__(self, "_items"):
            if key == name:
                return value
        raise AttributeError(name)

    def __copy__(self) -> "Rec":
        return self  # immutable

    def __deepcopy__(self, memo) -> "Rec":
        return self  # immutable: fields are themselves immutable values

    def __getitem__(self, name: str) -> Any:
        try:
            return self.__getattr__(name)
        except AttributeError:
            raise KeyError(name)

    def __setattr__(self, name: str, value: Any):
        raise TypeError("Rec is immutable")

    def __iter__(self):
        return iter(key for key, _ in self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, Rec):
            return self._items == other._items
        return NotImplemented

    def __repr__(self) -> str:
        inner = ", ".join(f"{key}={value!r}" for key, value in self._items)
        return f"Rec({inner})"

    def __reduce__(self):
        # Default pickling would setattr on the reconstructed instance,
        # which the immutability guard rejects; rebuild from the item
        # tuple instead (the parallel checker ships Rec-bearing value
        # tuples between worker processes).
        return (_rec_from_items, (self._items,))

    def replace(self, **updates: Any) -> "Rec":
        """Return a copy of this record with some fields replaced."""
        fields = dict(self._items)
        fields.update(updates)
        return Rec(**fields)

    def fields(self) -> Tuple[str, ...]:
        return tuple(key for key, _ in self._items)


def _rec_from_items(items: Tuple[Tuple[str, Any], ...]) -> "Rec":
    """Rebuild a Rec from its sorted item tuple (pickle support)."""
    rec = object.__new__(Rec)
    object.__setattr__(rec, "_items", items)
    object.__setattr__(rec, "_hash", hash(items))
    return rec


class Zxid(NamedTuple):
    """A ZooKeeper transaction id, totally ordered by (epoch, counter)."""

    epoch: int
    counter: int

    def __repr__(self) -> str:
        return f"<{self.epoch},{self.counter}>"


ZXID_ZERO = Zxid(0, 0)


class Txn(NamedTuple):
    """A transaction: a zxid and an opaque payload value."""

    zxid: Zxid
    value: int

    def __repr__(self) -> str:
        return f"Txn({self.zxid!r},v={self.value})"


# --- sequence helpers (TLA+ Sequences module analogues) -------------------

Seq = Tuple  # a TLA+ sequence is just a Python tuple


def seq(*items: Any) -> Tuple:
    """Build a sequence: ``seq(1, 2, 3) == (1, 2, 3)``."""
    return tuple(items)


def seq_append(sequence: Tuple, item: Any) -> Tuple:
    """``Append(seq, item)``."""
    return sequence + (item,)

def seq_concat(left: Tuple, right: Iterable) -> Tuple:
    """``left \\o right``."""
    return left + tuple(right)


def seq_head(sequence: Tuple) -> Any:
    """``Head(seq)``; raises IndexError on the empty sequence."""
    return sequence[0]


def seq_tail(sequence: Tuple) -> Tuple:
    """``Tail(seq)``."""
    return sequence[1:]


def is_prefix(shorter: Tuple, longer: Tuple) -> bool:
    """The prefix relation on sequences (the paper's ⊑)."""
    return len(shorter) <= len(longer) and longer[: len(shorter)] == shorter


def comparable(left: Tuple, right: Tuple) -> bool:
    """True iff one sequence is a prefix of the other."""
    return is_prefix(left, right) or is_prefix(right, left)


def last_zxid(history: Tuple[Txn, ...]) -> Zxid:
    """``LastZxidOfHistory``: zxid of the last txn, or <0,0> when empty."""
    if not history:
        return ZXID_ZERO
    return history[-1].zxid


def updated(base: Tuple, index: int, value: Any) -> Tuple:
    """Functional update of one slot of a tuple (TLA+ ``EXCEPT ![i]``)."""
    return base[:index] + (value,) + base[index + 1 :]
