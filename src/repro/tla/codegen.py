"""Compiled successor kernels: per-action-group code generated at compose time.

The interpreted expand path (``repro.checker.engine.CompiledSpec.expand``)
re-walks the generic spec machinery for every state: per-group memo key
construction through ``operator.itemgetter``, per-instance guard/update
closure calls, per-change digest lookups, per-replay change filtering.
This module lowers the *whole expansion* into one specialized Python
function emitted at compose time: for every action group, the guard
projection, update binding, dependency-closure memo key and incremental
fingerprint delta (``fp ^ H(var, old) ^ H(var, new)``) are fused into
straight-line code that maps over a frontier batch.

What makes the compiled memo entry fast is a static observation, not a
runtime trick: changed slots are a subset of an action's declared
``writes``, ``writes`` are a subset of its dependency closure, and the
closure projection *is* the memo key.  So, per memo entry, the changed
slots, their old values, their new values and the complete fingerprint
delta are all constants.  A kernel memo entry therefore stores, per
enabled change-ful instance, ``(idx, ((slot, new_value), ...), fp_delta)``
and a hit replays a successor with a single XOR plus a couple of list
writes — no guard call, no update call, no digest lookups, no change
filtering.  For the same reason the kernel does not thread per-slot digest
tuples through frontier entries at all: digests are only touched on a
memo miss, where the delta is folded once and for all.

The emitted function is *entry-major*: one loop over the batch, with every
group's memo lookup, miss evaluation and replay unrolled inline, followed
immediately by that entry's candidate finalization.  Compared to a
group-major sweep this loads the inherited disabled mask and the raw
successor list into locals exactly once per state, and it preserves the
sequential path's memo-write timing (guard verdicts are written back at
the end of each entry, so the next entry can hit them).  Batches also
exploit frontier locality: BFS frontiers are parent-major, so consecutive
entries are siblings whose projections agree for every group their
generating actions did not write.  Each group keeps its last
``(key, entry)`` pair in locals and skips the memo lookup when the key
repeats — a tuple equality check over identical value objects is several
times cheaper than hashing the key again.

Trust contract: emitting a kernel assumes the declarations are truthful.
``repro lint`` (PR 8) is the compile precondition — in ``--compile auto``
a spec with blocking D/P findings stays on the interpreted path, and
``--debug-deps`` cross-checks every kernel outcome against a fresh
interpreted evaluation.

``CODEGEN_VERSION`` tags every artifact derived from the emitter (most
importantly the ``remix.spec_cache`` on-disk digest): bump it whenever the
emitted code's shape or semantics change, so stale cached artifacts are
orphaned instead of replayed.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Tuple

from repro.tla.state import State

# Version tag of the kernel emitter.  Mixed into the spec_cache on-disk
# digest (upgrading the emitter must orphan stale artifacts) and reported
# by ``CompiledSpec.memo_stats``.
CODEGEN_VERSION = 5


class _Sentinel:
    """A key that never equals a real projection key (last-key caches)."""

    __slots__ = ()

    def __eq__(self, other: Any) -> bool:
        return other is self

    def __hash__(self) -> int:  # pragma: no cover - never hashed
        return 0


_SENTINEL = _Sentinel()


def _key_expr(slots: Tuple[int, ...], var: str = "v") -> str:
    """Memo-key expression for a projection: direct tuple subscripts.

    Single-slot projections use the bare value (cheaper than a 1-tuple).
    This is *the same* key format ``operator.itemgetter`` produces for the
    interpreted path, which is what lets the fused classification below
    share the engine's mask/invariant/constraint memo dicts instead of
    keeping kernel-private shadows.
    """
    if len(slots) == 1:
        return f"{var}[{slots[0]}]"
    return "(" + ", ".join(f"{var}[{s}]" for s in slots) + ")"


def make_outcome_compiler(core: Any) -> Callable:
    """Build the shared miss-path helper that compiles one applier outcome
    into a kernel memo entry.

    Returns ``(idx, ((slot, new_value), ...), fp_delta)`` for a change-ful
    outcome, or ``None`` when every update is a no-op (matching the
    interpreted path's self-loop suppression).  The fingerprint delta folds
    both the old- and new-value digests in here, at miss time — replays
    never touch the digest cache again.
    """
    schema_index = core.schema._index
    fingerprinter = core.fingerprinter
    slot_digest = fingerprinter.slot_digest
    # Pre-touch every per-slot digest cache so ``caches`` is a stable list
    # and the hot path can index it directly instead of going through the
    # guarded ``slot_digest`` method for what is almost always a cache hit.
    for i in range(len(core.schema.names)):
        fingerprinter._cache_for(i)
    caches = fingerprinter._caches

    def compile_outcome(idx: int, updates: Dict[str, Any], parent_values: Tuple):
        changes = []
        delta = 0
        for name, value in updates.items():
            slot = schema_index[name]
            old = parent_values[slot]
            if old is value or old == value:
                continue
            cache = caches[slot]
            od = cache.get(old)
            if od is None:
                od = slot_digest(slot, old)
            nd = cache.get(value)
            if nd is None:
                nd = slot_digest(slot, value)
            delta ^= od ^ nd
            changes.append((slot, value))
        if not changes:
            return None
        return (idx, tuple(changes), delta)

    return compile_outcome


def emit_kernel(core: Any) -> Tuple[str, Callable]:
    """Emit the batch expansion kernel for a ``CompiledSpec``.

    Returns ``(source, expand_batch)`` where ``expand_batch(fps, vals,
    knowns, seen, dedupe, classify)`` expands a whole frontier batch and
    returns ``[(entry_fp, transitions, candidates), ...]`` with candidates
    shaped exactly like the interpreted path's, except that the successor
    is a raw values tuple instead of a ``State`` (states are materialized
    lazily by the caller, only for traces and violations) and the digest
    component is an empty tuple (kernel fingerprints replay from memoized
    constants; see module docstring).

    Enumeration is bitwise-identical to the interpreted path: entries are
    processed in order, per-entry candidates are rebuilt in sorted
    instance order, and the dedupe set is only touched during per-entry
    finalization — the same order a sequential interpreted expansion
    produces.
    """
    schema = core.schema
    names = schema.names
    env: Dict[str, Any] = {
        "_State": State,
        "_schema": schema,
        "_config": core.config,
        "_classify_values": core.classify_values,
        "_naffects": [~bits for bits in core.affects],
        "_mk": make_outcome_compiler(core),
        "_S": _SENTINEL,
    }
    for i, applier in enumerate(core.appliers):
        env[f"_a_{i}"] = applier
    for g, memo in enumerate(core.guard_memos):
        env[f"_gmemo_{g}"] = memo
        env[f"_gstats_{g}"] = core.guard_stats[g]
    for g, memo in enumerate(core.kernel_outcome_memos):
        env[f"_omemo_{g}"] = memo
        env[f"_ostats_{g}"] = core.outcome_stats[g]

    # Classification fuses into the candidate loop only when every verdict
    # is memoizable by a declared-reads projection: a mask/constraint with
    # ``fn.reads`` (or none at all) and no ungrouped invariants.  The fused
    # sweep shares ``classify_values``'s memo dicts (identical key format),
    # so verdicts stay coherent across compiled and interpreted call sites.
    fused = (
        (core.mask is None or core.mask_key is not None)
        and (core.constraint is None or core.constraint_key is not None)
        and not core.inv_ungrouped
    )
    if fused:
        env["_vmemo"] = {}
        for g, memo in enumerate(core.inv_memos):
            env[f"_imemo_{g}"] = memo
        for _kf, group_members in core.inv_groups:
            for i in group_members:
                env[f"_inv_{i}"] = core.invariant_fns[i]
        if core.mask is not None:
            env["_mask_fn"] = core.mask
            env["_mmemo"] = core.mask_memo
        if core.constraint is not None:
            env["_cons_fn"] = core.constraint
            env["_cmemo"] = core.constraint_memo

    src: List[str] = []
    w = src.append
    w(f"# repro kernel v{CODEGEN_VERSION} for spec {core.spec.name!r}")
    w("def _expand_batch(fps, vals, knowns, seen, dedupe, classify):")
    w("    config = _config")
    w("    mk = _mk")
    w("    classify_values = _classify_values")
    w("    naffects = _naffects")
    # Every applier an outcome group or the eager tier can call, hoisted
    # into locals once per batch (global loads are dict lookups per call).
    used = sorted(
        {idx for _kf, members in core.outcome_groups for idx in members}
        | set(core.eager)
    )
    for idx in used:
        w(f"    a{idx} = _a_{idx}")
    n_guards = len(core.guard_groups)
    for g in range(n_guards):
        w(f"    gmemo{g} = _gmemo_{g}")
        w(f"    gget{g} = gmemo{g}.get")
        w(f"    glk{g} = _S")
        w(f"    glh{g} = None")
        w(f"    gp{g} = False")
        w(f"    gm{g} = 0")
    n_outcomes = len(core.outcome_groups)
    for g in range(n_outcomes):
        w(f"    omemo{g} = _omemo_{g}")
        w(f"    oget{g} = omemo{g}.get")
        w(f"    olk{g} = _S")
        w(f"    ole{g} = None")
        w(f"    om{g} = 0")
    if fused:
        w("    vmemo = _vmemo")
        w("    vget = vmemo.get")
        for g in range(len(core.inv_groups)):
            w(f"    imemo{g} = _imemo_{g}")
            w(f"    iget{g} = imemo{g}.get")
            w(f"    ilk{g} = _S")
            w(f"    ilh{g} = 0")
        for _kf, group_members in core.inv_groups:
            for i in group_members:
                w(f"    inv{i} = _inv_{i}")
        if core.mask is not None:
            w("    maskf = _mask_fn")
            w("    mmemo = _mmemo")
            w("    mget = mmemo.get")
            w("    mlk = _S")
            w("    mlh = False")
        if core.constraint is not None:
            w("    consf = _cons_fn")
            w("    cmemo = _cmemo")
            w("    cget = cmemo.get")
            w("    clk = _S")
            w("    clh = True")
    w("    results = []")
    w("    res_append = results.append")
    w("    seen_add = seen.add")
    w("    for entry_fp, v, d in zip(fps, vals, knowns):")
    w("        st = None")
    w("        raw = []")

    for g, (_key_fn, bits) in enumerate(core.guard_groups):
        slots = core.guard_group_slots[g]
        w(f"        # guard group {g}: reads ({', '.join(names[s] for s in slots)})")
        w(f"        k = {_key_expr(slots)}")
        w(f"        if k == glk{g}:")
        w(f"            h = glh{g}")
        w("        else:")
        w(f"            h = gget{g}(k)")
        w(f"            glk{g} = k")
        w(f"            glh{g} = h")
        w("        if h is None:")
        w(f"            gm{g} += 1")
        # The verdict for the whole read-set group is deferred: the
        # outcome/eager blocks below compute the disabled bits, the
        # writeback at the end of this entry stores them masked to this
        # group's members -- the same timing the sequential path has.
        w(f"            gp{g} = True")
        w("        else:")
        w("            d |= h")

    for g, (_key_fn, members) in enumerate(core.outcome_groups):
        slots = core.outcome_group_slots[g]
        w(f"        # outcome group {g}: closure ({', '.join(names[s] for s in slots)})")
        w(f"        k = {_key_expr(slots)}")
        w(f"        if k == olk{g}:")
        w(f"            e = ole{g}")
        w("        else:")
        w(f"            e = oget{g}(k)")
        w("            if e is not None:")
        w(f"                olk{g} = k")
        w(f"                ole{g} = e")
        w("        if e is not None:")
        w("            gd = e[0]")
        w("            if gd:")
        w("                d |= gd")
        w("            en = e[1]")
        w("            if en:")
        w("                raw.extend(en)")
        w("        else:")
        w(f"            om{g} += 1")
        w("            if st is None:")
        w("                st = _State(_schema, v)")
        w("            gd = 0")
        w("            en = []")
        for idx in members:
            bit = 1 << idx
            w(f"            if d & {bit}:")
            w(f"                gd |= {bit}")
            w("            else:")
            w(f"                u = a{idx}(config, st)")
            w("                if u is None:")
            w(f"                    d |= {bit}")
            w(f"                    gd |= {bit}")
            w("                else:")
            w(f"                    item = mk({idx}, u, v)")
            w("                    if item is not None:")
            w("                        en.append(item)")
            w("                        raw.append(item)")
        w(f"            if len(omemo{g}) >= {core.OUTCOME_MEMO_LIMIT}:")
        w(f"                omemo{g}.clear()")
        w("            e = (gd, tuple(en))")
        w(f"            omemo{g}[k] = e")
        w(f"            olk{g} = k")
        w(f"            ole{g} = e")

    if core.eager:
        w("        # never-memoized instances: unknown closures + demoted groups")
        for idx in core.eager:
            bit = 1 << idx
            w(f"        if not d & {bit}:")
            w("            if st is None:")
            w("                st = _State(_schema, v)")
            w(f"            u = a{idx}(config, st)")
            w("            if u is None:")
            w(f"                d |= {bit}")
            w("            else:")
            w(f"                item = mk({idx}, u, v)")
            w("                if item is not None:")
            w("                    raw.append(item)")

    for g, (_key_fn, bits) in enumerate(core.guard_groups):
        w(f"        if gp{g}:")
        w(f"            gp{g} = False")
        w(f"            h = d & {bits}")
        w(f"            if len(gmemo{g}) >= {core.GUARD_MEMO_LIMIT}:")
        w(f"                gmemo{g}.clear()")
        # glk{g} still holds this entry's key: the miss block above was the
        # last writer.  Refreshing glh{g} lets the next entry reuse the
        # verdict without a lookup.
        w(f"            gmemo{g}[glk{g}] = h")
        w(f"            glh{g} = h")

    w("        # finalize this entry: sorted instance order, dedupe, classify")
    w("        if len(raw) > 1:")
    # Plain sort: instance indices are unique, so the tuple comparison
    # never reaches the (incomparable) change payloads.
    w("            raw.sort()")
    w("        cands = []")
    w("        cands_append = cands.append")
    w("        for idx, changes, delta in raw:")
    w("            fp = entry_fp ^ delta")
    w("            if dedupe:")
    w("                if fp in seen:")
    w("                    continue")
    w("                seen_add(fp)")
    w("            sv = list(v)")
    w("            for slot, value in changes:")
    w("                sv[slot] = value")
    w("            svt = tuple(sv)")
    w("            if classify:")
    if fused:
        # Inline classification: mask, invariant groups and constraint
        # verdicts all resolve through declared-reads memo projections,
        # in the exact evaluation order of ``classify_values`` so shared
        # memo state and results are bitwise-identical.
        w("                cst = None")
        if core.mask is not None:
            w(f"                mkk = {_key_expr(core.mask_slots, 'svt')}")
            w("                if mkk == mlk:")
            w("                    mh = mlh")
            w("                else:")
            w("                    mh = mget(mkk)")
            w("                    if mh is None:")
            w("                        cst = _State(_schema, svt)")
            w("                        mh = True if maskf(cst) else False")
            w(f"                        if len(mmemo) >= {core.GUARD_MEMO_LIMIT}:")
            w("                            mmemo.clear()")
            w("                        mmemo[mkk] = mh")
            w("                    mlk = mkk")
            w("                    mlh = mh")
            w("                if mh:")
            w("                    cands_append(")
            w("                        (idx, svt, fp, d & naffects[idx],")
            w("                         (), True, True, ())")
            w("                    )")
            w("                    continue")
        w("                vb = 0")
        for g, (_kf, group_members) in enumerate(core.inv_groups):
            slots = core.inv_group_slots[g]
            w(f"                ikk = {_key_expr(slots, 'svt')}")
            w(f"                if ikk == ilk{g}:")
            w(f"                    ih = ilh{g}")
            w("                else:")
            w(f"                    ih = iget{g}(ikk)")
            w("                    if ih is None:")
            w("                        if cst is None:")
            w("                            cst = _State(_schema, svt)")
            w("                        ih = 0")
            for i in group_members:
                w(f"                        if not inv{i}(config, cst):")
                w(f"                            ih |= {1 << i}")
            w(f"                        if len(imemo{g}) >= {core.GUARD_MEMO_LIMIT}:")
            w(f"                            imemo{g}.clear()")
            w(f"                        imemo{g}[ikk] = ih")
            w(f"                    ilk{g} = ikk")
            w(f"                    ilh{g} = ih")
        if len(core.inv_groups) == 1:
            w("                vb = ih")
        else:
            for g in range(len(core.inv_groups)):
                w(f"                vb |= ilh{g}")
        n_inv = len(core.invariant_fns)
        w("                if vb:")
        w("                    viols = vget(vb)")
        w("                    if viols is None:")
        w("                        viols = tuple(")
        w(f"                            i for i in range({n_inv}) if (vb >> i) & 1")
        w("                        )")
        w("                        vmemo[vb] = viols")
        w("                else:")
        w("                    viols = ()")
        if core.constraint is not None:
            w(f"                ckk = {_key_expr(core.constraint_slots, 'svt')}")
            w("                if ckk == clk:")
            w("                    ok = clh")
            w("                else:")
            w("                    ok = cget(ckk)")
            w("                    if ok is None:")
            w("                        if cst is None:")
            w("                            cst = _State(_schema, svt)")
            w("                        ok = True if consf(config, cst) else False")
            w(f"                        if len(cmemo) >= {core.GUARD_MEMO_LIMIT}:")
            w("                            cmemo.clear()")
            w("                        cmemo[ckk] = ok")
            w("                    clk = ckk")
            w("                    clh = ok")
            ok_expr = "ok"
        else:
            ok_expr = "True"
        w("                cands_append(")
        w("                    (idx, svt, fp, d & naffects[idx],")
        w(f"                     viols, False, {ok_expr}, ())")
        w("                )")
    else:
        w("                viols, masked, ok = classify_values(svt)")
        w("                cands_append(")
        w("                    (idx, svt, fp, d & naffects[idx], viols, masked, ok, ())")
        w("                )")
    w("            else:")
    w("                cands_append(")
    w("                    (idx, svt, fp, d & naffects[idx], (), False, True, ())")
    w("                )")
    w("        res_append((entry_fp, len(raw), cands))")

    for g in range(n_guards):
        w(f"    _gstats_{g}[0] += gm{g}")
    for g in range(n_outcomes):
        w(f"    _ostats_{g}[0] += om{g}")
    w("    return results")
    w("")

    source = "\n".join(src)
    code = compile(source, f"<repro-kernel:{core.spec.name}>", "exec")
    exec(code, env)
    return source, env["_expand_batch"]
