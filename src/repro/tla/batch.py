"""Array-backed frontier batches for the compiled successor kernels.

The exploration engine historically expanded one :class:`~repro.tla.state.State`
at a time.  The compiled kernels instead sweep a whole BFS round (or a DFS /
walk step of size one) in struct-of-arrays form: parallel columns of
fingerprints, value tuples, inherited known-disabled bitmasks and per-slot
digest tuples.  ``State`` objects are *not* part of a batch — kernels
materialize them lazily, only when an action guard or an invariant actually
needs attribute access (memo misses), or when a trace/violation has to be
reported.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Tuple

from repro.tla.state import Schema, State


class FrontierBatch:
    """A struct-of-arrays view over frontier entries.

    Columns (all parallel, one row per pending state):

    - ``fps``: 64-bit state fingerprints,
    - ``values``: raw ``State.values`` tuples,
    - ``knowns``: inherited known-disabled bitmasks (PR-5 ``affects``
      propagation),
    - ``digests``: per-slot fingerprint digest tuples.  Only the
      *interpreted* fallback consumes this column; emitted kernels fold
      digests into memoized fingerprint deltas at miss time and carry an
      empty tuple here (see ``repro.tla.codegen``).
    """

    __slots__ = ("fps", "values", "knowns", "digests")

    def __init__(
        self,
        fps: List[int],
        values: List[Tuple[Any, ...]],
        knowns: List[int],
        digests: List[Tuple[int, ...]],
    ):
        self.fps = fps
        self.values = values
        self.knowns = knowns
        self.digests = digests

    @classmethod
    def from_entries(cls, entries) -> "FrontierBatch":
        """Build a batch from ``(fp, payload, known, digests)`` frontier
        entries, where ``payload`` is either a ``State`` or its raw values
        tuple (round 0 carries initial ``State`` objects; later rounds ship
        bare value tuples straight out of the kernels)."""
        fps: List[int] = []
        values: List[Tuple[Any, ...]] = []
        knowns: List[int] = []
        digests: List[Tuple[int, ...]] = []
        for fp, payload, known, dg in entries:
            fps.append(fp)
            values.append(payload.values if isinstance(payload, State) else payload)
            knowns.append(known)
            digests.append(dg)
        return cls(fps, values, knowns, digests)

    @classmethod
    def single(
        cls, fp: int, values: Tuple[Any, ...], known: int, digests: Tuple[int, ...]
    ) -> "FrontierBatch":
        """A batch of one — DFS pops and random-walk steps reuse the batch
        kernels without building intermediate lists at every step."""
        return cls([fp], [values], [known], [digests])

    def state(self, i: int, schema: Schema) -> State:
        """Materialize row ``i`` as a full ``State`` (trace reporting)."""
        return State(schema, self.values[i])

    def entries(self) -> Iterator[Tuple[int, Tuple[Any, ...], int, Tuple[int, ...]]]:
        """Iterate rows back out as ``(fp, values, known, digests)``."""
        return zip(self.fps, self.values, self.knowns, self.digests)

    def __len__(self) -> int:
        return len(self.fps)

    def __repr__(self) -> str:
        return f"FrontierBatch(n={len(self.fps)})"
