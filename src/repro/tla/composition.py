"""Composition of multi-grained modules and interaction-preservation checks.

Two facilities, mirroring Section 3.2/3.3 and Appendix B of the paper:

1. :func:`check_interaction_preservation` -- a *static* check that a
   coarsened module only omits variables (and updates) outside
   ``I ∪ D_target``.  This is the rule the paper's authors apply by hand
   when writing coarse-grained specifications.

2. :func:`traces_equivalent_for` -- a *dynamic* validation of the
   Interaction Preservation Theorem on small configurations: enumerate the
   traces of the original specification ``S`` and the mixed specification
   ``S_i``, project them onto the target module, condense stuttering
   (Appendix B.3), and compare the reachable projected behaviours.
"""

from __future__ import annotations

from typing import FrozenSet, List, Sequence, Set, Tuple

from repro.tla.module import Module, preserved_variables
from repro.tla.spec import Specification
from repro.tla.state import State


class CompositionError(Exception):
    """Raised when a coarsening violates interaction preservation."""


def check_interaction_preservation(
    all_modules: Sequence[Module],
    original: Module,
    coarsened: Module,
    target: Module,
) -> FrozenSet[str]:
    """Check the two constraints of Appendix B.2 statically.

    (1) all dependency variables of the target module and all interaction
        variables remain (are still read/writable) after the coarsening;
    (2) updates of those variables are not dropped: every preserved
        variable written by the original module is still written by the
        coarsened module.

    Returns the preserved-variable set ``I ∪ D_target`` on success and
    raises :class:`CompositionError` otherwise.  (The equality of the
    *values* written is a semantic property, validated dynamically by
    :func:`traces_equivalent_for` and by conformance checking.)
    """
    preserved = preserved_variables(all_modules, target)

    dropped_writes = (original.writes() & preserved) - coarsened.writes()
    if dropped_writes:
        raise CompositionError(
            f"coarsening {original.name} -> {coarsened.name} drops updates of "
            f"preserved variables {sorted(dropped_writes)}"
        )

    new_writes = coarsened.writes() - original.writes()
    illegal_new = new_writes & preserved
    # Writing *new* preserved variables is allowed only if the original
    # module read them (a coarse action may summarize reads into writes),
    # otherwise the coarsened module interferes with the target.
    illegal_new -= original.reads()
    if illegal_new:
        raise CompositionError(
            f"coarsening {original.name} -> {coarsened.name} introduces writes "
            f"to preserved variables {sorted(illegal_new)} the original never "
            f"touched"
        )
    return preserved


def _project_trace(
    states: Sequence[State], variables: FrozenSet[str]
) -> Tuple[Tuple, ...]:
    """Project a state sequence onto ``variables`` and condense stuttering
    (Appendix B.3): consecutive equivalent states merge into one."""
    out: List[Tuple] = []
    for state in states:
        projected = state.project(variables)
        if not out or out[-1] != projected:
            out.append(projected)
    return tuple(out)


def reachable_projections(
    spec: Specification,
    variables: FrozenSet[str],
    max_depth: int,
) -> FrozenSet[Tuple[Tuple, ...]]:
    """Enumerate all condensed projected traces of ``spec`` up to a depth.

    Exponential; only for validating the theorem on toy specifications in
    tests.  Traces are explored as label sequences from each initial state
    and condensed before collection, and we return the *closed* set: every
    prefix of a collected trace is also collected, which makes comparison
    between specifications with different step counts meaningful.
    """
    results: Set[Tuple[Tuple, ...]] = set()

    def walk(state: State, projected: Tuple[Tuple, ...], depth: int):
        results.add(projected)
        if depth >= max_depth:
            return
        for _, nxt in spec.successors(state):
            if not spec.within_constraint(nxt):
                continue
            nxt_proj = nxt.project(variables)
            if projected and nxt_proj == projected[-1]:
                walk(nxt, projected, depth + 1)
            else:
                walk(nxt, projected + (nxt_proj,), depth + 1)

    for init in spec.initial_states():
        walk(init, (init.project(variables),), 0)
    return frozenset(results)


def traces_equivalent_for(
    full: Specification,
    mixed: Specification,
    target: Module,
    max_depth: int = 6,
) -> bool:
    """Dynamically validate  T_S ~M_i~ T_S_i  on small configurations.

    Compares the condensed, target-projected trace sets of the full and
    the mixed specification up to ``max_depth`` steps.
    """
    variables = preserved_variables(full.modules, target)
    left = reachable_projections(full, variables, max_depth)
    right = reachable_projections(mixed, variables, max_depth)
    return left == right


def compose(
    name: str,
    schema,
    init,
    modules: Sequence[Module],
    invariants,
    config,
    constraint=None,
) -> Specification:
    """Compose selected per-module specifications into one mixed-grained
    specification (Figure 7's disjunctive Next is implicit)."""
    seen: Set[str] = set()
    for module in modules:
        for act in module.actions:
            if act.name in seen:
                raise CompositionError(
                    f"action {act.name} appears in two composed modules"
                )
            seen.add(act.name)
    return Specification(
        name,
        schema,
        init,
        modules,
        invariants,
        config,
        constraint=constraint,
    )
