"""Modules and the dependency/interaction variable analysis.

Following the paper (Section 3.2 and Appendix B):

- a *module* is a set of actions (Definition 1);
- the *dependency variables* of a module are the variables appearing in
  enabling conditions of its actions, closed transitively over the
  variables its updates are computed from (Definition 2);
- the *interaction variables* of a specification are the dependency
  variables shared by two or more modules, closed under the update-source
  rules (Definition 3).

Coarsening a module is *interaction preserving* when only variables
outside ``I ∪ D_target`` (and updates touching only such variables) are
omitted.  :func:`interaction_variables` and
:meth:`Module.dependency_variables` give the machinery for checking that,
which :mod:`repro.tla.composition` uses.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence, Set

from repro.tla.action import Action


class Module:
    """A named set of actions (the paper's Definition 1)."""

    def __init__(self, name: str, actions: Sequence[Action]):
        names = [a.name for a in actions]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate action names in module {name}: {names}")
        self.name = name
        self.actions: List[Action] = list(actions)

    def __repr__(self) -> str:
        return f"Module({self.name}, {len(self.actions)} actions)"

    def __iter__(self):
        return iter(self.actions)

    def __len__(self) -> int:
        return len(self.actions)

    def action_names(self) -> List[str]:
        return [a.name for a in self.actions]

    def reads(self) -> FrozenSet[str]:
        """Union of the enabling-condition variables of all actions."""
        out: Set[str] = set()
        for act in self.actions:
            out |= act.reads
        return frozenset(out)

    def writes(self) -> FrozenSet[str]:
        out: Set[str] = set()
        for act in self.actions:
            out |= act.writes
        return frozenset(out)

    def dependency_variables(self) -> FrozenSet[str]:
        """Definition 2: enabling-condition variables, closed transitively
        over update sources of variables already in the set."""
        deps: Set[str] = set(self.reads())
        changed = True
        while changed:
            changed = False
            for act in self.actions:
                for var, sources in act.update_sources.items():
                    if var in deps and not sources <= deps:
                        deps |= sources
                        changed = True
        return frozenset(deps)


def interaction_variables(modules: Iterable[Module]) -> FrozenSet[str]:
    """Definition 3: the interaction variables of a set of modules.

    Rule 1 seeds the set with dependency variables shared by two modules;
    rules 2 and 3 close it under update sources, so that indirect flows
    (module A assigns y into x, x read by module B) are captured.
    """
    modules = list(modules)
    deps: Dict[str, FrozenSet[str]] = {
        m.name: m.dependency_variables() for m in modules
    }

    interaction: Set[str] = set()
    names = [m.name for m in modules]
    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            interaction |= deps[a] & deps[b]

    changed = True
    while changed:
        changed = False
        for module in modules:
            module_deps = deps[module.name]
            visible = interaction | module_deps
            for act in module.actions:
                for var, sources in act.update_sources.items():
                    # Rule 2: sources of an interaction variable's update.
                    # Rule 3: sources of an internal dependency variable's
                    # update.  Both pull the out-of-module sources in.
                    if var in interaction or var in module_deps:
                        extra = sources - visible
                        if extra:
                            interaction |= extra
                            visible |= extra
                            changed = True
    return frozenset(interaction)


def preserved_variables(modules: Iterable[Module], target: Module) -> FrozenSet[str]:
    """``I ∪ D_target``: the variables a coarsening must leave intact when
    ``target`` is the module under verification (Appendix B.2)."""
    return interaction_variables(modules) | target.dependency_variables()
