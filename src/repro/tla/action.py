"""Guarded actions: the TLA+ next-state building blocks.

A TLA+ action is a conjunction of enabling conditions and next-state
updates.  Here an :class:`Action` wraps a Python function

    fn(config, state, **params) -> dict | None

which returns ``None`` when the action is not enabled in ``state`` for the
given parameter binding, and otherwise a dict of variable updates (the
analogue of the primed assignments; unmentioned variables are UNCHANGED).

Parameter domains (the TLA+ ``\\E i \\in Server`` quantifiers) are declared
as functions of the model configuration so that one action definition can
be instantiated for any configuration.

Actions also declare the variables they *read* (their dependency
variables, Definition 2 of the paper's Appendix B) and *write*, which is
what the interaction-preservation analysis in :mod:`repro.tla.module`
consumes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, Mapping, Optional, Tuple

from repro.tla.state import State

ActionFn = Callable[..., Optional[Dict[str, Any]]]
DomainFn = Callable[[Any], Iterable[Any]]


def function_location(fn: Any) -> Optional[Tuple[str, int]]:
    """Best-effort ``(filename, first line)`` of a callable.

    Resolves through the code object, so it works for plain functions
    and lambdas alike; wrappers (e.g. the ``pairwise`` adapters) report
    the wrapper's own definition site -- the static analyzer in
    :mod:`repro.analysis` resolves through closures when it needs the
    wrapped function.  Returns ``None`` for callables without a code
    object (builtins, C extensions).
    """
    code = getattr(fn, "__code__", None)
    if code is None:
        return None
    return (code.co_filename, code.co_firstlineno)


@dataclass(frozen=True)
class ActionLabel:
    """A fully instantiated action occurrence: name plus parameter binding.

    Labels identify trace steps; they are what the conformance checker's
    action mapping (model action -> code action) is keyed on.
    """

    name: str
    binding: Tuple[Tuple[str, Any], ...] = ()

    def __str__(self) -> str:
        if not self.binding:
            return self.name
        args = ", ".join(f"{key}={value}" for key, value in self.binding)
        return f"{self.name}({args})"

    @property
    def args(self) -> Dict[str, Any]:
        return dict(self.binding)


class Action:
    """A named, parameterized guarded action.

    Parameters
    ----------
    name:
        The action name as it appears in the specification (and in traces).
    fn:
        ``fn(config, state, **params)`` returning an update dict or None.
    params:
        Mapping from parameter name to a domain function
        ``config -> iterable`` (evaluated once per configuration).
    reads:
        Names of the variables appearing in the enabling condition --
        the action's dependency variables (Appendix B, Definition 2).
    writes:
        Names of the variables this action may update.  Validated against
        the update dicts the function returns (and re-validated on every
        application by the engine's debug mode, since the engine hot path
        bypasses :meth:`apply`).
    update_sources:
        Optional mapping ``written_var -> set of vars its new value is
        computed from``, used by the transitive dependency/interaction
        analysis (Definition 2 rule 3 and Definition 3 rules 2-3).
    """

    __slots__ = ("name", "fn", "params", "reads", "writes", "update_sources")

    def __init__(
        self,
        name: str,
        fn: ActionFn,
        params: Optional[Mapping[str, DomainFn]] = None,
        reads: Iterable[str] = (),
        writes: Iterable[str] = (),
        update_sources: Optional[Mapping[str, Iterable[str]]] = None,
    ):
        self.name = name
        self.fn = fn
        self.params: Dict[str, DomainFn] = dict(params or {})
        self.reads = frozenset(reads)
        self.writes = frozenset(writes)
        self.update_sources: Dict[str, frozenset] = {
            var: frozenset(sources)
            for var, sources in (update_sources or {}).items()
        }

    def __repr__(self) -> str:
        return f"Action({self.name})"

    def source_location(self) -> Optional[Tuple[str, int]]:
        """``(filename, line)`` of the action function, or ``None``.

        Analysis-friendly metadata: the static spec analyzer
        (``python -m repro lint``) anchors its findings here when a more
        precise access site is not available.
        """
        return function_location(self.fn)

    def dependency_closure(self) -> Optional[frozenset]:
        """All variables the action *function* is a function of, or
        ``None`` when unknown.

        The declaration contract the incremental engine relies on, for
        an action with declared ``reads``:

        - the *enabling condition* is a pure function of ``reads`` alone
          (that is what ``reads`` declares, and what both the disabled-
          verdict memo and the interference matrix key on);
        - every *update value* is a pure function of
          ``reads | writes | update_sources`` (written vars may read
          their own old value, e.g. budget decrements and per-server
          vector updates; ``update_sources`` declares any source beyond
          that, per Definition 2 rule 3) -- so the closure determines
          the function's entire outcome.

        Actions that omit ``reads`` have an unknown dependency set and
        must be re-evaluated in every state.  The engine's debug mode
        (:class:`repro.checker.engine.CompiledSpec` with ``debug=True``)
        cross-checks memoized outcomes against fresh evaluations to
        validate declarations.
        """
        if not self.reads:
            return None
        closure = set(self.reads) | set(self.writes)
        for sources in self.update_sources.values():
            closure |= sources
        return frozenset(closure)

    def validate_updates(self, updates: Dict[str, Any]) -> Dict[str, Any]:
        """Check an update dict against the declared write set."""
        unknown = set(updates) - self.writes
        if unknown:
            raise ValueError(
                f"action {self.name} wrote undeclared variables: {sorted(unknown)}"
            )
        return updates

    def bindings(self, config: Any) -> Iterable[Tuple[Tuple[str, Any], ...]]:
        """Enumerate all parameter bindings for a configuration."""
        if not self.params:
            return [()]
        names = list(self.params)
        domains = [list(self.params[name](config)) for name in names]
        return [
            tuple(zip(names, combo)) for combo in itertools.product(*domains)
        ]

    def apply(
        self, config: Any, state: State, binding: Tuple[Tuple[str, Any], ...]
    ) -> Optional[State]:
        """Apply the action under one binding; None when not enabled."""
        updates = self.fn(config, state, **dict(binding))
        if updates is None:
            return None
        return state.set_many(self.validate_updates(updates))


@dataclass(frozen=True)
class ActionInstance:
    """An action paired with one concrete parameter binding."""

    action: Action
    binding: Tuple[Tuple[str, Any], ...] = ()

    @property
    def label(self) -> ActionLabel:
        return ActionLabel(self.action.name, self.binding)

    def apply(self, config: Any, state: State) -> Optional[State]:
        return self.action.apply(config, state, self.binding)


def action(
    name: str,
    params: Optional[Mapping[str, DomainFn]] = None,
    reads: Iterable[str] = (),
    writes: Iterable[str] = (),
    update_sources: Optional[Mapping[str, Iterable[str]]] = None,
) -> Callable[[ActionFn], Action]:
    """Decorator form: wrap a function into an :class:`Action`.

    >>> @action("Tick", reads=["clock"], writes=["clock"])
    ... def tick(config, state):
    ...     return {"clock": state.clock + 1}
    """

    def wrap(fn: ActionFn) -> Action:
        return Action(
            name,
            fn,
            params=params,
            reads=reads,
            writes=writes,
            update_sources=update_sources,
        )

    return wrap
