"""Table 3: the effort of writing multi-grained specifications.

Regenerates the spec-diff metrics (lines, variables, actions,
instrumentation pointcuts) from this repository's modules and benchmarks
the measurement itself.
"""

from bench_common import print_table, once
from repro.analysis import table3

PAPER = {
    "mSpec-1": ("+64, -342", "29 (-8)", "16 (-7)", "31 (+0)"),
    "mSpec-2": ("+34, -19", "29 (+0)", "17 (+1)", "32 (+1)"),
    "mSpec-3": ("+188, -118", "31 (+2)", "19 (+2)", "36 (+4)"),
}

_ROWS = []


def test_measure_efforts(benchmark):
    rows = once(benchmark, table3)
    _ROWS.extend(rows)
    assert len(rows) == 3
    # the shape of Table 3: coarsening removes actions, refining adds them
    assert rows[0].actions_delta < 0
    assert rows[1].actions_delta > 0 and rows[2].actions_delta > 0
    assert rows[1].pointcuts_delta > 0 and rows[2].pointcuts_delta > 0


def test_zz_report(benchmark):
    benchmark(lambda: None)  # keep the report under --benchmark-only
    out = []
    for row in _ROWS:
        paper = PAPER[row.name]
        pc_delta = (
            f"{row.pointcuts_delta:+d}"
            if row.pointcuts_delta is not None
            else "n/a"  # SysSpec is not deterministically mappable
        )
        out.append(
            (
                f"{row.name} - {row.base}",
                f"+{row.lines_added}, -{row.lines_removed} ({paper[0]})",
                f"{row.variables} ({row.variables_delta:+d}) "
                f"(paper {paper[1]})",
                f"{row.actions} ({row.actions_delta:+d}) "
                f"(paper {paper[2]})",
                f"{row.pointcuts} ({pc_delta}) "
                f"(paper {paper[3]})",
            )
        )
    print_table(
        "Table 3: specification efforts, measured (paper)",
        ("Spec diff", "Lines", "Variables", "Actions", "Instr."),
        out,
    )
