"""Figure 8: the lineage of bugs introduced in log replication.

Regenerates the bug-introduction DAG and its structural properties:
everything descends from the ZK-2678 optimizations; the merged ZK-3911
fix opened three new bug paths; the paper's six bugs were unfixed at
publication time.
"""

import networkx as nx

from repro.analysis import (
    descendants_of_optimization,
    generations,
    lineage_graph,
    render_ascii,
    roots,
    unfixed_at_publication,
)

PAPER_SIX = {"ZK-3023", "ZK-4394", "ZK-4643", "ZK-4646", "ZK-4685", "ZK-4712"}


def test_graph_construction(benchmark):
    graph = benchmark(lineage_graph)
    assert nx.is_directed_acyclic_graph(graph)


def test_structure_matches_figure8():
    graph = lineage_graph()
    assert roots(graph) == ["ZK-2678"]
    assert set(descendants_of_optimization(graph)) >= PAPER_SIX
    assert set(unfixed_at_publication(graph)) == PAPER_SIX
    assert set(graph.successors("ZK-3911")) == {
        "ZK-3023",
        "ZK-4685",
        "ZK-4712",
    }


def test_every_paper_bug_reachable_from_root():
    graph = lineage_graph()
    for bug in PAPER_SIX:
        assert nx.has_path(graph, "ZK-2678", bug)


def test_zz_report(benchmark):
    benchmark(lambda: None)  # keep the report under --benchmark-only
    print()
    print(render_ascii())
    layers = generations()
    print(f"\n  {len(layers)} generations; "
          f"{len(descendants_of_optimization())} bugs descend from the "
          f"ZK-2678 optimizations")
