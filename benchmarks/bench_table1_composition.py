"""Table 1: the composition matrix of mixed-grained specifications.

Regenerates the matrix from the registry and benchmarks the composition
step itself (Remix's "composing them is straightforward").
"""

import pytest

from bench_common import bench_config, print_table
from repro.remix import SpecRegistry
from repro.zookeeper.specs import SELECTIONS

EXPECTED = {
    "SysSpec": ("Baseline", "Baseline", "Baseline", "Baseline"),
    "mSpec-1": ("Coarsened", "Coarsened", "Baseline", "Baseline"),
    "mSpec-2": ("Coarsened", "Coarsened", "Fine (atom.)", "Baseline"),
    "mSpec-3": (
        "Coarsened",
        "Coarsened",
        "Fine (atom.+concur.)",
        "Fine (concur.)",
    ),
    "mSpec-4": (
        "Baseline",
        "Baseline",
        "Fine (atom.+concur.)",
        "Fine (concur.)",
    ),
}

PRETTY = {
    "baseline": "Baseline",
    "coarsened": "Coarsened",
    "fine_atomic": "Fine (atom.)",
    "fine_concurrent": "Fine (atom.+concur.)",
}


def row_of(selection):
    return (
        PRETTY[selection["Election"]],
        PRETTY[selection["Discovery"]],
        PRETTY[selection["Synchronization"]],
        (
            "Fine (concur.)"
            if selection["Broadcast"] == "fine_concurrent"
            else PRETTY[selection["Broadcast"]]
        ),
    )


@pytest.mark.parametrize("name", list(EXPECTED))
def test_selection_matches_table1(name):
    assert row_of(SELECTIONS[name]) == EXPECTED[name]


@pytest.mark.parametrize("name", list(EXPECTED))
def test_composition_benchmark(benchmark, name):
    registry = SpecRegistry()
    config = bench_config()
    spec = benchmark(lambda: registry.compose_named(name, config))
    assert spec.name == name


def test_zz_report(benchmark):
    benchmark(lambda: None)  # keep the report under --benchmark-only
    rows = [
        (name,) + row_of(SELECTIONS[name]) for name in EXPECTED
    ]
    print_table(
        "Table 1: mixed-grained specifications for log replication",
        ("Spec", "Election", "Discovery", "Synchronization", "Broadcast"),
        rows,
    )
