"""Table 6: verifying the four bug-fix pull requests.

Each PR is modeled as a SpecVariant update of mSpec-3+ (mSpec-3 with the
verified ZK-4712 fix).  The checker searches for the invariant the paper
reports for each PR; the §5.4 resolution passes.
"""

import pytest

from bench_common import bench_config, hunt, once, print_table
from repro.checker import BFSChecker
from repro.zookeeper import final_fix_spec, zk4394_mask
from repro.zookeeper.specs import PR_VARIANTS

#: PR -> (targeted invariant family, paper row (time, depth, states, inv))
PAPER = {
    "PR-1848": ("I-8", ("274s", 21, 8_166_775, "I-8")),
    "PR-1930": ("I-12", ("17s", 13, 270_881, "I-12")),
    "PR-1993": ("I-11", ("34s", 15, 765_437, "I-11")),
    "PR-2111": ("I-11", ("38s", 15, 808_697, "I-11")),
}

_RESULTS = {}


@pytest.mark.parametrize("pr", list(PAPER))
def test_pr_still_buggy(benchmark, pr):
    family, _ = PAPER[pr]
    config = bench_config(
        max_txns=1 if family == "I-8" else 2,
        max_crashes=2,
    )

    def run():
        return hunt(
            "mSpec-3",
            config,
            family=family,
            variant=PR_VARIANTS[pr],
            max_time=260,
        )

    result = once(benchmark, run)
    _RESULTS[pr] = result
    assert result.found_violation, f"{pr} unexpectedly verified"
    assert result.first_violation.invariant.ident == family


def test_final_fix_verifies(benchmark):
    config = bench_config(max_txns=1, max_crashes=2)

    def run():
        spec = final_fix_spec(config)
        return BFSChecker(
            spec, max_states=120_000, max_time=120, mask=zk4394_mask
        ).run()

    result = once(benchmark, run)
    _RESULTS["FinalFix"] = result
    assert not result.found_violation


def test_zz_report(benchmark):
    benchmark(lambda: None)  # keep the report under --benchmark-only
    rows = []
    for pr, (family, paper) in PAPER.items():
        result = _RESULTS.get(pr)
        if result is None:
            continue
        violation = result.first_violation
        rows.append(
            (
                pr,
                f"{result.elapsed_seconds:.1f}s ({paper[0]})",
                f"{violation.depth} ({paper[1]})",
                f"{result.states_explored} ({paper[2]:,})",
                f"{violation.invariant.ident} ({paper[3]})",
            )
        )
    final = _RESULTS.get("FinalFix")
    if final is not None:
        rows.append(
            (
                "§5.4 fix",
                f"{final.elapsed_seconds:.1f}s",
                "-",
                str(final.states_explored),
                "none (passes)",
            )
        )
    print_table(
        "Table 6: fix verification, measured (paper)",
        ("Change", "Time", "Depth", "#States", "Inv."),
        rows,
    )
