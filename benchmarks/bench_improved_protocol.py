"""§5.4: the improved Zab protocol passes all ten protocol invariants.

Checks the three protocol variants (original atomic, improved ordered,
and the epoch-first ablation that ZooKeeper actually implemented) and
reports states/time/outcome.
"""

import pytest

from bench_common import once, print_table
from repro.checker import BFSChecker
from repro.zab import ZabConfig, zab_spec

EXPECTED = {
    "original": None,  # passes
    "improved": None,  # passes (the §5.4 protocol)
    "epoch_first": "I-8",  # the ablation: ZooKeeper's implemented order
}

_RESULTS = {}


@pytest.mark.parametrize("variant", list(EXPECTED))
def test_protocol_variant(benchmark, variant):
    config = ZabConfig(
        max_txns=1, max_crashes=2, max_epoch=3, variant=variant
    )

    def run():
        return BFSChecker(
            zab_spec(config), max_states=200_000, max_time=120
        ).run()

    result = once(benchmark, run)
    _RESULTS[variant] = result
    if EXPECTED[variant] is None:
        assert not result.found_violation
    else:
        assert result.found_violation
        assert result.first_violation.invariant.ident == EXPECTED[variant]


def test_zz_report(benchmark):
    benchmark(lambda: None)  # keep the report under --benchmark-only
    rows = []
    for variant, result in _RESULTS.items():
        outcome = (
            f"violates {result.first_violation.invariant.ident} at depth "
            f"{result.first_violation.depth}"
            if result.found_violation
            else ("passes (state space exhausted)" if result.completed
                  else "passes (within budget)")
        )
        rows.append(
            (
                variant,
                f"{result.elapsed_seconds:.1f}s",
                result.states_explored,
                outcome,
            )
        )
    print_table(
        "§5.4: protocol verification (original / improved / ablation)",
        ("Variant", "Time", "#States", "Outcome"),
        rows,
    )
