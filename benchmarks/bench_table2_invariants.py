"""Table 2: the invariant catalogue and its evaluation cost.

Regenerates the census (ten protocol invariants + eleven code-level
instances in four families) and benchmarks invariant evaluation over the
reachable states -- the per-state cost TLC pays during checking.
"""

from bench_common import bench_config, print_table
from repro.checker import RandomWalker
from repro.zab.invariants import protocol_invariants
from repro.zookeeper import make_spec
from repro.zookeeper.code_invariants import INSTANCE_TABLE


def test_protocol_census():
    invariants = protocol_invariants()
    assert [inv.ident for inv in invariants] == [
        f"I-{k}" for k in range(1, 11)
    ]


def test_code_census():
    families = {}
    for code, (family, _, _) in INSTANCE_TABLE.items():
        families.setdefault(family, []).append(code)
    assert {f: len(v) for f, v in families.items()} == {
        "I-11": 4,
        "I-12": 2,
        "I-13": 2,
        "I-14": 3,
    }


def test_invariant_evaluation_benchmark(benchmark):
    spec = make_spec("mSpec-3", bench_config())
    states = RandomWalker(spec, seed=1).walk(max_steps=25).states
    invariants = spec.invariants

    def evaluate():
        violations = 0
        for state in states:
            for inv in invariants:
                if not inv.holds(spec.config, state):
                    violations += 1
        return violations

    benchmark(evaluate)


def test_zz_report(benchmark):
    benchmark(lambda: None)  # keep the report under --benchmark-only
    rows = [
        (inv.ident, inv.name, "Protocol") for inv in protocol_invariants()
    ]
    families = {}
    for code, (family, name, requires) in INSTANCE_TABLE.items():
        families.setdefault(family, []).append((code, requires))
    for family in ("I-11", "I-12", "I-13", "I-14"):
        instances = families[family]
        rows.append(
            (
                family,
                f"{len(instances)} instances "
                f"({sum(1 for _, r in instances if r != 'any')} need "
                f"fine granularity)",
                "Code",
            )
        )
    print_table(
        "Table 2: invariants (10 protocol + 11 code instances)",
        ("ID", "Invariant", "Source"),
        rows,
    )
