"""Table 4: bug detection in ZooKeeper v3.9.1.

For each of the six bugs, run the paper's most-efficient mixed-grained
specification restricted to the bug's invariant family and report time,
depth, distinct states and the violated invariant, next to the paper's
values.
"""

import pytest

from bench_common import bench_config, hunt, once, print_table
from repro.zookeeper import PR_1930

#: bug -> (spec, config kwargs, invariant family, instance, variant,
#:         masked, paper row (spec, time, depth, states, invariant))
BUGS = {
    "ZK-3023": dict(
        spec="mSpec-3",
        config=dict(max_txns=1, max_crashes=1),
        family="I-11",
        instance="ACK_UPTODATE_OUT_OF_SYNC",
        paper=("mSpec-3", "11 sec", 13, 78_892, "I-11"),
    ),
    "ZK-4394": dict(
        spec="mSpec-1",
        config=dict(max_txns=1, max_crashes=1),
        family="I-14",
        instance="COMMIT_UNMATCHED_IN_SYNC",
        masked=False,  # mSpec-1*: the bug unmasked
        paper=("mSpec-1*", "9 sec", 20, 14_264, "I-14"),
    ),
    "ZK-4643": dict(
        spec="mSpec-2",
        config=dict(max_txns=1, max_crashes=2),
        family="I-8",
        paper=("mSpec-2", "17 sec", 21, 208_018, "I-8"),
    ),
    "ZK-4646": dict(
        spec="mSpec-3",
        config=dict(max_txns=1, max_crashes=2),
        family="I-8",
        # the ordering fix isolates ZK-4646 from the ZK-4643 window
        variant=PR_1930,
        paper=("mSpec-3", "109 sec", 21, 2_880_498, "I-8"),
    ),
    "ZK-4685": dict(
        spec="mSpec-3",
        config=dict(max_txns=2, max_crashes=1),
        family="I-12",
        instance="ACK_BEFORE_NEWLEADER_ACK",
        paper=("mSpec-3", "10 sec", 12, 67_418, "I-12"),
    ),
    "ZK-4712": dict(
        spec="mSpec-3",
        config=dict(max_txns=2, max_crashes=1),
        family="I-10",
        paper=("mSpec-3", "11 sec", 13, 73_293, "I-10"),
    ),
}

_RESULTS = {}


@pytest.mark.parametrize("bug", list(BUGS))
def test_find_bug(benchmark, bug):
    entry = BUGS[bug]

    def run():
        return hunt(
            entry["spec"],
            bench_config(**entry["config"]),
            family=entry["family"],
            instance=entry.get("instance"),
            masked=entry.get("masked", True),
            variant=entry.get("variant"),
            max_time=400,
        )

    result = once(benchmark, run)
    _RESULTS[bug] = result
    assert result.found_violation, f"{bug} not found"
    violated = result.first_violation.invariant.ident
    assert violated == entry["family"]


def test_zz_report(benchmark):
    """Print the regenerated Table 4 (runs after the per-bug rows)."""
    benchmark(lambda: None)  # keep the report under --benchmark-only
    rows = []
    for bug, entry in BUGS.items():
        paper = entry["paper"]
        result = _RESULTS.get(bug)
        if result is None or not result.found_violation:
            continue
        violation = result.first_violation
        rows.append(
            (
                bug,
                paper[0],
                f"{result.elapsed_seconds:.1f} sec ({paper[1]})",
                f"{violation.depth} ({paper[2]})",
                f"{result.states_explored} ({paper[3]:,})",
                f"{violation.invariant.ident} ({paper[4]})",
            )
        )
    print_table(
        "Table 4: bug detection, measured (paper)",
        ("Bug", "Spec", "Time", "Depth", "#States", "Inv."),
        rows,
    )
    assert len(rows) == len(BUGS)
