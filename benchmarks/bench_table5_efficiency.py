"""Table 5: verification efficiency of the five specifications.

Mode (a): stop at the first violation.  Mode (b): run to completion
within the budgets.  The paper's shape to reproduce:

- Baseline and mSpec-4 drown in the fine-grained Election state space
  (paper: >24h; here: budget exhausted without reaching a violation,
  except mSpec-4 which eventually finds one -- paper 8h32m);
- mSpec-1 finishes without violations (ZK-4394 masked);
- mSpec-2 finds I-8, mSpec-3 finds a violation fastest.

Besides the pytest-benchmark entry points, this file doubles as a CLI
smoke benchmark for CI::

    python benchmarks/bench_table5_efficiency.py \
        --max-states 2000 --max-time 10 --json bench-smoke.json

which runs all five specs through the exploration engine under a tiny
budget and writes a JSON artifact (states, transitions, states/sec,
violated invariant).  ``--compare-legacy`` additionally runs the seed
checker (:mod:`repro.checker.legacy`) on the same workload and reports
the engine-vs-legacy throughput ratio.
"""

import argparse
import json
import math
import sys
import time

import pytest

from bench_common import bench_config, hunt, once, print_table

#: spec -> paper row for mode (a): (time, depth, states, invariant)
PAPER_A = {
    "SysSpec": (">24h", 26, 2_271_335_268, "None"),
    "mSpec-1": ("12m20s", 56, 17_586_953, "None"),
    "mSpec-2": ("1m15s", 21, 2_237_960, "I-8"),
    "mSpec-3": ("11s", 13, 77_179, "I-10"),
    "mSpec-4": ("8h32m6s", 24, 967_810_552, "I-10"),
}

#: budgets proportional to the spec's expected cost
BUDGETS = {
    "SysSpec": dict(max_states=120_000, max_time=60),
    "mSpec-1": dict(max_states=400_000, max_time=90),
    "mSpec-2": dict(max_states=400_000, max_time=120),
    "mSpec-3": dict(max_states=400_000, max_time=120),
    "mSpec-4": dict(max_states=200_000, max_time=90),
}

_FIRST = {}
_COMPLETE = {}


@pytest.mark.parametrize("name", list(PAPER_A))
def test_stop_at_first_violation(benchmark, name):
    config = bench_config()

    def run():
        return hunt(name, config, masked=True, **BUDGETS[name])

    result = once(benchmark, run)
    _FIRST[name] = result
    if name in ("mSpec-2", "mSpec-3"):
        assert result.found_violation, f"{name} should find a violation"
    if name in ("SysSpec", "mSpec-1"):
        assert not result.found_violation


@pytest.mark.parametrize("name", ["mSpec-2", "mSpec-3"])
def test_run_to_completion(benchmark, name):
    config = bench_config()

    def run():
        return hunt(
            name,
            config,
            masked=True,
            stop_at_first=False,
            violation_limit=500,
            max_states=450_000,
            max_time=150,
        )

    result = once(benchmark, run)
    _COMPLETE[name] = result
    assert len(result.violations) >= 1


def test_zz_report(benchmark):
    benchmark(lambda: None)  # keep the report under --benchmark-only
    rows = []
    for name, paper in PAPER_A.items():
        result = _FIRST.get(name)
        if result is None:
            continue
        found = result.first_violation
        rows.append(
            (
                name,
                f"{result.elapsed_seconds:.1f}s ({paper[0]})",
                f"{found.depth if found else result.max_depth} ({paper[1]})",
                f"{result.states_explored} ({paper[2]:,})",
                f"{found.invariant.ident if found else 'None'} ({paper[3]})",
            )
        )
    print_table(
        "Table 5a: first violation, measured (paper)",
        ("Spec", "Time", "Depth", "#States", "Violated"),
        rows,
    )
    rows_b = []
    for name, result in _COMPLETE.items():
        rows_b.append(
            (
                name,
                f"{result.elapsed_seconds:.1f}s",
                result.states_explored,
                len(result.violations),
                ", ".join(result.violated_invariant_ids()),
            )
        )
    print_table(
        "Table 5b: run to completion (bounded)",
        ("Spec", "Time", "#States", "#Violations", "Invariants"),
        rows_b,
    )
    # The paper's ordering: fine-grained mixed specs detect violations,
    # the baseline and mSpec-1 (masked) find none, and mSpec-3 is the
    # fastest to a violation.
    assert _FIRST["mSpec-3"].elapsed_seconds <= _FIRST["mSpec-2"].elapsed_seconds
    if _COMPLETE:
        assert len(_COMPLETE["mSpec-3"].violated_invariant_ids()) >= 1


# --------------------------------------------------------------- CLI smoke


def _smoke_row(result):
    found = result.first_violation
    rate = (
        result.states_explored / result.elapsed_seconds
        if result.elapsed_seconds > 0
        else 0.0
    )
    return {
        "states_explored": result.states_explored,
        "transitions": result.transitions,
        "max_depth": result.max_depth,
        "elapsed_seconds": round(result.elapsed_seconds, 3),
        "states_per_second": round(rate, 1),
        "violated": found.invariant.ident if found else None,
        "budget_exhausted": result.budget_exhausted,
        "completed": result.completed,
    }


def run_smoke(max_states, max_time, workers, strategy, compare_legacy, dedupe="rounds"):
    """Run the five Table 5 specs under a small budget; return a report."""
    from repro.checker.legacy import LegacyBFSChecker
    from repro.zookeeper import zk4394_mask
    from repro.zookeeper.specs import SELECTIONS, build_spec

    config = bench_config()
    report = {
        "workload": {
            "max_states": max_states,
            "max_time": max_time,
            "workers": workers,
            "strategy": strategy,
            "dedupe": dedupe,
        },
        "specs": {},
    }
    for name in PAPER_A:
        result = hunt(
            name,
            config,
            masked=True,
            max_states=max_states,
            max_time=max_time,
            workers=workers,
            strategy=strategy,
            dedupe=dedupe,
        )
        row = _smoke_row(result)
        if compare_legacy:
            spec = build_spec(name, SELECTIONS[name], config)
            checker = LegacyBFSChecker(
                spec, max_states=max_states, max_time=max_time, mask=zk4394_mask
            )
            t0 = time.monotonic()
            legacy = checker.run()
            elapsed = time.monotonic() - t0
            legacy_rate = legacy.states_explored / elapsed if elapsed > 0 else 0.0
            row["legacy_states_per_second"] = round(legacy_rate, 1)
            row["engine_speedup"] = (
                round(row["states_per_second"] / legacy_rate, 2)
                if legacy_rate
                else None
            )
        report["specs"][name] = row
    return report


def run_engine_trajectory(max_states, max_time, workers):
    """The ``BENCH_engine.json`` perf-trajectory artifact.

    A/Bs the incremental successor path (delta fingerprints, outcome
    memoization, inherited disabled bits) against full recomputation
    (``incremental=False``) on every Table 5 spec, sequentially and --
    when ``workers >= 2`` -- under the sharded BFS modes.  The aggregate
    throughput ratio is the number CI's perf-smoke gate regresses
    against.
    """
    config = bench_config()
    report = {
        "schema": "repro.bench-engine/1",
        "workload": {
            "max_states": max_states,
            "max_time": max_time,
            "workers": workers,
        },
        "specs": {},
    }
    inc_states = inc_time = full_states = full_time = 0.0
    for name in PAPER_A:
        budget = dict(masked=True, max_states=max_states, max_time=max_time)
        # The full-recompute arm runs first so that warm OS/allocator
        # caches never bias the gated (incremental) arm downward on a
        # noisy shared runner.
        full = hunt(name, config, workers=1, incremental=False, **budget)
        incremental = hunt(name, config, workers=1, **budget)
        row = {
            "incremental": _smoke_row(incremental),
            "full_recompute": _smoke_row(full),
        }
        # Equal exploration is a soundness check, but only when both
        # arms were cut by the same deterministic budget -- a max_time
        # truncation on a congested runner legitimately desynchronizes
        # the counts.
        comparable = all(
            r.completed or r.budget_exhausted == "max_states"
            for r in (incremental, full)
        )
        if comparable and (
            incremental.states_explored != full.states_explored
            or incremental.transitions != full.transitions
        ):
            raise SystemExit(
                f"A/B mismatch on {name}: incremental explored "
                f"{incremental.states_explored}/{incremental.transitions} "
                f"vs full {full.states_explored}/{full.transitions}"
            )
        if not comparable:
            row["time_truncated"] = True
        inc_states += incremental.states_explored
        inc_time += incremental.elapsed_seconds
        full_states += full.states_explored
        full_time += full.elapsed_seconds
        row["incremental_speedup"] = (
            round(
                (incremental.states_explored / incremental.elapsed_seconds)
                / (full.states_explored / full.elapsed_seconds),
                3,
            )
            if incremental.elapsed_seconds > 0
            and full.elapsed_seconds > 0
            and full.states_explored
            else None
        )
        if workers >= 2:
            for mode in ("rounds", "shared"):
                parallel = hunt(
                    name, config, workers=workers, dedupe=mode, **budget
                )
                row[f"workers{workers}_{mode}"] = _smoke_row(parallel)
        report["specs"][name] = row
    inc_rate = inc_states / inc_time if inc_time > 0 else 0.0
    full_rate = full_states / full_time if full_time > 0 else 0.0
    report["aggregate"] = {
        "incremental_states_per_second": round(inc_rate, 1),
        "full_recompute_states_per_second": round(full_rate, 1),
        "incremental_speedup": round(inc_rate / full_rate, 3) if full_rate else None,
    }
    return report


#: The compiled-kernel A/B lane: one row per (protocol, spec, budget).
#: The rows deliberately span both memoization regimes.  The ZooKeeper
#: specs have wide dependency closures (the hot ``state`` variable sits in
#: nearly every closure), so kernel replay roughly breaks even with the
#: interpreted memo path -- those rows feed the regression floor.  The
#: Raft plugin specs have narrow closures, so the compiled replay path is
#: the dominant cost -- ``raft-fine@150k`` is the >=1.5x gate row.  Raft
#: appears at two budgets because memo hit rates (and so the kernel
#: advantage) grow with frontier depth; the pair records that trend.
AB_COMPILED_ROWS = (
    ("zookeeper", "SysSpec", 30_000),
    ("zookeeper", "mSpec-2", 30_000),
    ("zookeeper", "mSpec-3", 30_000),
    ("raft", "raft-coarse", 100_000),
    ("raft", "raft-fine", 100_000),
    ("raft", "raft-coarse", 150_000),
    ("raft", "raft-fine", 150_000),
)

#: The row the --min-compiled-ratio gate applies to.
AB_COMPILED_GATE_ROW = "raft-fine@150k"

#: Every row must stay above this compiled/interpreted floor (compiled
#: must never be a regression, modulo runner noise).
AB_COMPILED_FLOOR = 0.9


def _ab_compiled_spec(protocol, name):
    if protocol == "zookeeper":
        from repro.zookeeper import zk4394_mask
        from repro.zookeeper.specs import SELECTIONS, build_spec

        return build_spec(name, SELECTIONS[name], bench_config()), zk4394_mask
    from repro.raft.config import RaftConfig
    from repro.raft.spec import make_spec as raft_make_spec

    return raft_make_spec(name, RaftConfig()), None


def run_ab_compiled(max_time, reps=2):
    """The compiled-kernel lane of ``BENCH_engine.json``.

    Per row, runs the engine with ``--compile on``, ``--compile off`` and
    the seed checker under the same sequential state budget, interleaved
    for ``reps`` repetitions with the minimum CPU time kept per arm
    (min-of-N cancels runner drift far better than wall-clock means).
    Enumeration must be bitwise-identical between the engine arms --
    states, transitions and violations are compared and a mismatch is a
    hard failure, not a statistic.
    """
    from repro.checker.engine import ExplorationEngine
    from repro.checker.legacy import LegacyBFSChecker

    rows = {}
    for protocol, name, max_states in AB_COMPILED_ROWS:
        times = {"compiled": [], "interpreted": [], "seed": []}
        explored = {}

        def arm(mode):
            spec, mask = _ab_compiled_spec(protocol, name)
            if mode == "seed":
                runner = LegacyBFSChecker(
                    spec, max_states=max_states, max_time=max_time, mask=mask
                )
            else:
                runner = ExplorationEngine(
                    spec,
                    "bfs",
                    max_states=max_states,
                    max_time=max_time,
                    mask=mask,
                    compile_mode="on" if mode == "compiled" else "off",
                )
            t0 = time.process_time()
            result = runner.run()
            times[mode].append(time.process_time() - t0)
            explored[mode] = (
                result.states_explored,
                result.transitions,
                sorted(v.invariant.full_name for v in result.violations),
            )

        for _ in range(reps):
            for mode in ("compiled", "interpreted", "seed"):
                arm(mode)
        if explored["compiled"] != explored["interpreted"]:
            raise SystemExit(
                f"compiled/interpreted enumeration mismatch on {name}: "
                f"{explored['compiled']} vs {explored['interpreted']}"
            )
        states = explored["compiled"][0]
        best = {mode: min(ts) for mode, ts in times.items()}
        rows[f"{name}@{max_states // 1000}k"] = {
            "spec": name,
            "protocol": protocol,
            "max_states": max_states,
            "states_explored": states,
            "compiled_seconds": round(best["compiled"], 3),
            "interpreted_seconds": round(best["interpreted"], 3),
            "seed_seconds": round(best["seed"], 3),
            "compiled_speedup": round(
                best["interpreted"] / best["compiled"], 3
            ),
            "compiled_vs_seed_speedup": round(
                (best["seed"] / explored["seed"][0]) / (best["compiled"] / states),
                3,
            )
            if explored["seed"][0]
            else None,
        }

    def geomean(values):
        values = [v for v in values if v]
        if not values:
            return None
        return round(math.exp(sum(math.log(v) for v in values) / len(values)), 3)

    gate = rows.get(AB_COMPILED_GATE_ROW, {})
    return {
        "rows": rows,
        "aggregate": {
            "geomean_compiled_speedup": geomean(
                r["compiled_speedup"] for r in rows.values()
            ),
            "geomean_compiled_vs_seed_speedup": geomean(
                r["compiled_vs_seed_speedup"] for r in rows.values()
            ),
            "min_compiled_speedup": min(
                r["compiled_speedup"] for r in rows.values()
            ),
            "gate_row": AB_COMPILED_GATE_ROW,
            "gate_compiled_speedup": gate.get("compiled_speedup"),
            "gate_compiled_vs_seed_speedup": gate.get(
                "compiled_vs_seed_speedup"
            ),
        },
    }


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Table 5 efficiency smoke benchmark (engine-based)"
    )
    parser.add_argument("--max-states", type=int, default=2_000)
    parser.add_argument("--max-time", type=float, default=15.0)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument(
        "--strategy", choices=("bfs", "portfolio"), default="bfs"
    )
    parser.add_argument(
        "--dedupe", choices=("rounds", "shared"), default="rounds",
        help="cross-worker visited-set mode for the parallel runs",
    )
    parser.add_argument("--json", dest="json_path", default=None)
    parser.add_argument(
        "--compare-legacy",
        action="store_true",
        help="also run the seed checker and report the speedup ratio",
    )
    parser.add_argument(
        "--ab-incremental",
        action="store_true",
        help="emit the BENCH_engine.json perf trajectory instead: "
        "incremental vs full-recompute A/B per spec (+ parallel modes "
        "with --workers >= 2)",
    )
    parser.add_argument(
        "--min-ratio",
        type=float,
        default=None,
        help="with --ab-incremental: exit 1 unless the aggregate "
        "incremental/full-recompute throughput ratio is at least this "
        "(CI perf-smoke gate; 1.0 = never slower than full recompute)",
    )
    parser.add_argument(
        "--ab-compiled",
        action="store_true",
        help="add the compiled-kernel lane to the report: compiled vs "
        "interpreted vs seed checker per AB_COMPILED_ROWS row, "
        "sequential, min-of-2 CPU time, with a hard "
        "equal-enumeration check",
    )
    parser.add_argument(
        "--min-compiled-ratio",
        type=float,
        default=None,
        help="with --ab-compiled: exit 1 unless the gate row "
        f"({AB_COMPILED_GATE_ROW}) reaches this compiled/interpreted "
        f"speedup and every row stays above the {AB_COMPILED_FLOOR} "
        "regression floor",
    )
    args = parser.parse_args(argv)
    if args.ab_incremental:
        report = run_engine_trajectory(
            args.max_states, args.max_time, args.workers
        )
    else:
        report = run_smoke(
            args.max_states,
            args.max_time,
            args.workers,
            args.strategy,
            args.compare_legacy,
            args.dedupe,
        )
    if args.ab_compiled:
        report["ab_compiled"] = run_ab_compiled(args.max_time)
    text = json.dumps(report, indent=2)
    print(text)
    if args.json_path:
        with open(args.json_path, "w") as fh:
            fh.write(text + "\n")
    if args.ab_incremental and args.min_ratio is not None:
        ratio = report["aggregate"]["incremental_speedup"]
        if ratio is None or ratio < args.min_ratio:
            print(
                f"perf-smoke gate FAILED: incremental/full ratio {ratio} "
                f"< required {args.min_ratio}",
                file=sys.stderr,
            )
            return 1
        print(
            f"perf-smoke gate ok: incremental/full ratio {ratio} >= "
            f"{args.min_ratio}",
            file=sys.stderr,
        )
    if args.ab_compiled and args.min_compiled_ratio is not None:
        agg = report["ab_compiled"]["aggregate"]
        gate = agg["gate_compiled_speedup"]
        floor = agg["min_compiled_speedup"]
        if gate is None or gate < args.min_compiled_ratio:
            print(
                f"compiled gate FAILED: {AB_COMPILED_GATE_ROW} "
                f"compiled/interpreted ratio {gate} < required "
                f"{args.min_compiled_ratio}",
                file=sys.stderr,
            )
            return 1
        if floor < AB_COMPILED_FLOOR:
            print(
                f"compiled gate FAILED: worst row ratio {floor} < "
                f"regression floor {AB_COMPILED_FLOOR}",
                file=sys.stderr,
            )
            return 1
        print(
            f"compiled gate ok: {AB_COMPILED_GATE_ROW} ratio {gate} >= "
            f"{args.min_compiled_ratio}, worst row {floor} >= "
            f"{AB_COMPILED_FLOOR}",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
