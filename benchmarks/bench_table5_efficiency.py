"""Table 5: verification efficiency of the five specifications.

Mode (a): stop at the first violation.  Mode (b): run to completion
within the budgets.  The paper's shape to reproduce:

- Baseline and mSpec-4 drown in the fine-grained Election state space
  (paper: >24h; here: budget exhausted without reaching a violation,
  except mSpec-4 which eventually finds one -- paper 8h32m);
- mSpec-1 finishes without violations (ZK-4394 masked);
- mSpec-2 finds I-8, mSpec-3 finds a violation fastest.
"""

import pytest

from conftest import bench_config, hunt, once, print_table

#: spec -> paper row for mode (a): (time, depth, states, invariant)
PAPER_A = {
    "SysSpec": (">24h", 26, 2_271_335_268, "None"),
    "mSpec-1": ("12m20s", 56, 17_586_953, "None"),
    "mSpec-2": ("1m15s", 21, 2_237_960, "I-8"),
    "mSpec-3": ("11s", 13, 77_179, "I-10"),
    "mSpec-4": ("8h32m6s", 24, 967_810_552, "I-10"),
}

#: budgets proportional to the spec's expected cost
BUDGETS = {
    "SysSpec": dict(max_states=120_000, max_time=60),
    "mSpec-1": dict(max_states=400_000, max_time=90),
    "mSpec-2": dict(max_states=400_000, max_time=120),
    "mSpec-3": dict(max_states=400_000, max_time=120),
    "mSpec-4": dict(max_states=200_000, max_time=90),
}

_FIRST = {}
_COMPLETE = {}


@pytest.mark.parametrize("name", list(PAPER_A))
def test_stop_at_first_violation(benchmark, name):
    config = bench_config()

    def run():
        return hunt(name, config, masked=True, **BUDGETS[name])

    result = once(benchmark, run)
    _FIRST[name] = result
    if name in ("mSpec-2", "mSpec-3"):
        assert result.found_violation, f"{name} should find a violation"
    if name in ("SysSpec", "mSpec-1"):
        assert not result.found_violation


@pytest.mark.parametrize("name", ["mSpec-2", "mSpec-3"])
def test_run_to_completion(benchmark, name):
    config = bench_config()

    def run():
        return hunt(
            name,
            config,
            masked=True,
            stop_at_first=False,
            violation_limit=500,
            max_states=450_000,
            max_time=150,
        )

    result = once(benchmark, run)
    _COMPLETE[name] = result
    assert len(result.violations) >= 1


def test_zz_report(benchmark):
    benchmark(lambda: None)  # keep the report under --benchmark-only
    rows = []
    for name, paper in PAPER_A.items():
        result = _FIRST.get(name)
        if result is None:
            continue
        found = result.first_violation
        rows.append(
            (
                name,
                f"{result.elapsed_seconds:.1f}s ({paper[0]})",
                f"{found.depth if found else result.max_depth} ({paper[1]})",
                f"{result.states_explored} ({paper[2]:,})",
                f"{found.invariant.ident if found else 'None'} ({paper[3]})",
            )
        )
    print_table(
        "Table 5a: first violation, measured (paper)",
        ("Spec", "Time", "Depth", "#States", "Violated"),
        rows,
    )
    rows_b = []
    for name, result in _COMPLETE.items():
        rows_b.append(
            (
                name,
                f"{result.elapsed_seconds:.1f}s",
                result.states_explored,
                len(result.violations),
                ", ".join(result.violated_invariant_ids()),
            )
        )
    print_table(
        "Table 5b: run to completion (bounded)",
        ("Spec", "Time", "#States", "#Violations", "Invariants"),
        rows_b,
    )
    # The paper's ordering: fine-grained mixed specs detect violations,
    # the baseline and mSpec-1 (masked) find none, and mSpec-3 is the
    # fastest to a violation.
    assert _FIRST["mSpec-3"].elapsed_seconds <= _FIRST["mSpec-2"].elapsed_seconds
    if _COMPLETE:
        assert len(_COMPLETE["mSpec-3"].violated_invariant_ids()) >= 1
