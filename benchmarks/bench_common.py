"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation
and prints it side by side with the paper-reported values (EXPERIMENTS.md
records the comparison).  Absolute numbers differ -- pure-Python
exploration at laptop scale vs TLC on a 96-core server -- but the *shape*
(who finds what, which invariant fires, relative ordering) must match.

This module used to be ``benchmarks/conftest.py``; it was renamed so the
top-level module name ``conftest`` unambiguously resolves to
``tests/conftest.py`` when the two directories are collected together
(the seed suite failed collection over exactly that clash).

Environment knobs:

- ``REPRO_BENCH_SCALE=small`` keeps every bench under ~1 min;
- ``REPRO_BENCH_WORKERS=N`` runs the engine's sharded-frontier mode;
- ``REPRO_BENCH_REPORT`` redirects the rendered tables.
"""

import os

from repro.checker.engine import ExplorationEngine
from repro.zookeeper import ZkConfig, zk4394_mask
from repro.zookeeper.specs import SELECTIONS, build_spec

#: Scale knob: REPRO_BENCH_SCALE=small keeps every bench under ~1 min.
SCALE = os.environ.get("REPRO_BENCH_SCALE", "normal")

#: Worker processes for the exploration engine (1 = in-process).
WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "1"))


def bench_config(**kw):
    """The Table 5 configuration shape (3 servers, 2 txns, 2 crashes,
    2 partitions) at laptop scale."""
    defaults = dict(
        n_servers=3, max_txns=2, max_crashes=2, max_partitions=0, max_epoch=3
    )
    defaults.update(kw)
    return ZkConfig(**defaults)


def hunt(
    spec_name,
    config,
    family=None,
    instance=None,
    masked=True,
    max_states=2_000_000,
    max_time=240,
    variant=None,
    stop_at_first=True,
    violation_limit=10_000,
    strategy="bfs",
    workers=None,
    incremental=True,
    dedupe="rounds",
    compile_mode="auto",
):
    """One model-checking run, optionally restricted to an invariant
    family (how Table 4 reports per-bug rows)."""
    if variant is not None:
        config = config.with_variant(variant)
    spec = build_spec(spec_name, SELECTIONS[spec_name], config)
    if family is not None:
        spec.invariants = [
            inv
            for inv in spec.invariants
            if inv.ident == family
            and (instance is None or inv.instance == instance)
        ]
    if SCALE == "small":
        # Calibrated to the engine's ~8-9k states/sec: big enough that
        # mSpec-2 still reaches its I-8 violation (~300k states), small
        # enough to keep each bench under ~1 min.
        max_states = min(max_states, 320_000)
        max_time = min(max_time, 60)
    engine = ExplorationEngine(
        spec,
        strategy=strategy,
        workers=WORKERS if workers is None else workers,
        max_states=max_states,
        max_time=max_time,
        mask=zk4394_mask if masked else None,
        stop_at_first=stop_at_first,
        violation_limit=violation_limit,
        incremental=incremental,
        dedupe=dedupe,
        compile_mode=compile_mode,
    )
    return engine.run()


REPORT_FILE = os.environ.get(
    "REPRO_BENCH_REPORT", os.path.join(os.path.dirname(__file__), "..", "bench_reports.txt")
)


def print_table(title, headers, rows):
    """Render one experiment table (stdout + bench_reports.txt, since
    pytest captures stdout unless -s is given)."""
    widths = [
        max(len(str(headers[k])), *(len(str(r[k])) for r in rows))
        for k in range(len(headers))
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    out = [f"\n=== {title} ===", line, "-" * len(line)]
    for row in rows:
        out.append("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    text = "\n".join(out)
    print(text)
    try:
        with open(REPORT_FILE, "a") as fh:
            fh.write(text + "\n")
    except OSError:
        pass


def once(benchmark, fn):
    """Run a heavy experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
