"""Ablations of the reproduction's design choices (DESIGN.md §5-6).

1. Search strategy: BFS (TLC's default, minimal traces) vs DFS vs
   iterative deepening to the first ZK-4394 violation.
2. Masking: the effect of masking the known ZK-4394 on the state space
   mSpec-1 explores (the paper's §4.1 adjustment).
3. Invariant filtering: checking a single family (the per-bug rows of
   Table 4) vs evaluating the full Table 2 catalogue on every state.
"""

import pytest

from bench_common import once, print_table
from repro.checker import BFSChecker, DFSChecker, IterativeDeepeningChecker
from repro.zookeeper import ZkConfig, make_spec, zk4394_mask

CFG = ZkConfig(max_txns=1, max_crashes=1, max_partitions=0, max_epoch=3)

_ROWS = {}


def _zk4394_spec():
    spec = make_spec("mSpec-1", CFG)
    spec.invariants = [i for i in spec.invariants if i.ident == "I-14"]
    return spec


@pytest.mark.parametrize("strategy", ["BFS", "DFS", "IDDFS"])
def test_search_strategy(benchmark, strategy):
    def run():
        spec = _zk4394_spec()
        if strategy == "BFS":
            return BFSChecker(spec, max_states=200_000, max_time=120).run()
        if strategy == "DFS":
            return DFSChecker(
                spec, max_depth=30, max_states=200_000, max_time=120
            ).run()
        return IterativeDeepeningChecker(
            spec, max_depth=20, step=2, max_time=180
        ).run()

    result = once(benchmark, run)
    _ROWS[f"strategy/{strategy}"] = result
    assert result.found_violation
    if strategy == "BFS":
        assert result.first_violation.depth == 13


def test_masking_effect(benchmark):
    def run():
        masked = BFSChecker(
            make_spec("mSpec-1", CFG),
            max_states=150_000,
            max_time=90,
            mask=zk4394_mask,
        ).run()
        unmasked = BFSChecker(
            make_spec("mSpec-1", CFG), max_states=150_000, max_time=90
        ).run()
        return masked, unmasked

    masked, unmasked = once(benchmark, run)
    _ROWS["mask/on"] = masked
    _ROWS["mask/off"] = unmasked
    # unmasked: stops at the ZK-4394 violation; masked: explores past it
    assert unmasked.found_violation and not masked.found_violation
    assert masked.states_explored > unmasked.states_explored


def test_invariant_filtering(benchmark):
    def run():
        full = make_spec("mSpec-1", CFG)
        filtered = _zk4394_spec()
        full_result = BFSChecker(
            full, max_states=60_000, max_time=90
        ).run()
        filtered_result = BFSChecker(
            filtered, max_states=60_000, max_time=90
        ).run()
        return full_result, filtered_result

    full_result, filtered_result = once(benchmark, run)
    _ROWS["invariants/full"] = full_result
    _ROWS["invariants/family-only"] = filtered_result
    # both find the same bug; the filtered run pays less per state
    assert full_result.found_violation and filtered_result.found_violation
    assert (
        filtered_result.elapsed_seconds <= full_result.elapsed_seconds * 1.5
    )


def test_zz_report(benchmark):
    benchmark(lambda: None)  # keep the report under --benchmark-only
    rows = []
    for name, result in _ROWS.items():
        found = result.first_violation
        rows.append(
            (
                name,
                f"{result.elapsed_seconds:.2f}s",
                result.states_explored,
                f"depth {found.depth}" if found else "no violation",
            )
        )
    print_table(
        "Ablations: strategy / masking / invariant filtering",
        ("Variant", "Time", "#States", "Outcome"),
        rows,
    )
