"""Conformance checking (§3.4 / §4.1): throughput and discrepancy finding.

Benchmarks the random-exploration + deterministic-replay loop, verifies
that the shipped specifications conform to the shipped implementation,
that an injected divergence is caught, and that the ZK-4394 discrepancy
workflow of §4.1 (model trace -> code-level NullPointerException)
reproduces.

Besides the pytest-benchmark entry points, this file doubles as a CLI
smoke for CI::

    python benchmarks/bench_conformance.py --campaign \
        --budget 10s --workers 2 --json bench-campaign.json

which runs a small conformance campaign and emits the *same*
``repro.campaign/3`` JSON schema as ``python -m repro campaign --json``,
so ``bench_reports.txt`` trajectories stay comparable across PRs
(``--shrink`` / ``--adaptive`` / ``--directions`` forward to the
campaign stages and axes).
"""

import argparse
import json
import sys

import pytest

from bench_common import once, print_table
from repro.checker import BFSChecker
from repro.impl import Ensemble
from repro.remix import ConformanceChecker
from repro.zookeeper import V391, ZkConfig, make_spec
from repro.zookeeper.specs import SELECTIONS

CFG = ZkConfig(max_txns=1, max_crashes=1, max_partitions=0, max_epoch=3)

_REPORTS = {}


def checker_for(name, divergence="", seed=11):
    spec = make_spec(name, CFG)
    return ConformanceChecker(
        spec,
        SELECTIONS[name],
        lambda: Ensemble(3, V391, divergence),
        seed=seed,
    )


@pytest.mark.parametrize("name", ["mSpec-1", "mSpec-2", "mSpec-3"])
def test_conformance_throughput(benchmark, name):
    checker = checker_for(name)

    def run():
        return checker.run(traces=30, max_steps=25)

    report = once(benchmark, run)
    _REPORTS[name] = report
    assert report.conforms


def test_divergence_detection(benchmark):
    checker = checker_for("mSpec-3", divergence="skip_epoch_update")

    def run():
        return checker.run(traces=40, max_steps=20)

    report = once(benchmark, run)
    _REPORTS["mSpec-3 (divergent impl)"] = report
    assert not report.conforms


def test_zk4394_confirmation(benchmark):
    """§4.1: the conformance workflow surfaces ZK-4394."""
    spec = make_spec("mSpec-1", CFG)
    spec.invariants = [i for i in spec.invariants if i.ident == "I-14"]
    result = BFSChecker(spec, max_states=100_000, max_time=120).run()
    assert result.found_violation
    checker = checker_for("mSpec-1")

    def confirm():
        return checker.confirm_violation(result.first_violation.trace)

    report = once(benchmark, confirm)
    assert report is not None and report.bug_id == "ZK-4394"


def test_bottom_up_validation(benchmark):
    """The complementary bottom-up approach (§6): random implementation
    runs validated against the model in lockstep."""
    from repro.remix import TraceValidator, mapping_for as _mapping_for

    spec = make_spec("mSpec-3", CFG)
    validator = TraceValidator(
        spec,
        _mapping_for(SELECTIONS["mSpec-3"]),
        lambda: Ensemble(3, V391),
        seed=7,
    )

    def run():
        return validator.validate(runs=10, max_steps=18)

    report = once(benchmark, run)
    _REPORTS["mSpec-3 (bottom-up)"] = report
    assert report.valid


def test_zz_report(benchmark):
    benchmark(lambda: None)  # keep the report under --benchmark-only
    rows = []
    for name, report in _REPORTS.items():
        if hasattr(report, "traces_explored"):
            rows.append(
                (
                    name,
                    report.traces_explored,
                    report.steps_replayed,
                    len(report.discrepancies),
                    "conforms" if report.conforms else "DISCREPANT",
                )
            )
        else:  # bottom-up ValidationReport
            rows.append(
                (
                    name,
                    report.runs,
                    report.steps_validated,
                    len(report.issues),
                    "valid" if report.valid else "INVALID",
                )
            )
    print_table(
        "Conformance checking (§3.4)",
        ("Spec", "Traces", "Steps replayed", "Discrepancies", "Verdict"),
        rows,
    )


# --------------------------------------------------------------- CLI smoke


def run_campaign_smoke(
    budget, workers, seed, seeds, traces, steps, shrink=False, adaptive=False,
    directions=("topdown",),
):
    """Run a small conformance campaign; returns the report JSON (the
    same ``repro.campaign/3`` schema as ``python -m repro campaign``)."""
    from repro.remix.campaign import CampaignRequest, run_campaign

    request = CampaignRequest(
        seeds=seeds,
        traces=traces,
        max_steps=steps,
        seed=seed,
        workers=workers,
        budget=budget or None,
        shrink=shrink,
        adaptive=adaptive,
        directions=directions,
    )
    return run_campaign(request).to_json()


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Conformance campaign smoke benchmark"
    )
    parser.add_argument(
        "--campaign", action="store_true",
        help="run the campaign smoke (required; reserved for future modes)",
    )
    parser.add_argument("--budget", default=None, help='e.g. "10s"')
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--seeds", type=int, default=1)
    parser.add_argument("--traces", type=int, default=2)
    parser.add_argument("--steps", type=int, default=12)
    parser.add_argument(
        "--shrink", action="store_true",
        help="attach a minimized min_trace to every finding",
    )
    parser.add_argument(
        "--adaptive", action="store_true",
        help="adaptive (yield-chasing) matrix scheduling",
    )
    parser.add_argument(
        "--directions", choices=["topdown", "bottomup", "both"],
        default="topdown",
        help="conformance directions (both = top-down replay + bottom-up "
        "lockstep validation cells)",
    )
    parser.add_argument("--json", dest="json_path", default=None)
    args = parser.parse_args(argv)
    if not args.campaign:
        parser.error("pass --campaign to run the CLI smoke mode")
    directions = (
        ("topdown", "bottomup")
        if args.directions == "both"
        else (args.directions,)
    )
    report = run_campaign_smoke(
        args.budget, args.workers, args.seed, args.seeds, args.traces,
        args.steps, shrink=args.shrink, adaptive=args.adaptive,
        directions=directions,
    )
    text = json.dumps(report, indent=2)
    if args.json_path:
        with open(args.json_path, "w") as fh:
            fh.write(text + "\n")
    print(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
