"""Conformance checking (§3.4 / §4.1): throughput and discrepancy finding.

Benchmarks the random-exploration + deterministic-replay loop, verifies
that the shipped specifications conform to the shipped implementation,
that an injected divergence is caught, and that the ZK-4394 discrepancy
workflow of §4.1 (model trace -> code-level NullPointerException)
reproduces.
"""

import pytest

from bench_common import once, print_table
from repro.checker import BFSChecker
from repro.impl import Ensemble
from repro.remix import ConformanceChecker
from repro.zookeeper import V391, ZkConfig, make_spec
from repro.zookeeper.specs import SELECTIONS

CFG = ZkConfig(max_txns=1, max_crashes=1, max_partitions=0, max_epoch=3)

_REPORTS = {}


def checker_for(name, divergence="", seed=11):
    spec = make_spec(name, CFG)
    return ConformanceChecker(
        spec,
        SELECTIONS[name],
        lambda: Ensemble(3, V391, divergence),
        seed=seed,
    )


@pytest.mark.parametrize("name", ["mSpec-1", "mSpec-2", "mSpec-3"])
def test_conformance_throughput(benchmark, name):
    checker = checker_for(name)

    def run():
        return checker.run(traces=30, max_steps=25)

    report = once(benchmark, run)
    _REPORTS[name] = report
    assert report.conforms


def test_divergence_detection(benchmark):
    checker = checker_for("mSpec-3", divergence="skip_epoch_update")

    def run():
        return checker.run(traces=40, max_steps=20)

    report = once(benchmark, run)
    _REPORTS["mSpec-3 (divergent impl)"] = report
    assert not report.conforms


def test_zk4394_confirmation(benchmark):
    """§4.1: the conformance workflow surfaces ZK-4394."""
    spec = make_spec("mSpec-1", CFG)
    spec.invariants = [i for i in spec.invariants if i.ident == "I-14"]
    result = BFSChecker(spec, max_states=100_000, max_time=120).run()
    assert result.found_violation
    checker = checker_for("mSpec-1")

    def confirm():
        return checker.confirm_violation(result.first_violation.trace)

    report = once(benchmark, confirm)
    assert report is not None and report.bug_id == "ZK-4394"


def test_bottom_up_validation(benchmark):
    """The complementary bottom-up approach (§6): random implementation
    runs validated against the model in lockstep."""
    from repro.remix import TraceValidator, mapping_for as _mapping_for

    spec = make_spec("mSpec-3", CFG)
    validator = TraceValidator(
        spec,
        _mapping_for(SELECTIONS["mSpec-3"]),
        lambda: Ensemble(3, V391),
        seed=7,
    )

    def run():
        return validator.validate(runs=10, max_steps=18)

    report = once(benchmark, run)
    _REPORTS["mSpec-3 (bottom-up)"] = report
    assert report.valid


def test_zz_report(benchmark):
    benchmark(lambda: None)  # keep the report under --benchmark-only
    rows = []
    for name, report in _REPORTS.items():
        if hasattr(report, "traces_explored"):
            rows.append(
                (
                    name,
                    report.traces_explored,
                    report.steps_replayed,
                    len(report.discrepancies),
                    "conforms" if report.conforms else "DISCREPANT",
                )
            )
        else:  # bottom-up ValidationReport
            rows.append(
                (
                    name,
                    report.runs,
                    report.steps_validated,
                    len(report.issues),
                    "valid" if report.valid else "INVALID",
                )
            )
    print_table(
        "Conformance checking (§3.4)",
        ("Spec", "Traces", "Steps replayed", "Discrepancies", "Verdict"),
        rows,
    )
