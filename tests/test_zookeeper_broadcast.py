"""Scripted model-level tests for the Broadcast modules and the
code-invariant error paths (I-12, I-13, I-14)."""

import pytest

from conftest import txn
from repro.tla.values import Rec, Zxid
from repro.zookeeper import constants as C
from repro.zookeeper import prims as P
from repro.zookeeper.code_invariants import INSTANCE_TABLE, code_invariants
from repro.zookeeper.config import ZkConfig
from repro.zookeeper.specs import SELECTIONS, build_spec
from test_zookeeper_sync import disabled, elected, run, spec_for


@pytest.fixture
def baseline():
    return spec_for("mSpec-1")


@pytest.fixture
def concurrent():
    return spec_for("mSpec-3")


def serving_cluster(spec, quorum=(0, 1, 2)):
    """Elect leader 2 and bring the quorum to BROADCAST."""
    state = elected(spec, quorum=quorum)
    followers = [f for f in quorum if f != 2]
    for f in followers:
        state = run(spec, state, "LeaderSyncFollower", pair=(2, f))
        state = run(spec, state, "FollowerProcessSyncMessage", pair=(f, 2))
        if spec.name == "mSpec-3":
            state = run(
                spec, state, "FollowerProcessNEWLEADER_UpdateEpoch", pair=(f, 2)
            )
            state = run(
                spec, state, "FollowerProcessNEWLEADER_ReplyAck", pair=(f, 2)
            )
        else:
            state = run(spec, state, "FollowerProcessNEWLEADER", pair=(f, 2))
        state = run(spec, state, "LeaderProcessACKLD", pair=(2, f))
        state = run(spec, state, "FollowerProcessUPTODATE", pair=(f, 2))
    return state


class TestBaselineBroadcast:
    def test_full_commit_round(self, baseline):
        spec = baseline
        state = serving_cluster(spec)
        state = run(spec, state, "LeaderProcessRequest", i=2)
        t = state["history"][2][0]
        assert t in state["g_proposed"]
        state = run(spec, state, "FollowerProcessPROPOSAL", pair=(0, 2))
        assert state["history"][0] == (t,)
        state = run(spec, state, "LeaderProcessACK", pair=(2, 0))
        # quorum {2, 0}: committed at the leader, COMMIT broadcast
        assert state["last_committed"][2] == 1
        assert state["g_delivered"][2] == (t,)
        state = run(spec, state, "FollowerProcessCOMMIT", pair=(0, 2))
        assert state["last_committed"][0] == 1

    def test_txn_budget_respected(self, baseline):
        spec = baseline
        state = serving_cluster(spec)
        for _ in range(spec.config.max_txns):
            state = run(spec, state, "LeaderProcessRequest", i=2)
        assert disabled(spec, state, "LeaderProcessRequest", i=2)

    def test_follower_does_not_propose(self, baseline):
        spec = baseline
        state = serving_cluster(spec)
        assert disabled(spec, state, "LeaderProcessRequest", i=0)

    def test_duplicate_commit_ignored(self, baseline):
        spec = baseline
        state = serving_cluster(spec)
        state = run(spec, state, "LeaderProcessRequest", i=2)
        state = run(spec, state, "FollowerProcessPROPOSAL", pair=(0, 2))
        state = run(spec, state, "LeaderProcessACK", pair=(2, 0))
        t = state["history"][2][0]
        # inject a duplicate COMMIT ahead of the real one
        state = state.set(
            msgs=P.send(state["msgs"], 2, 0, Rec(mtype=C.COMMIT, zxid=t.zxid))
        )
        state = run(spec, state, "FollowerProcessCOMMIT", pair=(0, 2))
        state = run(spec, state, "FollowerProcessCOMMIT", pair=(0, 2))
        assert state["last_committed"][0] == 1
        assert not state["errors"]


class TestErrorPaths:
    def test_unknown_commit_raises_i14(self, baseline):
        spec = baseline
        state = serving_cluster(spec)
        state = state.set(
            msgs=P.send(
                state["msgs"], 2, 0, Rec(mtype=C.COMMIT, zxid=Zxid(9, 9))
            )
        )
        state = run(spec, state, "FollowerProcessCOMMIT", pair=(0, 2))
        assert P.has_error(state, C.ERR_COMMIT_UNKNOWN_TXN)

    def test_out_of_order_commit_raises_i14(self, baseline):
        spec = baseline
        t1, t2 = txn(1, 1), txn(1, 2)
        state = serving_cluster(spec)
        state = state.set(
            history=P.up(state["history"], 0, (t1, t2)),
            msgs=P.send(state["msgs"], 2, 0, Rec(mtype=C.COMMIT, zxid=t2.zxid)),
        )
        state = run(spec, state, "FollowerProcessCOMMIT", pair=(0, 2))
        assert P.has_error(state, C.ERR_COMMIT_OUT_OF_ORDER)

    def test_proposal_gap_raises_i13(self, baseline):
        spec = baseline
        state = serving_cluster(spec)
        gap_txn = txn(1, 7)
        state = state.set(
            history=P.up(state["history"], 0, (txn(1, 1),)),
            msgs=P.send(state["msgs"], 2, 0, Rec(mtype=C.PROPOSAL, txn=gap_txn)),
        )
        state = run(spec, state, "FollowerProcessPROPOSAL", pair=(0, 2))
        assert P.has_error(state, C.ERR_PROPOSAL_GAP)

    def test_ack_before_newleader_ack_raises_i12(self, concurrent):
        spec = concurrent
        state = elected(spec, quorum=(0, 2))
        state = run(spec, state, "LeaderSyncFollower", pair=(2, 0))
        # an ACK for a txn zxid while the leader still waits for the
        # NEWLEADER ACK of follower 0 (ZK-4685's shape)
        state = state.set(
            msgs=P.send(state["msgs"], 0, 2, Rec(mtype=C.ACK, zxid=Zxid(1, 5)))
        )
        state = run(spec, state, "LeaderProcessACK", pair=(2, 0))
        assert P.has_error(state, C.ERR_ACK_BEFORE_NEWLEADER_ACK)

    def test_ack_unknown_proposal_raises_i12(self, baseline):
        spec = baseline
        state = serving_cluster(spec, quorum=(0, 2))
        state = state.set(
            msgs=P.send(state["msgs"], 0, 2, Rec(mtype=C.ACK, zxid=Zxid(7, 7)))
        )
        state = run(spec, state, "LeaderProcessACK", pair=(2, 0))
        assert P.has_error(state, C.ERR_ACK_UNKNOWN_PROPOSAL)


class TestFineBroadcast:
    def test_proposal_queued_not_logged(self, concurrent):
        spec = concurrent
        state = serving_cluster(spec)
        state = run(spec, state, "LeaderProcessRequest", i=2)
        state = run(spec, state, "FollowerProcessPROPOSAL", pair=(0, 2))
        assert state["history"][0] == ()
        assert len(state["queued_requests"][0]) == 1

    def test_commit_queued_and_blocked_until_logged(self, concurrent):
        spec = concurrent
        state = serving_cluster(spec)
        state = run(spec, state, "LeaderProcessRequest", i=2)
        state = run(spec, state, "FollowerProcessPROPOSAL", pair=(0, 2))
        state = run(spec, state, "FollowerSyncProcessorLogRequest", i=0)
        # the UPTODATE ACK is still at the channel head
        state = run(spec, state, "LeaderProcessACKUPTODATE", pair=(2, 0))
        state = run(spec, state, "LeaderProcessACK", pair=(2, 0))
        state = run(spec, state, "FollowerProcessCOMMIT", pair=(0, 2))
        assert state["committed_requests"][0]
        state = run(spec, state, "FollowerCommitProcessorCommit", i=0)
        assert state["last_committed"][0] == 1

    def test_commit_processor_waits_for_logging(self, concurrent):
        spec = concurrent
        state = serving_cluster(spec)
        state = run(spec, state, "LeaderProcessRequest", i=2)
        state = run(spec, state, "FollowerProcessPROPOSAL", pair=(0, 2))
        t = state["queued_requests"][0][0].txn
        # force the COMMIT in before the txn is logged
        state = state.set(
            committed_requests=P.up(
                state["committed_requests"], 0, (t.zxid,)
            )
        )
        assert disabled(spec, state, "FollowerCommitProcessorCommit", i=0)


class TestInvariantSelection:
    def test_eleven_instances_total(self):
        assert len(INSTANCE_TABLE) == 11
        assert len(code_invariants(None)) == 11

    def test_family_sizes_match_table2(self):
        families = {}
        for code, (family, _, _) in INSTANCE_TABLE.items():
            families.setdefault(family, []).append(code)
        assert len(families["I-11"]) == 4
        assert len(families["I-12"]) == 2
        assert len(families["I-13"]) == 2
        assert len(families["I-14"]) == 3

    def test_concurrent_instances_need_concurrent_modules(self):
        baseline_sel = SELECTIONS["mSpec-1"]
        concurrent_sel = SELECTIONS["mSpec-3"]
        baseline_ids = {
            inv.instance for inv in code_invariants(baseline_sel)
        }
        concurrent_ids = {
            inv.instance for inv in code_invariants(concurrent_sel)
        }
        assert C.ERR_ACK_UPTODATE_OUT_OF_SYNC not in baseline_ids
        assert C.ERR_ACK_UPTODATE_OUT_OF_SYNC in concurrent_ids
        assert C.ERR_ACK_BEFORE_NEWLEADER_ACK not in baseline_ids
        assert baseline_ids < concurrent_ids

    def test_spec_invariant_counts(self):
        cfg = ZkConfig()
        m1 = build_spec("mSpec-1", SELECTIONS["mSpec-1"], cfg)
        m3 = build_spec("mSpec-3", SELECTIONS["mSpec-3"], cfg)
        assert len(m1.invariants) == 10 + 9
        assert len(m3.invariants) == 10 + 11
