"""The serializable campaign request: normalization, single-format axis
validation, JSON round-trips, the ``from_kwargs`` deprecation shim, and
the CLI's request surface (``--dry-run`` / ``--request``)."""

import json

import pytest

from repro.cli import main
from repro.remix.campaign import ConformanceCampaign, run_campaign
from repro.remix.request import (
    REQUEST_SCHEMA,
    CampaignRequest,
    RequestError,
    parse_budget,
)

#: A campaign small enough to run in every test that needs a report.
TINY = dict(
    grains=("mSpec-1",),
    scenarios=("election",),
    faults=("none",),
    traces=1,
    max_steps=4,
    seed=7,
)


def report_json(request):
    data = run_campaign(request).to_json()
    data["campaign"].pop("elapsed_seconds", None)
    return data


class TestNormalization:
    def test_defaults_resolve_against_plugin(self):
        request = CampaignRequest()
        assert request.system == "zookeeper"
        assert request.grains and all(
            isinstance(g, str) for g in request.grains
        )
        assert request.scenarios and request.faults
        assert isinstance(request.config, dict)

    def test_sequences_freeze_to_tuples(self):
        request = CampaignRequest(
            grains=["mSpec-1"], scenarios=["election"], faults=["none"],
            directions=["topdown"],
        )
        for value in (
            request.grains, request.scenarios, request.faults,
            request.directions,
        ):
            assert isinstance(value, tuple)

    def test_budget_string_parses_to_seconds(self):
        assert CampaignRequest(budget="5s").budget == 5.0
        assert CampaignRequest(budget="2m").budget == 120.0
        assert CampaignRequest(budget=1.5).budget == 1.5
        assert CampaignRequest(budget=None).budget is None

    def test_counts_clamp_and_coerce(self):
        request = CampaignRequest(seeds=0, workers=0, traces="3")
        assert request.seeds == 1
        assert request.workers == 1
        assert request.traces == 3

    def test_config_object_round_trips(self):
        request = CampaignRequest(**TINY)
        config = request.config_object()
        again = CampaignRequest(**dict(TINY, config=config))
        assert again.config == request.config
        assert again == request

    def test_equal_requests_compare_equal(self):
        assert CampaignRequest(**TINY) == CampaignRequest(**TINY)
        assert CampaignRequest(**TINY) != CampaignRequest(
            **dict(TINY, seed=8)
        )


class TestValidation:
    def test_unknown_system_preserves_registry_message(self):
        with pytest.raises(RequestError, match="unknown system 'etcd'"):
            CampaignRequest(system="etcd")

    @pytest.mark.parametrize(
        "field,kwargs",
        [
            ("directions", dict(directions=("sideways",))),
            ("grains", dict(grains=("bogus",))),
            ("scenarios", dict(scenarios=("apocalypse",))),
            ("faults", dict(faults=("meteor-strike",))),
            ("backend", dict(backend="carrier-pigeon")),
        ],
    )
    def test_axis_errors_share_one_format(self, field, kwargs):
        with pytest.raises(RequestError) as err:
            CampaignRequest(**kwargs)
        message = str(err.value)
        assert message.startswith(f"invalid campaign request: {field}: ")
        assert "unknown value" in message and "options: [" in message

    def test_bad_budget_rejected(self):
        with pytest.raises(RequestError, match="budget"):
            CampaignRequest(budget="eleventy")
        with pytest.raises(RequestError, match="positive"):
            CampaignRequest(budget=-1)

    def test_with_options_revalidates(self):
        request = CampaignRequest(**TINY)
        with pytest.raises(RequestError, match="backend"):
            request.with_options(backend="bogus")
        assert request.with_options(workers=2).workers == 2

    def test_parse_budget_units(self):
        assert parse_budget("500ms") == 0.5
        assert parse_budget("1h") == 3600.0
        with pytest.raises(ValueError):
            parse_budget("nope")


class TestWireFormat:
    def test_json_round_trip_is_identity(self):
        request = CampaignRequest(**TINY, budget="5s", shrink=True)
        wire = json.loads(json.dumps(request.to_json()))
        assert wire["schema"] == REQUEST_SCHEMA
        assert CampaignRequest.from_json(wire) == request

    def test_round_tripped_request_reports_identically(self):
        request = CampaignRequest(**TINY)
        clone = CampaignRequest.from_json(request.to_json())
        assert report_json(request) == report_json(clone)

    def test_from_json_tolerates_sparse_input(self):
        request = CampaignRequest.from_json(
            {"grains": ["mSpec-1"], "unknown_key": 42}
        )
        assert request.grains == ("mSpec-1",)

    def test_from_json_rejects_wrong_schema(self):
        with pytest.raises(RequestError, match="schema"):
            CampaignRequest.from_json({"schema": "repro.campaign.request/9"})
        with pytest.raises(RequestError, match="JSON object"):
            CampaignRequest.from_json([1, 2, 3])


class TestFromKwargsShim:
    def test_shim_warns_and_matches_new_api(self):
        with pytest.warns(DeprecationWarning, match="CampaignRequest"):
            old = ConformanceCampaign.from_kwargs(**TINY)
        new = ConformanceCampaign(CampaignRequest(**TINY))
        assert old.request == new.request
        old_json = old.run().to_json()
        old_json["campaign"].pop("elapsed_seconds", None)
        assert old_json == report_json(new.request)

    def test_positional_request_required(self):
        with pytest.raises(TypeError, match="from_kwargs"):
            ConformanceCampaign({"grains": ("mSpec-1",)})


class TestCliRequestSurface:
    ARGS = [
        "campaign", "--grains", "mSpec-1", "--scenarios", "election",
        "--faults", "none", "--traces", "1", "--steps", "4",
    ]

    def test_dry_run_prints_normalized_request(self, capsys):
        assert main(self.ARGS + ["--dry-run"]) == 0
        wire = json.loads(capsys.readouterr().out)
        assert wire["schema"] == REQUEST_SCHEMA
        assert wire["grains"] == ["mSpec-1"]
        assert CampaignRequest.from_json(wire)  # loadable as-is

    def test_request_from_args_matches_flags(self, capsys):
        assert main(self.ARGS + ["--dry-run"]) == 0
        wire = json.loads(capsys.readouterr().out)
        # the CLI defaults --shrink on; everything else matches the flags
        assert CampaignRequest.from_json(wire) == CampaignRequest(
            grains=("mSpec-1",), scenarios=("election",), faults=("none",),
            traces=1, max_steps=4, shrink=True,
        )

    def test_request_file_runs_campaign(self, tmp_path, capsys):
        request_file = tmp_path / "request.json"
        request_file.write_text(json.dumps(CampaignRequest(**TINY).to_json()))
        assert main(
            ["campaign", "--request", str(request_file), "--json", "-"]
        ) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["schema"].startswith("repro.campaign/")

    def test_bad_axis_exits_2_with_single_format(self, capsys):
        code = main(["campaign", "--grains", "bogus"])
        assert code == 2
        err = capsys.readouterr().err
        assert "campaign:" in err
        assert "grains: unknown value 'bogus'" in err
