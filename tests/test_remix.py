"""Tests for the Remix framework: registry, mapping, coordinator and
conformance checking."""

import pytest

from repro.checker import BFSChecker
from repro.checker.trace import Trace
from repro.impl import Ensemble
from repro.remix import (
    ConformanceChecker,
    Coordinator,
    SpecRegistry,
    mapping_for,
)
from repro.tla.action import ActionLabel
from repro.tla.composition import CompositionError
from repro.zookeeper import V391, ZkConfig, make_spec
from repro.zookeeper.specs import SELECTIONS

CFG = ZkConfig(max_txns=1, max_crashes=1, max_partitions=0, max_epoch=3)


class TestRegistry:
    def test_modules_and_granularities(self):
        registry = SpecRegistry()
        assert "Synchronization" in registry.modules()
        assert set(registry.granularities("Synchronization")) == {
            "baseline",
            "fine_atomic",
            "fine_concurrent",
        }

    def test_compose_named(self):
        registry = SpecRegistry()
        spec = registry.compose_named("mSpec-2", CFG)
        assert spec.name == "mSpec-2"

    def test_compose_unknown_granularity(self):
        registry = SpecRegistry()
        with pytest.raises(KeyError, match="no 'ultra_fine'"):
            registry.compose(
                "bad",
                {
                    "Election": "coarsened",
                    "Discovery": "coarsened",
                    "Synchronization": "ultra_fine",
                    "Broadcast": "baseline",
                },
                CFG,
            )

    def test_register_new_granularity(self):
        registry = SpecRegistry()
        registry.register("Synchronization", "custom", lambda cfg: None)
        assert registry.has("Synchronization", "custom")

    def test_incompatible_composition_rejected(self):
        registry = SpecRegistry()
        with pytest.raises(CompositionError, match="coarsened together"):
            registry.compose(
                "bad",
                {
                    "Election": "coarsened",
                    "Discovery": "baseline",
                    "Synchronization": "baseline",
                    "Broadcast": "baseline",
                },
                CFG,
            )

    def test_fine_broadcast_needs_concurrent_sync(self):
        registry = SpecRegistry()
        with pytest.raises(CompositionError, match="worker threads"):
            registry.compose(
                "bad",
                {
                    "Election": "coarsened",
                    "Discovery": "coarsened",
                    "Synchronization": "baseline",
                    "Broadcast": "fine_concurrent",
                },
                CFG,
            )


class TestMapping:
    def test_every_model_action_is_mapped(self):
        for name in ("mSpec-1", "mSpec-2", "mSpec-3"):
            spec = make_spec(name, CFG)
            mapping = mapping_for(SELECTIONS[name])
            unmapped = [
                a.name for a in spec.actions if mapping.lookup(
                    ActionLabel(a.name)
                ) is None
            ]
            assert not unmapped, f"{name}: unmapped actions {unmapped}"

    def test_sysspec_not_mappable(self):
        with pytest.raises(ValueError, match="coarsened"):
            mapping_for(SELECTIONS["SysSpec"])

    def test_pointcut_counts_grow_with_granularity(self):
        p1 = mapping_for(SELECTIONS["mSpec-1"]).total_pointcuts()
        p2 = mapping_for(SELECTIONS["mSpec-2"]).total_pointcuts()
        p3 = mapping_for(SELECTIONS["mSpec-3"]).total_pointcuts()
        assert p1 < p2 < p3


def replay_first_violation(spec_name, family=None, **checker_kw):
    spec = make_spec(spec_name, CFG)
    if family:
        spec.invariants = [i for i in spec.invariants if i.ident == family]
    result = BFSChecker(spec, max_states=100_000, max_time=120).run()
    assert result.found_violation
    return spec, result.first_violation.trace


class TestCoordinator:
    def coordinator(self, name, divergence=""):
        return Coordinator(
            mapping_for(SELECTIONS[name]),
            lambda: Ensemble(3, V391, divergence),
        )

    def test_replays_violating_trace_to_impl_bug(self):
        spec, trace = replay_first_violation("mSpec-1", "I-14")
        result = self.coordinator("mSpec-1").replay(
            trace, stop_on_discrepancy=False
        )
        assert result.impl_error is not None
        assert result.impl_error.bug_id == "ZK-4394"

    def test_unmapped_action_reported(self):
        spec = make_spec("mSpec-1", CFG)
        init = spec.initial_states()[0]
        trace = Trace(states=[init, init], labels=[ActionLabel("Bogus")])
        result = self.coordinator("mSpec-1").replay(trace)
        assert result.discrepancies[0].kind == "unmapped_action"

    def test_stuck_action_reported(self):
        spec = make_spec("mSpec-1", CFG)
        init = spec.initial_states()[0]
        # ElectionAndDiscovery with a non-maximal leader is refused by
        # the implementation.
        label = ActionLabel(
            "ElectionAndDiscovery", (("i", 0), ("Q", (0, 1, 2)))
        )
        trace = Trace(states=[init, init], labels=[label])
        result = self.coordinator("mSpec-1").replay(trace)
        assert result.discrepancies[0].kind == "action_stuck"

    def test_clean_replay_of_model_trace(self):
        spec = make_spec("mSpec-3", CFG)
        from repro.checker import RandomWalker

        trace = RandomWalker(spec, seed=4).walk(max_steps=20)
        result = self.coordinator("mSpec-3").replay(trace)
        assert result.clean, [str(d) for d in result.discrepancies]


class TestConformance:
    def checker(self, name, divergence="", seed=11):
        spec = make_spec(name, CFG)
        return ConformanceChecker(
            spec,
            SELECTIONS[name],
            lambda: Ensemble(3, V391, divergence),
            seed=seed,
        )

    @pytest.mark.parametrize("name", ["mSpec-1", "mSpec-2", "mSpec-3"])
    def test_clean_conformance(self, name):
        report = self.checker(name).run(traces=25, max_steps=25)
        assert report.conforms, [str(d) for d in report.discrepancies[:3]]
        assert report.steps_replayed > 100

    def test_detects_missing_epoch_write(self):
        # "wrong variable assignments" (§3.4): currentEpoch never written.
        report = self.checker("mSpec-3", "skip_epoch_update").run(
            traces=40, max_steps=20
        )
        assert not report.conforms
        assert any(
            d.variable == "current_epoch" for d in report.discrepancies
        )

    def test_detects_unrealistic_state_transition(self):
        # zabState jumps to BROADCAST at NEWLEADER time.
        report = self.checker("mSpec-3", "eager_broadcast").run(
            traces=40, max_steps=20
        )
        assert not report.conforms
        assert any(d.variable == "zab_state" for d in report.discrepancies)

    def test_detects_wrong_ack_content(self):
        # "inconsistent message types" (§3.4): the NEWLEADER ACK carries
        # the wrong zxid, so the leader's ACKLD never fires.
        report = self.checker("mSpec-2", "wrong_ack_zxid", seed=3).run(
            traces=120, max_steps=30
        )
        assert not report.conforms

    def test_confirm_violation_reports_bug(self):
        spec, trace = replay_first_violation("mSpec-1", "I-14")
        report = self.checker("mSpec-1").confirm_violation(trace)
        assert report is not None
        assert report.bug_id == "ZK-4394"
        assert "NullPointerException" in str(report)

    def test_report_summary(self):
        report = self.checker("mSpec-1").run(traces=5, max_steps=10)
        assert "5 traces" in report.summary()
