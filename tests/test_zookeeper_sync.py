"""Scripted model-level tests for the Synchronization modules.

Each test drives the specification action-by-action through a scenario
and asserts the intermediate states -- the model-level analogue of an
integration test.
"""

import pytest

from conftest import txn, zk_state
from repro.zookeeper import constants as C
from repro.zookeeper.config import SpecVariant, ZkConfig
from repro.zookeeper.specs import SELECTIONS, build_spec


def _instance(spec, name, args):
    for inst in spec.action_instances():
        if inst.label.name == name and inst.label.args == args:
            return inst
    raise KeyError(f"no instance {name}{args}")


def run(spec, state, name, **args):
    """Apply one named action instance; fail the test if disabled."""
    inst = _instance(spec, name, args)
    nxt = inst.apply(spec.config, state)
    assert nxt is not None, f"{name}{args} not enabled"
    return nxt


def disabled(spec, state, name, **args):
    return _instance(spec, name, args).apply(spec.config, state) is None


def spec_for(name, variant=None, **cfg):
    config = ZkConfig(
        max_txns=cfg.pop("max_txns", 2),
        max_crashes=cfg.pop("max_crashes", 2),
        max_partitions=0,
        max_epoch=cfg.pop("max_epoch", 3),
    )
    if variant is not None:
        config = config.with_variant(variant)
    return build_spec(name, SELECTIONS[name], config)


@pytest.fixture
def baseline():
    return spec_for("mSpec-1")


@pytest.fixture
def atomic_split():
    return spec_for("mSpec-2")


@pytest.fixture
def concurrent():
    return spec_for("mSpec-3")


def elected(spec, leader=2, quorum=(0, 1, 2), state=None):
    state = state or zk_state(spec.config)
    return run(spec, state, "ElectionAndDiscovery", i=leader, Q=quorum)


class TestLeaderSyncFollower:
    def test_empty_diff_for_matching_follower(self, baseline):
        spec = baseline
        state = elected(spec)
        state = run(spec, state, "LeaderSyncFollower", pair=(2, 0))
        sync_msg, nl = state["msgs"][2][0]
        assert sync_msg.mtype == C.DIFF and sync_msg.txns == ()
        assert nl.mtype == C.NEWLEADER and nl.epoch == 1

    def test_snap_for_empty_follower_of_nonempty_leader(self, baseline):
        spec = baseline
        t = txn(1, 1)
        state = zk_state(spec.config, history=((), (), (t,)), current_epoch=(1, 1, 1))
        state = elected(spec, state=state)
        state = run(spec, state, "LeaderSyncFollower", pair=(2, 0))
        sync_msg = state["msgs"][2][0][0]
        assert sync_msg.mtype == C.SNAP and sync_msg.txns == (t,)

    def test_trunc_for_follower_ahead(self, baseline):
        spec = baseline
        t = txn(1, 1)
        state = zk_state(
            spec.config,
            history=((t,), (), ()),
            current_epoch=(1, 1, 1),
            last_committed=(0, 0, 0),
        )
        # server 2 must win despite 0's longer history: bump its epoch
        state = state.set(current_epoch=(1, 1, 2))
        state = elected(spec, state=state)
        state = run(spec, state, "LeaderSyncFollower", pair=(2, 0))
        sync_msg = state["msgs"][2][0][0]
        assert sync_msg.mtype == C.TRUNC

    def test_diff_payload_after_known_zxid(self, baseline):
        spec = baseline
        t1, t2 = txn(1, 1), txn(1, 2)
        state = zk_state(
            spec.config,
            history=((t1,), (t1, t2), (t1, t2)),
            current_epoch=(1, 1, 1),
        )
        state = elected(spec, state=state)
        state = run(spec, state, "LeaderSyncFollower", pair=(2, 0))
        sync_msg = state["msgs"][2][0][0]
        assert sync_msg.mtype == C.DIFF and sync_msg.txns == (t2,)

    def test_sync_sent_only_once(self, baseline):
        spec = baseline
        state = elected(spec)
        state = run(spec, state, "LeaderSyncFollower", pair=(2, 0))
        assert disabled(spec, state, "LeaderSyncFollower", pair=(2, 0))


class TestBaselineNewLeader:
    def test_atomic_newleader_updates_everything(self, baseline):
        spec = baseline
        t = txn(1, 1)
        state = zk_state(
            spec.config,
            history=((), (), (t,)),
            current_epoch=(0, 0, 1),
            accepted_epoch=(0, 0, 1),
        )
        state = elected(spec, quorum=(0, 2), state=state)
        state = run(spec, state, "LeaderSyncFollower", pair=(2, 0))
        state = run(spec, state, "FollowerProcessSyncMessage", pair=(0, 2))
        assert state["packets_sync"][0].not_committed == (t,)
        state = run(spec, state, "FollowerProcessNEWLEADER", pair=(0, 2))
        assert state["current_epoch"][0] == 2
        assert state["history"][0] == (t,)
        assert state["packets_sync"][0].not_committed == ()
        assert state["newleader_recv"][0]
        ack = state["msgs"][0][2][0]
        assert ack.mtype == C.ACK and ack.zxid == t.zxid

    def test_establishment_records_ghosts(self, baseline):
        spec = baseline
        state = elected(spec, quorum=(0, 2))
        state = run(spec, state, "LeaderSyncFollower", pair=(2, 0))
        state = run(spec, state, "FollowerProcessSyncMessage", pair=(0, 2))
        state = run(spec, state, "FollowerProcessNEWLEADER", pair=(0, 2))
        state = run(spec, state, "LeaderProcessACKLD", pair=(2, 0))
        assert state["zab_state"][2] == C.BROADCAST
        assert state["g_leaders"] == ((1, 2),)
        (record,) = state["g_established"]
        assert record.epoch == 1 and record.initial == ()
        assert state["g_participants"] == ((1, frozenset({0, 2})),)
        # UPTODATE queued for the acked follower
        assert state["msgs"][2][0][0].mtype == C.UPTODATE

    def test_uptodate_starts_serving(self, baseline):
        spec = baseline
        state = elected(spec, quorum=(0, 2))
        state = run(spec, state, "LeaderSyncFollower", pair=(2, 0))
        state = run(spec, state, "FollowerProcessSyncMessage", pair=(0, 2))
        state = run(spec, state, "FollowerProcessNEWLEADER", pair=(0, 2))
        state = run(spec, state, "LeaderProcessACKLD", pair=(2, 0))
        state = run(spec, state, "FollowerProcessUPTODATE", pair=(0, 2))
        assert state["zab_state"][0] == C.BROADCAST

    def test_late_ackld_gets_uptodate(self, baseline):
        spec = baseline
        state = elected(spec)
        for f in (0, 1):
            state = run(spec, state, "LeaderSyncFollower", pair=(2, f))
            state = run(spec, state, "FollowerProcessSyncMessage", pair=(f, 2))
            state = run(spec, state, "FollowerProcessNEWLEADER", pair=(f, 2))
        state = run(spec, state, "LeaderProcessACKLD", pair=(2, 0))
        assert state["zab_state"][2] == C.BROADCAST
        state = run(spec, state, "LeaderProcessACKLD", pair=(2, 1))
        assert state["uptodate_sent"][2] == frozenset({0, 1})
        assert state["g_participants"][0][1] == frozenset({0, 1, 2})


class TestAtomicitySplit:
    def script_to_sync(self, spec, payload=True):
        t = txn(1, 1)
        histories = ((), (), (t,)) if payload else ((), (), ())
        state = zk_state(
            spec.config,
            history=histories,
            current_epoch=(0, 0, 1) if payload else (0, 0, 0),
            accepted_epoch=(0, 0, 1) if payload else (0, 0, 0),
        )
        state = elected(spec, quorum=(0, 2), state=state)
        state = run(spec, state, "LeaderSyncFollower", pair=(2, 0))
        state = run(spec, state, "FollowerProcessSyncMessage", pair=(0, 2))
        return state, t

    def test_epoch_first_order_v391(self, atomic_split):
        spec = atomic_split
        state, t = self.script_to_sync(spec)
        # v3.9.1: the log step is blocked until the epoch is updated.
        assert disabled(spec, state, "FollowerProcessNEWLEADER_Log", pair=(0, 2))
        state = run(spec, state, "FollowerProcessNEWLEADER_UpdateEpoch", pair=(0, 2))
        assert state["current_epoch"][0] == 2
        assert state["history"][0] == ()  # the ZK-4643 window is open
        state = run(spec, state, "FollowerProcessNEWLEADER_Log", pair=(0, 2))
        assert state["history"][0] == (t,)
        state = run(spec, state, "FollowerProcessNEWLEADER_ReplyAck", pair=(0, 2))
        assert state["newleader_recv"][0]

    def test_reply_ack_requires_epoch_and_log(self, atomic_split):
        spec = atomic_split
        state, _ = self.script_to_sync(spec)
        assert disabled(
            spec, state, "FollowerProcessNEWLEADER_ReplyAck", pair=(0, 2)
        )

    def test_history_before_epoch_variant_reverses_order(self):
        spec = spec_for("mSpec-2", variant=SpecVariant(history_before_epoch="full"))
        state, t = TestAtomicitySplit().script_to_sync(spec)
        # fixed order: epoch update blocked until the history is logged
        assert disabled(
            spec, state, "FollowerProcessNEWLEADER_UpdateEpoch", pair=(0, 2)
        )
        state = run(spec, state, "FollowerProcessNEWLEADER_Log", pair=(0, 2))
        assert state["current_epoch"][0] == 0
        state = run(spec, state, "FollowerProcessNEWLEADER_UpdateEpoch", pair=(0, 2))
        assert state["current_epoch"][0] == 2

    def test_diff_only_variant_fixes_diff_keeps_snap(self):
        spec = spec_for(
            "mSpec-2", variant=SpecVariant(history_before_epoch="diff_only")
        )
        # SNAP path (empty follower, non-empty leader): still epoch-first.
        state, _ = TestAtomicitySplit().script_to_sync(spec)
        assert state["packets_sync"][0].mode == C.SNAP
        assert not disabled(
            spec, state, "FollowerProcessNEWLEADER_UpdateEpoch", pair=(0, 2)
        )
        assert disabled(spec, state, "FollowerProcessNEWLEADER_Log", pair=(0, 2))


class TestConcurrentSync:
    def script_to_sync(self, spec):
        t = txn(1, 1)
        state = zk_state(
            spec.config,
            history=((), (), (t,)),
            current_epoch=(0, 0, 1),
            accepted_epoch=(0, 0, 1),
        )
        state = elected(spec, quorum=(0, 2), state=state)
        state = run(spec, state, "LeaderSyncFollower", pair=(2, 0))
        state = run(spec, state, "FollowerProcessSyncMessage", pair=(0, 2))
        state = run(spec, state, "FollowerProcessNEWLEADER_UpdateEpoch", pair=(0, 2))
        return state, t

    def test_log_async_queues_to_sync_processor(self, concurrent):
        spec = concurrent
        state, t = self.script_to_sync(spec)
        state = run(spec, state, "FollowerProcessNEWLEADER_LogAsync", pair=(0, 2))
        assert state["history"][0] == ()
        assert [e.txn for e in state["queued_requests"][0]] == [t]

    def test_early_ack_with_queued_txns(self, concurrent):
        # The ZK-4646 window: ACK of NEWLEADER while txns are unlogged.
        spec = concurrent
        state, _ = self.script_to_sync(spec)
        state = run(spec, state, "FollowerProcessNEWLEADER_LogAsync", pair=(0, 2))
        state = run(spec, state, "FollowerProcessNEWLEADER_ReplyAck", pair=(0, 2))
        assert state["queued_requests"][0]  # still unlogged!
        assert state["newleader_recv"][0]

    def test_sync_processor_logs_and_acks(self, concurrent):
        spec = concurrent
        state, t = self.script_to_sync(spec)
        state = run(spec, state, "FollowerProcessNEWLEADER_LogAsync", pair=(0, 2))
        state = run(spec, state, "FollowerSyncProcessorLogRequest", i=0)
        assert state["history"][0] == (t,)
        # the per-txn ACK that can overtake the NEWLEADER ACK (ZK-4685)
        acks = [m for m in state["msgs"][0][2] if m.mtype == C.ACK]
        assert acks and acks[-1].zxid == t.zxid

    def test_synchronous_logging_variant_closes_the_window(self):
        spec = spec_for(
            "mSpec-3", variant=SpecVariant(synchronous_sync_logging=True)
        )
        state, t = TestConcurrentSync().script_to_sync(spec)
        state = run(spec, state, "FollowerProcessNEWLEADER_LogAsync", pair=(0, 2))
        assert state["history"][0] == (t,)  # logged directly
        assert state["queued_requests"][0] == ()

    def test_stale_queue_entry_logs_without_ack(self, concurrent):
        # ZK-4712: an entry enqueued under an older session is logged
        # after the follower rejoined, but its ACK path is gone.
        spec = concurrent
        t = txn(1, 1)
        state = zk_state(
            spec.config,
            state=(C.FOLLOWING, C.LOOKING, C.LEADING),
            zab_state=(C.BROADCAST, C.ELECTION, C.BROADCAST),
            my_leader=(2, -1, 2),
            accepted_epoch=(2, 0, 2),
            current_epoch=(2, 0, 2),
            queued_requests=(
                (__import__("repro.zookeeper.prims", fromlist=["QEntry"]).QEntry(t, 1),),
                (),
                (),
            ),
        )
        state = run(spec, state, "FollowerSyncProcessorLogRequest", i=0)
        assert state["history"][0] == (t,)
        assert state["msgs"][0][2] == ()  # no ACK: session 1 is dead
